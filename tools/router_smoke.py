"""CI smoke test of the scatter-gather tier, end to end through the CLI.

Builds a tiny engine, splits it into a 2-shard fleet
(``build_shard_fleet``), launches ``repro-cli serve-shards`` and
``repro-cli route`` as real child processes, waits for the router to
see both shards healthy, and asserts:

* routed ``/search`` results are byte-identical to a direct in-process
  :class:`ShardedSearcher` over the same partition (several queries and
  thetas, including the re-numbered global text ids);
* ``/batch`` through the router matches direct results too;
* router ``/stats`` aggregates both shards;
* both children drain cleanly (exit 0) on SIGINT.

Run: ``PYTHONPATH=src python tools/router_smoke.py``
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.corpus.synthetic import synthweb
from repro.engine import NearDupEngine
from repro.index.sharded import ShardedIndex, ShardedSearcher
from repro.service import ServiceClient, ShardMap, build_shard_fleet, result_to_wire

NUM_SHARDS = 2


def free_ports(count: int) -> list[int]:
    """Distinct currently-free ports (bound briefly, then released)."""
    sockets = [socket.socket() for _ in range(count)]
    try:
        for sock in sockets:
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def wait_for(predicate, what: str, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value is not None:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {what}")


def shutdown(child: subprocess.Popen, name: str) -> None:
    child.send_signal(signal.SIGINT)
    try:
        exit_code = child.wait(timeout=30)
    except subprocess.TimeoutExpired:
        child.kill()
        raise SystemExit(f"{name} did not drain within 30 s of SIGINT")
    assert exit_code == 0, f"{name} exited {exit_code}, expected 0"


def main() -> int:
    data = synthweb(
        num_texts=80,
        mean_length=120,
        vocab_size=512,
        duplicate_rate=0.2,
        span_length=48,
        mutation_rate=0.04,
        seed=7,
    )
    engine = NearDupEngine.from_corpus(data.corpus, k=8, t=20, vocab_size=512)
    root = Path(tempfile.mkdtemp(prefix="router_smoke_"))
    shard_port_a, shard_port_b, router_port = free_ports(3)

    # build_shard_fleet assigns base_port + i; rewrite the map with the
    # two independently-reserved ports instead.
    shard_map = build_shard_fleet(
        engine, root, num_shards=NUM_SHARDS, base_port=shard_port_a
    )
    from repro.service import ShardEntry

    entries = [
        ShardEntry(entry.name, entry.host, port, entry.first_text, entry.count)
        for entry, port in zip(shard_map, (shard_port_a, shard_port_b))
    ]
    ShardMap(entries).save(root / "shardmap.json")
    print(f"fleet: {[(e.name, e.port, e.first_text, e.count) for e in entries]}")

    shards = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve-shards", str(root)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    router = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "route",
            str(root / "shardmap.json"), "--port", str(router_port),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        client = ServiceClient("127.0.0.1", router_port, timeout=5)

        def healthy():
            for child, name in ((shards, "serve-shards"), (router, "route")):
                if child.poll() is not None:
                    output = child.stdout.read().decode(errors="replace")
                    raise SystemExit(f"{name} died during startup:\n{output}")
            try:
                health = client.health()
            except OSError:
                return None
            return health if health["shards_healthy"] == NUM_SHARDS else None

        health = wait_for(healthy, "both shards healthy behind the router")
        assert health["role"] == "router"
        assert health["texts"] == engine.num_texts
        print(
            f"health: {health['shards_healthy']}/{health['shards_total']} "
            f"shards, {health['texts']} texts"
        )

        direct = ShardedSearcher(
            ShardedIndex.build(
                data.corpus,
                engine.index.family,
                engine.index.t,
                num_shards=NUM_SHARDS,
                vocab_size=512,
            )
        )
        checked = 0
        for text_id in (0, 40, 79):  # texts owned by both shards
            query = np.asarray(data.corpus[text_id])[:40]
            for theta in (0.6, 0.8):
                served = client.search(query, theta)
                assert served["ok"] is True and "partial" not in served
                want = result_to_wire(direct.search(query, theta))
                assert json.dumps(served["result"], sort_keys=True) == json.dumps(
                    want, sort_keys=True
                ), f"routed result differs from direct (text {text_id}, theta {theta})"
                checked += 1
        print(f"search: {checked} routed results byte-identical to direct")

        batch_queries = [np.asarray(data.corpus[i])[:32] for i in (5, 60)]
        served_batch = client.batch(batch_queries, 0.7)
        for position, query in enumerate(batch_queries):
            want = result_to_wire(direct.search(query, 0.7))
            got = served_batch["results"][position]
            assert json.dumps(got, sort_keys=True) == json.dumps(
                want, sort_keys=True
            ), f"routed batch result {position} differs from direct"
        print("batch: routed results byte-identical to direct")

        stats = client.stats()
        assert stats["router"]["completed"] >= checked
        assert set(stats["shards"]) == {"shard0", "shard1"}
        assert stats["aggregate"]["completed"] >= checked * NUM_SHARDS
        print(
            f"stats: router completed {stats['router']['completed']}, "
            f"fleet completed {stats['aggregate']['completed']}, "
            f"fan-out p50 {stats['router']['shard_latency']['p50_ms']:.1f} ms"
        )
        client.close()
    finally:
        shutdown(router, "route")
        shutdown(shards, "serve-shards")
    print("clean shutdown (exit 0 for router and fleet)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
