"""CI smoke test of the scatter-gather tier, end to end through the CLI.

Builds a tiny engine, splits it into a 2-shard fleet
(``build_shard_fleet``), launches ``repro-cli serve-shards`` and
``repro-cli route`` as real child processes, waits for the router to
see both shards healthy, and asserts:

* routed ``/search`` results are byte-identical to a direct in-process
  :class:`ShardedSearcher` over the same partition (several queries and
  thetas, including the re-numbered global text ids);
* ``/batch`` through the router matches direct results too;
* router ``/stats`` aggregates both shards;
* both children drain cleanly (exit 0) on SIGINT.

With ``--replicas 2`` every shard gets two server processes behind a
format-2 shard map, and after the identity checks the smoke **kills
one replica with SIGKILL mid-run** (shard0's primary, found via its
``/health`` pid), then asserts that answers keep flowing byte-identical
and non-partial, that the router's failover and breaker-trip counters
moved, and that ``/health`` reports the shard degraded-but-ok.

Run: ``PYTHONPATH=src python tools/router_smoke.py [--replicas 2]``
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.corpus.synthetic import synthweb
from repro.engine import NearDupEngine
from repro.index.sharded import ShardedIndex, ShardedSearcher
from repro.service import (
    Replica,
    ServiceClient,
    ShardEntry,
    ShardMap,
    build_shard_fleet,
    result_to_wire,
)

NUM_SHARDS = 2


def free_ports(count: int) -> list[int]:
    """Distinct currently-free ports (bound briefly, then released)."""
    sockets = [socket.socket() for _ in range(count)]
    try:
        for sock in sockets:
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def wait_for(predicate, what: str, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value is not None:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {what}")


def shutdown(child: subprocess.Popen, name: str) -> None:
    child.send_signal(signal.SIGINT)
    try:
        exit_code = child.wait(timeout=30)
    except subprocess.TimeoutExpired:
        child.kill()
        raise SystemExit(f"{name} did not drain within 30 s of SIGINT")
    assert exit_code == 0, f"{name} exited {exit_code}, expected 0"


def kill_one_replica(shard_map: ShardMap) -> str:
    """SIGKILL shard0's primary server (pid from its own /health)."""
    victim = shard_map.entries[0].primary
    with ServiceClient(victim.host, victim.port, timeout=5) as probe:
        pid = probe.health()["pid"]
    os.kill(pid, signal.SIGKILL)
    # wait until the endpoint actually refuses connections
    def dead():
        try:
            with socket.create_connection(
                (victim.host, victim.port), timeout=0.2
            ):
                return None
        except OSError:
            return True

    wait_for(dead, "the killed replica's port to close")
    return victim.endpoint


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="replica endpoints per shard (2 adds the kill-one-replica "
        "degradation phase)",
    )
    args = parser.parse_args()
    replicas = max(1, args.replicas)

    data = synthweb(
        num_texts=80,
        mean_length=120,
        vocab_size=512,
        duplicate_rate=0.2,
        span_length=48,
        mutation_rate=0.04,
        seed=7,
    )
    engine = NearDupEngine.from_corpus(data.corpus, k=8, t=20, vocab_size=512)
    root = Path(tempfile.mkdtemp(prefix="router_smoke_"))
    ports = free_ports(NUM_SHARDS * replicas + 1)
    shard_ports, router_port = ports[:-1], ports[-1]

    # build_shard_fleet assigns sequential ports from base_port; rewrite
    # the map with the independently-reserved ports instead.
    shard_map = build_shard_fleet(
        engine,
        root,
        num_shards=NUM_SHARDS,
        base_port=shard_ports[0],
        replicas_per_shard=replicas,
    )
    entries = []
    taken = iter(shard_ports)
    for entry in shard_map:
        entries.append(
            ShardEntry(
                name=entry.name,
                first_text=entry.first_text,
                count=entry.count,
                replicas=tuple(
                    Replica("127.0.0.1", next(taken)) for _ in entry.replicas
                ),
            )
        )
    shard_map = ShardMap(entries)
    shard_map.save(root / "shardmap.json")
    print(
        "fleet: "
        f"{[(e.name, [r.port for r in e.replicas], e.first_text, e.count) for e in entries]}"
    )

    shards = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve-shards", str(root),
            "--replicas", str(replicas),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    router = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "route",
            str(root / "shardmap.json"), "--port", str(router_port),
            "--policy", "round-robin" if replicas > 1 else "pick-first",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        client = ServiceClient("127.0.0.1", router_port, timeout=5)

        def healthy():
            for child, name in ((shards, "serve-shards"), (router, "route")):
                if child.poll() is not None:
                    output = child.stdout.read().decode(errors="replace")
                    raise SystemExit(f"{name} died during startup:\n{output}")
            try:
                health = client.health()
            except OSError:
                return None
            if health["shards_healthy"] != NUM_SHARDS:
                return None
            degraded = any(
                shard["replicas_healthy"] < shard["replicas_total"]
                for shard in health["shards"]
            )
            return None if degraded else health

        health = wait_for(healthy, "every replica healthy behind the router")
        assert health["role"] == "router"
        assert health["texts"] == engine.num_texts
        assert health["replicas_total"] == NUM_SHARDS * replicas
        print(
            f"health: {health['shards_healthy']}/{health['shards_total']} "
            f"shards ({health['replicas_total']} replicas), "
            f"{health['texts']} texts"
        )

        direct = ShardedSearcher(
            ShardedIndex.build(
                data.corpus,
                engine.index.family,
                engine.index.t,
                num_shards=NUM_SHARDS,
                vocab_size=512,
            )
        )
        checked = 0
        for text_id in (0, 40, 79):  # texts owned by both shards
            query = np.asarray(data.corpus[text_id])[:40]
            for theta in (0.6, 0.8):
                served = client.search(query, theta)
                assert served["ok"] is True and "partial" not in served
                want = result_to_wire(direct.search(query, theta))
                assert json.dumps(served["result"], sort_keys=True) == json.dumps(
                    want, sort_keys=True
                ), f"routed result differs from direct (text {text_id}, theta {theta})"
                checked += 1
        print(f"search: {checked} routed results byte-identical to direct")

        batch_queries = [np.asarray(data.corpus[i])[:32] for i in (5, 60)]
        served_batch = client.batch(batch_queries, 0.7)
        for position, query in enumerate(batch_queries):
            want = result_to_wire(direct.search(query, 0.7))
            got = served_batch["results"][position]
            assert json.dumps(got, sort_keys=True) == json.dumps(
                want, sort_keys=True
            ), f"routed batch result {position} differs from direct"
        print("batch: routed results byte-identical to direct")

        stats = client.stats()
        assert stats["router"]["completed"] >= checked
        assert set(stats["shards"]) == {"shard0", "shard1"}
        assert stats["aggregate"]["completed"] >= checked * NUM_SHARDS
        # satellite: per-replica pool counters surface through /stats
        for shard_name, routing in stats["routing"].items():
            for snap in routing["replicas"]:
                assert snap["pool"]["opened"] >= 1, (shard_name, snap)
        print(
            f"stats: router completed {stats['router']['completed']}, "
            f"fleet completed {stats['aggregate']['completed']}, "
            f"fan-out p50 {stats['router']['shard_latency']['p50_ms']:.1f} ms"
        )

        if replicas > 1:
            dead = kill_one_replica(shard_map)
            print(f"killed replica {dead} (SIGKILL) mid-run")
            query = np.asarray(data.corpus[40])[:40]
            want = json.dumps(
                result_to_wire(direct.search(query, 0.8)), sort_keys=True
            )
            # enough requests that round-robin keeps re-selecting the dead
            # endpoint until its breaker opens (default threshold 3)
            for _ in range(10):
                served = client.search(query, 0.8)
                assert served["ok"] is True and "partial" not in served
                assert json.dumps(served["result"], sort_keys=True) == want, (
                    "degraded routed result differs from direct"
                )
            stats = client.stats()
            assert stats["router"]["failovers"] >= 1, stats["router"]
            assert stats["router"]["breaker_trips"] >= 1, stats["router"]
            snaps = {
                snap["endpoint"]: snap
                for snap in stats["routing"]["shard0"]["replicas"]
            }
            assert snaps[dead]["breaker"]["state"] == "open", snaps[dead]
            health = client.health()
            assert health["shards_healthy"] == NUM_SHARDS
            shard0 = next(s for s in health["shards"] if s["name"] == "shard0")
            assert shard0["ok"] and shard0["replicas_healthy"] == replicas - 1
            print(
                "degraded: 10/10 answers byte-identical, "
                f"{stats['router']['failovers']} failovers, "
                f"breaker open on {dead}, shard0 still ok "
                f"({shard0['replicas_healthy']}/{shard0['replicas_total']} replicas)"
            )
        client.close()
    finally:
        shutdown(router, "route")
        shutdown(shards, "serve-shards")
    print("clean shutdown (exit 0 for router and fleet)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
