"""CI crash-recovery smoke for the WAL-backed live index.

Proves the live index's durability contract under hard kills: a child
process streams deterministic texts into a live root — sealing runs and
compacting as it goes — and records every *acknowledged* append to an
fsynced log.  The parent SIGKILLs it at a random moment, reopens the
root, and asserts

1. every acknowledged text id survived (WAL replay + manifest fence);
2. searches over the recovered index are byte-identical to an offline
   :func:`~repro.index.builder.build_memory_index` over the same texts
   (recomputed deterministically from their ids);
3. :func:`~repro.index.validate.validate_live_index` passes — the
   recovered root carries no stray runs, stale WAL segments, torn
   tails, or fence violations.

Each trial continues ingesting into the *same* root, so later trials
kill a process that opened mid-stream state (sealed runs + replayed
WAL), not a fresh directory.

Run: ``PYTHONPATH=src python tools/ingest_smoke.py [--trials 4]``
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.index.lsm import LiveIndex, LiveIndexConfig
from repro.index.validate import validate_live_index

VOCAB = 96
T = 6
FAMILY = HashFamily(k=5, seed=11)
SEAL_POSTINGS = 400
MAX_TEXTS = 100_000


def make_text(text_id: int) -> np.ndarray:
    """Text ``text_id``, reproducible from the id alone."""
    rng = np.random.default_rng([11, text_id])
    return rng.integers(0, VOCAB, size=int(rng.integers(T, 60)), dtype=np.uint32)


def live_config(background: bool) -> LiveIndexConfig:
    return LiveIndexConfig(
        seal_threshold_postings=SEAL_POSTINGS,
        ack_policy="always",
        compact_fanout=3,
        background_compaction=background,
    )


def run_child(root: str, ack_log: str) -> int:
    """Ingest forever (until killed), fsyncing an ack record per append."""
    live = LiveIndex(root, family=FAMILY, t=T, vocab_size=VOCAB,
                     config=live_config(background=True))
    start = live.num_texts
    with open(ack_log, "a") as log:
        for text_id in range(start, MAX_TEXTS):
            assigned = live.append_texts([make_text(text_id)])
            assert assigned == [text_id], (assigned, text_id)
            # The append returned, so it is durable under ack_policy
            # "always"; record the acknowledgement durably too.
            log.write(f"{text_id}\n")
            log.flush()
            os.fsync(log.fileno())
    return 0


def result_set(searcher, query: np.ndarray, theta: float) -> set:
    result = searcher.search(query, theta)
    return {
        (match.text_id, rect.i_lo, rect.i_hi, rect.j_lo, rect.j_hi, rect.count)
        for match in result.matches
        for rect in match.rectangles
    }


def run_trial(trial: int, root: Path, ack_log: Path, rng: random.Random) -> int:
    size_before = ack_log.stat().st_size if ack_log.exists() else 0
    child = subprocess.Popen(
        [sys.executable, __file__, "--child", str(root), str(ack_log)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
    )
    # Let it get through imports, recovery, and some fresh appends (the
    # log must grow past its pre-spawn size), then kill mid-flight.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if child.poll() is not None:
            output = child.stdout.read().decode(errors="replace")
            raise SystemExit(f"child exited early (trial {trial}):\n{output}")
        if ack_log.exists() and ack_log.stat().st_size > size_before:
            break
        time.sleep(0.02)
    else:
        raise SystemExit(f"child never acknowledged an append (trial {trial})")
    time.sleep(rng.uniform(0.0, 1.0))
    child.send_signal(signal.SIGKILL)
    child.wait()

    acked = [int(line) for line in ack_log.read_text().split()]
    max_acked = max(acked)

    live = LiveIndex(root, family=FAMILY, t=T, vocab_size=VOCAB,
                     config=live_config(background=False))
    recovered = live.num_texts
    assert recovered > max_acked, (
        f"trial {trial}: acknowledged append {max_acked} lost "
        f"(recovered only {recovered} texts)"
    )

    # Recovered index must answer exactly like an offline build over the
    # same texts (ids are deterministic, so the corpus is recomputable).
    texts = [make_text(text_id) for text_id in range(recovered)]
    offline = build_memory_index(
        InMemoryCorpus(texts), FAMILY, T, vocab_size=VOCAB
    )
    offline_searcher = NearDuplicateSearcher(offline)
    live_searcher = live.searcher()
    probes = {0, recovered - 1, max_acked} | {
        rng.randrange(recovered) for _ in range(5)
    }
    for text_id in sorted(probes):
        expected = result_set(offline_searcher, texts[text_id], 0.7)
        actual = result_set(live_searcher, texts[text_id], 0.7)
        assert expected == actual, (
            f"trial {trial}: query {text_id} diverges after recovery "
            f"(only-offline={expected - actual}, only-live={actual - expected})"
        )
    live.close()

    report = validate_live_index(root)
    assert report.ok, f"trial {trial}: invariant (9) failed: {report.errors}"
    print(
        f"trial {trial}: killed at {len(acked)} acks (max id {max_acked}), "
        f"recovered {recovered} texts, {len(probes)} probes identical, "
        f"validate OK ({report.lists_checked} lists)"
    )
    return recovered


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--child", nargs=2, metavar=("ROOT", "ACK_LOG"), default=None,
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args()
    if args.child is not None:
        return run_child(*args.child)

    rng = random.Random(args.seed)
    base = Path(tempfile.mkdtemp(prefix="ingest_smoke_"))
    root = base / "live"
    ack_log = base / "acks.log"
    total = 0
    for trial in range(args.trials):
        total = run_trial(trial, root, ack_log, rng)
    print(f"PASS: {args.trials} kill/recover trials, {total} texts survived")
    return 0


if __name__ == "__main__":
    sys.exit(main())
