"""CI smoke test of the served stack, end to end through the CLI.

Builds a tiny engine, launches ``repro-cli serve`` as a real child
process, round-trips ``/health`` and ``/search`` through
:class:`ServiceClient`, checks the served result byte-equal to a
direct in-process search, then interrupts the server and asserts a
clean (exit 0) graceful shutdown.

With ``--workers N`` (N > 1) the server runs as a prefork fleet —
N forked processes sharing one mmap index and one listening socket —
and the smoke additionally asserts the aggregated ``cluster`` block
of ``/stats`` sees the whole fleet.

The server runs with every cache tier engaged (packed index,
``--cache-policy tinylfu --block-cache-bytes ... --result-cache on``)
and the smoke asserts ``/stats`` surfaces each tier's block (``cache``,
``block_cache``, ``result_cache``) — so served results are checked
byte-equal to direct search *through* the full cache hierarchy.

Run: ``PYTHONPATH=src python tools/service_smoke.py [--workers 2]``
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.corpus.synthetic import synthweb
from repro.engine import NearDupEngine
from repro.service import ServiceClient, result_to_wire


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="prefork server processes (1 = single in-process server)",
    )
    args = parser.parse_args()

    data = synthweb(
        num_texts=80,
        mean_length=120,
        vocab_size=512,
        duplicate_rate=0.2,
        span_length=48,
        mutation_rate=0.04,
        seed=7,
    )
    engine = NearDupEngine.from_corpus(
        data.corpus, k=8, t=20, vocab_size=512, codec="packed"
    )
    directory = Path(tempfile.mkdtemp(prefix="service_smoke_"))
    engine.save(directory)

    port = free_port()
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", str(directory),
            "--port", str(port), "--workers", str(args.workers),
            "--linger-ms", "2",
            "--cache-policy", "tinylfu",
            "--block-cache-bytes", str(4 << 20),
            "--result-cache", "on",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        client = ServiceClient("127.0.0.1", port, timeout=5)
        deadline = time.monotonic() + 30
        health = None
        while time.monotonic() < deadline:
            if server.poll() is not None:
                output = server.stdout.read().decode(errors="replace")
                raise SystemExit(f"server died during startup:\n{output}")
            try:
                health = client.health()
                break
            except OSError:
                time.sleep(0.1)
        assert health is not None, "server never became healthy"
        assert health["status"] == "serving"
        assert health["texts"] == engine.num_texts
        print(f"health: {health}")

        query = np.asarray(data.corpus[0])[:40]
        served = client.search(query, 0.8)
        direct = result_to_wire(engine.search_raw(query, 0.8))
        assert json.dumps(served["result"], sort_keys=True) == json.dumps(
            direct, sort_keys=True
        ), "served result differs from direct search"
        assert served["result"]["matches"], "query should match its own text"
        print(
            f"search: {len(served['result']['matches'])} matches, "
            f"{served['server']['total_ms']:.1f} ms "
            f"(batched_with={served['server']['batched_with']})"
        )
        stats = client.stats()
        assert stats["service"]["completed"] >= 1
        list_tier = stats["cache"]
        assert list_tier["policy"] == "tinylfu", list_tier
        assert list_tier["hits"] + list_tier["misses"] >= 1, list_tier
        block_tier = stats.get("block_cache")
        assert block_tier is not None, "/stats is missing the block_cache tier"
        assert block_tier["capacity_bytes"] == 4 << 20, block_tier
        result_tier = stats.get("result_cache")
        assert result_tier is not None, "/stats is missing the result_cache tier"
        repeat = client.search(query, 0.8)
        assert json.dumps(repeat["result"], sort_keys=True) == json.dumps(
            direct, sort_keys=True
        ), "result-cache hit differs from direct search"
        result_tier = client.stats()["result_cache"]
        assert result_tier["hits"] >= 1, result_tier
        print(
            "cache tiers: "
            f"list[{list_tier['policy']}] "
            f"{list_tier['hits']}h/{list_tier['misses']}m, "
            f"block {block_tier['hits']}h/{block_tier['misses']}m "
            f"({block_tier['cached_bytes']}B), "
            f"result {result_tier['hits']}h/{result_tier['misses']}m "
            f"gen={result_tier['generation']}"
        )
        if args.workers > 1:
            cluster = stats.get("cluster")
            assert cluster is not None, "prefork /stats is missing the cluster block"
            assert cluster["procs"] == args.workers, cluster
            assert cluster["alive"] == args.workers, cluster
            assert cluster["completed"] >= 1, cluster
            print(
                f"cluster: {cluster['alive']}/{cluster['procs']} workers, "
                f"{cluster['completed']} completed, pids "
                f"{[worker['pid'] for worker in cluster['workers']]}"
            )
        client.close()
    finally:
        server.send_signal(signal.SIGINT)
        try:
            exit_code = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            raise SystemExit("server did not drain within 30 s of SIGINT")
    assert exit_code == 0, f"server exited {exit_code}, expected 0"
    print("clean shutdown (exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
