"""Tests for the LSM live index (WAL, manifest, memtable, runs, service).

Layered bottom-up: WAL record encoding and torn-tail recovery, manifest
atomic commit, compaction picking, the Bloom prefilter, then
:class:`LiveIndex` end-to-end (append/seal/compact/reopen equivalence
with an offline build, snapshot isolation, crash-window GC), the live
engine facade, ``validate_live_index``, and the ``/ingest`` service
round trip with its client retry policy.
"""

from __future__ import annotations

import json
import shutil
import threading

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.engine import NearDupEngine
from repro.exceptions import IndexFormatError, InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.lsm import (
    ACK_POLICIES,
    BloomPrefilter,
    LiveIndex,
    LiveIndexConfig,
    LiveSearcher,
    Manifest,
    MANIFEST_FILE,
    UnionIndexReader,
    WAL_MAGIC,
    WriteAheadLog,
    decode_record,
    encode_record,
    manifest_exists,
    pick_compaction,
    run_name,
    scan_wal,
    wal_name,
)
from repro.index.validate import validate_live_index
from repro.service import (
    RemoteError,
    RequestShedError,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
)

VOCAB = 64
T = 4
FAMILY = HashFamily(k=5, seed=99)


def make_texts(rng: np.random.Generator, count: int, lo: int = 1, hi: int = 30):
    return [
        rng.integers(0, VOCAB, size=int(rng.integers(lo, hi)), dtype=np.uint32)
        for _ in range(count)
    ]


def result_set(searcher, query, theta=0.6):
    result = searcher.search(query, theta)
    return {
        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
        for m in result.matches
        for r in m.rectangles
    }


def offline_searcher(texts):
    index = build_memory_index(InMemoryCorpus(texts), FAMILY, T, vocab_size=VOCAB)
    return NearDuplicateSearcher(index)


def small_config(**overrides):
    base = dict(
        seal_threshold_postings=200,
        compact_fanout=3,
        background_compaction=False,
    )
    base.update(overrides)
    return LiveIndexConfig(**base)


def make_live(root, **overrides) -> LiveIndex:
    return LiveIndex(
        root, family=FAMILY, t=T, vocab_size=VOCAB, config=small_config(**overrides)
    )


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWAL:
    def test_record_roundtrip(self):
        texts = [
            np.asarray([1, 2, 3], dtype=np.uint32),
            np.asarray([], dtype=np.uint32),
            np.asarray([60, 0, 60, 5], dtype=np.uint32),
        ]
        first_id, decoded = decode_record(encode_record(17, texts))
        assert first_id == 17
        assert [t.tolist() for t in decoded] == [t.tolist() for t in texts]

    def test_append_and_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, ack_policy="none")
        wal.append(0, [np.asarray([1, 2, 3, 4], dtype=np.uint32)])
        wal.append(1, [np.asarray([5], dtype=np.uint32)] * 2)
        wal.close()
        records, valid_end, tail_error = scan_wal(path)
        assert tail_error is None
        assert valid_end == path.stat().st_size
        assert [(fid, len(texts)) for fid, texts in records] == [(0, 1), (1, 2)]

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(0, [np.asarray([1, 2, 3, 4], dtype=np.uint32)])
        wal.append(1, [np.asarray([9, 9, 9, 9, 9], dtype=np.uint32)])
        wal.close()
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\xde\xad")  # header + short payload
        reopened = WriteAheadLog(path)
        assert [fid for fid, _ in reopened.recovered] == [0, 1]
        assert reopened.truncated_bytes == 6
        assert path.stat().st_size == intact
        # The truncated segment accepts appends cleanly afterwards.
        reopened.append(2, [np.asarray([7, 7], dtype=np.uint32)])
        reopened.close()
        records, _, tail_error = scan_wal(path)
        assert tail_error is None
        assert [fid for fid, _ in records] == [0, 1, 2]

    def test_corrupt_payload_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(0, [np.asarray([1, 2, 3], dtype=np.uint32)])
        wal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a token byte: CRC now mismatches
        path.write_bytes(data)
        reopened = WriteAheadLog(path)
        assert reopened.recovered == []
        assert reopened.truncated_bytes > 0
        reopened.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL0" + b"\x00" * 16)
        with pytest.raises(IndexFormatError, match="magic"):
            scan_wal(path)

    def test_ack_policy_sync_counts(self, tmp_path):
        always = WriteAheadLog(tmp_path / "a.log", ack_policy="always")
        batch = WriteAheadLog(tmp_path / "b.log", ack_policy="batch", fsync_batch=2)
        none = WriteAheadLog(tmp_path / "c.log", ack_policy="none")
        text = [np.asarray([1, 2, 3], dtype=np.uint32)]
        for i in range(4):
            always.append(i, text)
            batch.append(i, text)
            none.append(i, text)
        assert always.syncs == 4
        assert batch.syncs == 2  # every second append
        assert none.syncs == 0
        for wal in (always, batch, none):
            wal.close()

    def test_bad_policy_rejected(self, tmp_path):
        assert set(ACK_POLICIES) == {"always", "batch", "none"}
        with pytest.raises(InvalidParameterError, match="ack_policy"):
            WriteAheadLog(tmp_path / "w.log", ack_policy="sometimes")


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_commit_load_roundtrip(self, tmp_path):
        manifest = Manifest(family=FAMILY, t=T, vocab_size=VOCAB, codec="packed")
        manifest.runs = [run_name(0)]
        manifest.next_text_id = 42
        manifest.wal_seq = 3
        manifest.run_seq = 1
        manifest.commit(tmp_path)
        assert manifest.generation == 1  # commit bumps
        loaded = Manifest.load(tmp_path)
        assert loaded == manifest
        assert manifest_exists(tmp_path)

    def test_generation_strictly_increases(self, tmp_path):
        manifest = Manifest(family=FAMILY, t=T, vocab_size=VOCAB)
        manifest.commit(tmp_path)
        manifest.commit(tmp_path)
        assert Manifest.load(tmp_path).generation == 2

    def test_missing_and_malformed(self, tmp_path):
        with pytest.raises(IndexFormatError, match="missing"):
            Manifest.load(tmp_path)
        (tmp_path / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(IndexFormatError, match="JSON"):
            Manifest.load(tmp_path)

    def test_unsupported_version(self, tmp_path):
        manifest = Manifest(family=FAMILY, t=T, vocab_size=VOCAB)
        manifest.commit(tmp_path)
        raw = json.loads((tmp_path / MANIFEST_FILE).read_text())
        raw["format_version"] = 999
        (tmp_path / MANIFEST_FILE).write_text(json.dumps(raw))
        with pytest.raises(IndexFormatError, match="version"):
            Manifest.load(tmp_path)


# ----------------------------------------------------------------------
# Compaction picking
# ----------------------------------------------------------------------
class TestPickCompaction:
    def test_full_tier_window(self):
        assert pick_compaction([100, 100, 100, 100], 4, 4.0) == (0, 4)

    def test_too_few_runs(self):
        assert pick_compaction([100, 100], 4, 4.0) is None
        assert pick_compaction([], 4, 4.0) is None

    def test_skips_giant_run(self):
        # The first run is a different tier; the small tail forms one.
        assert pick_compaction([10**6, 10, 10, 10, 10], 4, 4.0) == (1, 5)

    def test_fallback_smallest_window(self):
        # No tier window, but 2*fanout runs: pick the cheapest fanout span.
        sizes = [1000, 1, 1000, 1, 1000, 1, 1000, 1]
        lo, hi = pick_compaction(sizes, 4, 1.5)
        assert hi - lo == 4
        total = sum(sizes[lo:hi])
        assert total == min(
            sum(sizes[i : i + 4]) for i in range(len(sizes) - 3)
        )


# ----------------------------------------------------------------------
# Bloom prefilter
# ----------------------------------------------------------------------
class TestBloomPrefilter:
    def test_no_false_negatives(self):
        rng = np.random.default_rng(7)
        bloom = BloomPrefilter(capacity=500, fp_rate=1e-3)
        texts = make_texts(rng, 100)
        assert [bloom.seen_or_add(t) for t in texts] == [False] * 100
        assert [bloom.seen_or_add(t) for t in texts] == [True] * 100

    def test_save_load(self, tmp_path):
        rng = np.random.default_rng(8)
        bloom = BloomPrefilter(capacity=100, fp_rate=1e-3)
        texts = make_texts(rng, 20)
        for text in texts:
            bloom.seen_or_add(text)
        path = tmp_path / "bloom.npz"
        bloom.save(path)
        loaded = BloomPrefilter.load(path)
        assert [loaded.seen_or_add(t) for t in texts] == [True] * 20
        assert 0.0 < loaded.fill_ratio < 1.0


# ----------------------------------------------------------------------
# LiveIndex end-to-end
# ----------------------------------------------------------------------
class TestLiveIndex:
    def test_append_seal_compact_matches_offline(self, tmp_path):
        rng = np.random.default_rng(21)
        texts = make_texts(rng, 80, lo=T, hi=30)
        with make_live(tmp_path / "live") as live:
            ids = []
            for start in range(0, 80, 10):
                ids.extend(live.append_texts(texts[start : start + 10]))
            assert ids == list(range(80))
            assert live.num_texts == 80
            assert len(live.runs) > 1  # seal threshold forced several runs
            offline = offline_searcher(texts)
            searcher = live.searcher()
            for probe in texts[::13]:
                assert result_set(searcher, probe) == result_set(offline, probe)
            runs_before = len(live.runs)
            while live.compact():
                pass
            assert len(live.runs) < runs_before
            for probe in texts[::13]:
                assert result_set(searcher, probe) == result_set(offline, probe)

    def test_reopen_replays_wal(self, tmp_path):
        rng = np.random.default_rng(22)
        texts = make_texts(rng, 30, lo=T, hi=20)
        root = tmp_path / "live"
        live = make_live(root, seal_threshold_postings=10**9)
        live.append_texts(texts)
        assert live.runs == []  # nothing sealed: all state is WAL-only
        live.wal.close()  # simulate a crash: no seal, no manifest update
        reopened = make_live(root, seal_threshold_postings=10**9)
        assert reopened.num_texts == 30
        assert reopened.stats.replayed_texts == 30
        offline = offline_searcher(texts)
        searcher = reopened.searcher()
        for probe in texts[::7]:
            assert result_set(searcher, probe) == result_set(offline, probe)
        reopened.close()

    def test_reopen_validates_params(self, tmp_path):
        root = tmp_path / "live"
        make_live(root).close()
        with pytest.raises(InvalidParameterError):
            LiveIndex(root, family=HashFamily(k=5, seed=1), t=T, vocab_size=VOCAB)
        with pytest.raises(InvalidParameterError):
            LiveIndex(root, family=FAMILY, t=T + 1, vocab_size=VOCAB)

    def test_recovery_gc_of_unreferenced_run(self, tmp_path):
        rng = np.random.default_rng(23)
        root = tmp_path / "live"
        live = make_live(root)
        live.append_texts(make_texts(rng, 40, lo=T))
        live.seal()
        live.close()
        manifest = Manifest.load(root)
        # Crash window: a run directory written but never committed.
        stray = root / run_name(manifest.run_seq)
        shutil.copytree(root / manifest.runs[0], stray)
        reopened = make_live(root)
        assert not stray.exists()  # GC'd on open
        assert validate_live_index(root).ok
        reopened.close()

    def test_snapshot_isolation_across_seal_and_compact(self, tmp_path):
        rng = np.random.default_rng(24)
        first = make_texts(rng, 30, lo=T)
        more = make_texts(rng, 40, lo=T)
        with make_live(tmp_path / "live") as live:
            live.append_texts(first)
            pinned = live.snapshot()
            pinned_offline = offline_searcher(first)
            probe = first[0]
            expected = result_set(NearDuplicateSearcher(pinned), probe)
            assert expected == result_set(pinned_offline, probe)
            live.append_texts(more)
            live.seal()
            while live.compact():
                pass
            # The pinned snapshot still answers over exactly `first`.
            assert result_set(NearDuplicateSearcher(pinned), probe) == expected
            # A fresh snapshot sees everything.
            fresh = result_set(live.searcher(), probe)
            assert fresh == result_set(offline_searcher(first + more), probe)

    def test_dedupe_prefilter(self, tmp_path):
        rng = np.random.default_rng(25)
        texts = make_texts(rng, 10, lo=T)
        with make_live(tmp_path / "live", dedupe=True) as live:
            ids = live.append_texts(texts)
            assert ids == list(range(10))
            replayed = live.append_texts(texts)
            assert replayed == [None] * 10
            assert live.num_texts == 10
            assert live.stats.texts_deduped == 10

    def test_dedupe_survives_reopen(self, tmp_path):
        rng = np.random.default_rng(26)
        texts = make_texts(rng, 10, lo=T)
        root = tmp_path / "live"
        live = make_live(root, dedupe=True)
        live.append_texts(texts)
        live.close()
        reopened = make_live(root, dedupe=True)
        assert reopened.append_texts(texts) == [None] * 10
        reopened.close()

    def test_background_compaction_thread(self, tmp_path):
        rng = np.random.default_rng(27)
        texts = make_texts(rng, 120, lo=T, hi=30)
        with make_live(
            tmp_path / "live", background_compaction=True, compact_fanout=2
        ) as live:
            live.append_texts(texts)
            deadline = threading.Event()
            for _ in range(200):  # compactor drains to below fanout
                if len(live.runs) < 2:
                    break
                deadline.wait(0.05)
            assert len(live.runs) < 2 or live.stats.compactions > 0
            searcher = live.searcher()
            offline = offline_searcher(texts)
            assert result_set(searcher, texts[0]) == result_set(offline, texts[0])

    def test_status_and_stats(self, tmp_path):
        rng = np.random.default_rng(28)
        with make_live(tmp_path / "live") as live:
            live.append_texts(make_texts(rng, 20, lo=T))
            status = live.status()
            assert status["next_text_id"] == 20
            assert status["ack_policy"] == "always"
            assert status["appends"] == 1
            assert status["texts_accepted"] == 20

    def test_rejects_out_of_range_tokens(self, tmp_path):
        with make_live(tmp_path / "live") as live:
            live.append_texts([np.asarray([0, 1, 2, 3, 4], dtype=np.uint32)])
            with pytest.raises(InvalidParameterError):
                live.append_texts(
                    [np.asarray([0, 1], dtype=np.uint32),
                     np.asarray([VOCAB, 1, 2], dtype=np.uint32)]
                )
            # Validation failed before any mutation: batch atomicity.
            assert live.num_texts == 1


# ----------------------------------------------------------------------
# Union reader
# ----------------------------------------------------------------------
class TestUnionReader:
    def test_delegates_and_concatenates(self, tmp_path):
        rng = np.random.default_rng(31)
        texts = make_texts(rng, 40, lo=T)
        with make_live(tmp_path / "live") as live:
            live.append_texts(texts)
            reader = live.snapshot()
            assert isinstance(reader, UnionIndexReader)
            assert reader.num_sources >= 1
            offline = build_memory_index(
                InMemoryCorpus(texts), FAMILY, T, vocab_size=VOCAB
            )
            assert reader.num_postings == offline.num_postings
            for func in range(FAMILY.k):
                for key in list(offline.list_keys(func))[:10]:
                    expected = offline.load_list(func, key)
                    got = reader.load_list(func, key)
                    assert got.tolist() == expected.tolist()
                    assert reader.list_length(func, key) == expected.size


# ----------------------------------------------------------------------
# validate_live_index
# ----------------------------------------------------------------------
class TestValidateLive:
    @pytest.fixture
    def sealed_root(self, tmp_path):
        rng = np.random.default_rng(41)
        root = tmp_path / "live"
        live = make_live(root)
        live.append_texts(make_texts(rng, 60, lo=T))
        live.seal()
        live.close()
        return root

    def test_clean_root_ok(self, sealed_root):
        report = validate_live_index(sealed_root)
        assert report.ok, report.errors
        assert report.lists_checked > 0

    def test_detects_stray_run(self, sealed_root):
        manifest = Manifest.load(sealed_root)
        stray = sealed_root / run_name(manifest.run_seq + 7)
        shutil.copytree(sealed_root / manifest.runs[0], stray)
        report = validate_live_index(sealed_root)
        assert not report.ok
        assert any("stray run" in error for error in report.errors)

    def test_detects_stale_wal(self, sealed_root):
        (sealed_root / wal_name(0)).write_bytes(WAL_MAGIC)
        report = validate_live_index(sealed_root)
        assert not report.ok
        assert any("stale" in error for error in report.errors)

    def test_detects_missing_run(self, sealed_root):
        manifest = Manifest.load(sealed_root)
        shutil.rmtree(sealed_root / manifest.runs[0])
        report = validate_live_index(sealed_root)
        assert not report.ok

    def test_detects_missing_manifest(self, tmp_path):
        report = validate_live_index(tmp_path)
        assert not report.ok


# ----------------------------------------------------------------------
# Engine facade
# ----------------------------------------------------------------------
class TestLiveEngine:
    def test_create_append_query(self, tmp_path):
        rng = np.random.default_rng(51)
        texts = make_texts(rng, 30, lo=T)
        engine = NearDupEngine.live(
            tmp_path / "live", k=5, t=T, vocab_size=VOCAB, seed=99,
            config=small_config(),
        )
        ids = engine.append_texts(texts)
        assert ids == list(range(30))
        assert engine.num_texts == 30
        offline = offline_searcher(texts)
        assert result_set(engine.searcher, texts[3]) == result_set(
            offline, texts[3]
        )
        engine.close()

    def test_reopen_ignores_creation_params(self, tmp_path):
        root = tmp_path / "live"
        engine = NearDupEngine.live(
            root, k=5, t=T, vocab_size=VOCAB, seed=99, config=small_config()
        )
        engine.append_text(np.asarray([1, 2, 3, 4, 5], dtype=np.uint32))
        engine.close()
        reopened = NearDupEngine.live(root)  # params read from manifest
        assert reopened.live_index.manifest.t == T
        assert reopened.num_texts == 1
        reopened.close()

    def test_cached_searcher_is_live(self, tmp_path):
        engine = NearDupEngine.live(
            tmp_path / "live", k=5, t=T, vocab_size=VOCAB, seed=99,
            config=small_config(),
        )
        cached = engine.cached_searcher(cache_bytes=1 << 20)
        # The live default wraps the LiveSearcher in the generation-aware
        # result cache; the live searcher stays reachable underneath.
        assert isinstance(cached.inner, LiveSearcher)
        assert cached.result_cache is not None
        without_results = engine.cached_searcher(
            cache_bytes=1 << 20, result_cache=False
        )
        assert isinstance(without_results, LiveSearcher)
        engine.close()

    def test_static_engine_rejects_live_api(self, planted_data, planted_index):
        engine = NearDupEngine(planted_data.corpus, planted_index)
        with pytest.raises(InvalidParameterError):
            engine.live_index
        with pytest.raises(InvalidParameterError):
            engine.append_texts([[1, 2, 3]])

    def test_save_rejected_for_live(self, tmp_path):
        engine = NearDupEngine.live(
            tmp_path / "live", k=5, t=T, vocab_size=VOCAB, seed=99,
            config=small_config(),
        )
        with pytest.raises(InvalidParameterError):
            engine.save(tmp_path / "out")
        engine.close()


# ----------------------------------------------------------------------
# Service /ingest
# ----------------------------------------------------------------------
class TestIngestService:
    @pytest.fixture
    def live_runner(self, tmp_path):
        engine = NearDupEngine.live(
            tmp_path / "live", k=5, t=T, vocab_size=VOCAB, seed=99,
            config=small_config(),
        )
        config = ServiceConfig(port=0, workers=1, max_queue=16)
        with ServiceRunner(engine, config) as active:
            yield active

    def test_ingest_then_search(self, live_runner):
        rng = np.random.default_rng(61)
        texts = make_texts(rng, 12, lo=T)
        with ServiceClient(live_runner.host, live_runner.port) as client:
            response = client.ingest(texts)
            assert response["ids"] == list(range(12))
            assert response["accepted"] == 12
            assert response["next_text_id"] == 12
            offline = offline_searcher(texts)
            wire = client.search(texts[5], 0.6)
            served = {
                (m["text_id"], r["i_lo"], r["i_hi"], r["j_lo"], r["j_hi"],
                 r["count"])
                for m in wire["result"]["matches"]
                for r in m["rectangles"]
            }
            assert served == result_set(offline, texts[5])

    def test_health_and_stats_carry_live_block(self, live_runner):
        with ServiceClient(live_runner.host, live_runner.port) as client:
            assert client.health()["backend"] == "live"
            client.ingest([[1, 2, 3, 4, 5]])
            stats = client.stats()
            assert stats["live"]["next_text_id"] == 1

    def test_ingest_validation_errors(self, live_runner):
        with ServiceClient(live_runner.host, live_runner.port) as client:
            with pytest.raises(RemoteError):
                client._request("POST", "/ingest", {"texts": "nope"})
            with pytest.raises(RemoteError):
                client._request("POST", "/ingest", {})

    def test_static_engine_rejects_ingest(self, planted_data, planted_index):
        engine = NearDupEngine(planted_data.corpus, planted_index)
        with ServiceRunner(engine, ServiceConfig(port=0, workers=1)) as runner:
            with ServiceClient(runner.host, runner.port) as client:
                with pytest.raises(RemoteError, match="live"):
                    client.ingest([[1, 2, 3]])


# ----------------------------------------------------------------------
# Client retry policy (satellite 2)
# ----------------------------------------------------------------------
class TestClientRetry:
    def _flaky_client(self, failures, exc_type):
        client = ServiceClient(retries=2, backoff_ms=1.0)
        calls = {"count": 0}

        def fake_request_once(method, path, body=None):
            calls["count"] += 1
            if calls["count"] <= failures:
                raise exc_type("boom")
            return {"ok": True, "echo": path}

        client._request_once = fake_request_once
        return client, calls

    @pytest.mark.parametrize(
        "exc_type", [ConnectionResetError, BrokenPipeError]
    )
    def test_idempotent_requests_retry_connection_errors(self, exc_type):
        client, calls = self._flaky_client(1, exc_type)
        assert client._request("POST", "/search", {})["ok"] is True
        assert calls["count"] == 2

    def test_retry_budget_exhausts(self):
        client, calls = self._flaky_client(10, ConnectionResetError)
        with pytest.raises(ConnectionResetError):
            client._request("POST", "/search", {})
        assert calls["count"] == 3  # initial + retries=2

    def test_ingest_never_retries_connection_errors(self):
        client, calls = self._flaky_client(1, ConnectionResetError)
        with pytest.raises(ConnectionResetError):
            client._request("POST", "/ingest", {"texts": []}, idempotent=False)
        assert calls["count"] == 1

    def test_ingest_still_retries_shed(self):
        client, calls = self._flaky_client(1, RequestShedError)
        response = client._request(
            "POST", "/ingest", {"texts": []}, idempotent=False
        )
        assert response["ok"] is True
        assert calls["count"] == 2

    def test_no_retries_by_default(self):
        client = ServiceClient()
        calls = {"count": 0}

        def fake_request_once(method, path, body=None):
            calls["count"] += 1
            raise ConnectionResetError("boom")

        client._request_once = fake_request_once
        with pytest.raises(ConnectionResetError):
            client._request("GET", "/health")
        assert calls["count"] == 1
