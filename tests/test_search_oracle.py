"""Integration tests: the indexed searcher vs the brute-force oracle.

Theorem 2 says Algorithm 3 is *sound and complete* for the approximate
Definition 2.  These tests enumerate Definition 2's answer set directly
and require exact equality — across corpora, thresholds, thetas, prefix
filter settings and both index backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import search_definition2
from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.index.storage import DiskInvertedIndex, write_index


def result_spans(result) -> set[tuple[int, int, int]]:
    return {
        (m.text_id, i, j)
        for m in result.matches
        for rect in m.rectangles
        for (i, j) in rect.iter_spans(result.t)
    }


def oracle_spans(corpus, query, theta, t, family) -> set[tuple[int, int, int]]:
    return {
        (s.text_id, s.start, s.end)
        for s in search_definition2(corpus, query, theta, t, family)
    }


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("theta", [0.4, 0.7, 1.0])
def test_exact_equality_random_corpora(seed, theta):
    rng = np.random.default_rng(seed)
    vocab = 60
    texts = [
        rng.integers(0, vocab, size=int(rng.integers(15, 70))).astype(np.uint32)
        for _ in range(10)
    ]
    corpus = InMemoryCorpus(texts)
    t = int(rng.integers(3, 8))
    family = HashFamily(k=int(rng.integers(4, 10)), seed=seed + 50)
    index = build_memory_index(corpus, family, t=t, vocab_size=vocab)
    query = rng.integers(0, vocab, size=25).astype(np.uint32)
    expected = oracle_spans(corpus, query, theta, t, family)
    got = result_spans(NearDuplicateSearcher(index).search(query, theta))
    assert got == expected


def test_equality_with_planted_duplicates():
    """Realistic case: query copied into the corpus with mutations."""
    rng = np.random.default_rng(7)
    vocab = 120
    texts = [rng.integers(0, vocab, size=80).astype(np.uint32) for _ in range(8)]
    query = np.array(texts[2][10:50])
    mutated = np.array(query)
    mutated[::9] = rng.integers(0, vocab, size=mutated[::9].size)
    texts[6][30:70] = mutated
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=12, seed=3)
    t = 10
    index = build_memory_index(corpus, family, t=t, vocab_size=vocab)
    for theta in (0.5, 0.8, 0.95):
        expected = oracle_spans(corpus, query, theta, t, family)
        got = result_spans(NearDuplicateSearcher(index).search(query, theta))
        assert got == expected


@pytest.mark.parametrize("cutoff", [0, 1, 4, None])
def test_prefix_filter_preserves_equality(cutoff):
    """Zipf-skewed corpus (long lists exist) with every filter setting."""
    rng = np.random.default_rng(21)
    vocab = 30  # tiny vocabulary -> heavy skew -> long lists
    texts = [rng.integers(0, vocab, size=60).astype(np.uint32) for _ in range(8)]
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=8, seed=9)
    t = 5
    index = build_memory_index(corpus, family, t=t, vocab_size=vocab)
    query = rng.integers(0, vocab, size=20).astype(np.uint32)
    for theta in (0.5, 0.9):
        expected = oracle_spans(corpus, query, theta, t, family)
        searcher = NearDuplicateSearcher(index, long_list_cutoff=cutoff)
        assert result_spans(searcher.search(query, theta)) == expected


def test_disk_index_equality(tmp_path):
    rng = np.random.default_rng(31)
    vocab = 50
    texts = [rng.integers(0, vocab, size=50).astype(np.uint32) for _ in range(8)]
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=6, seed=11)
    t = 6
    memory = build_memory_index(corpus, family, t=t, vocab_size=vocab)
    write_index(memory, tmp_path / "idx", zonemap_step=4, zonemap_min_list=8)
    disk = DiskInvertedIndex(tmp_path / "idx")
    query = rng.integers(0, vocab, size=18).astype(np.uint32)
    for theta in (0.5, 0.8):
        expected = oracle_spans(corpus, query, theta, t, family)
        got = result_spans(
            NearDuplicateSearcher(disk, long_list_cutoff=4).search(query, theta)
        )
        assert got == expected


def test_query_is_corpus_span():
    """A query lifted verbatim from the corpus must match itself at theta=1."""
    rng = np.random.default_rng(13)
    vocab = 200
    texts = [rng.integers(0, vocab, size=100).astype(np.uint32) for _ in range(5)]
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=10, seed=5)
    t = 8
    index = build_memory_index(corpus, family, t=t, vocab_size=vocab)
    query = np.array(texts[3][20:60])
    result = NearDuplicateSearcher(index).search(query, 1.0)
    spans = result_spans(result)
    assert (3, 20, 59) in spans
    expected = oracle_spans(corpus, query, 1.0, t, family)
    assert spans == expected


def test_duplicate_heavy_text():
    """Texts full of repeated tokens exercise the tie-breaking path."""
    rng = np.random.default_rng(17)
    vocab = 6  # extreme duplication
    texts = [rng.integers(0, vocab, size=40).astype(np.uint32) for _ in range(6)]
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=6, seed=23)
    t = 4
    index = build_memory_index(corpus, family, t=t, vocab_size=vocab)
    query = rng.integers(0, vocab, size=12).astype(np.uint32)
    for theta in (0.5, 1.0):
        expected = oracle_spans(corpus, query, theta, t, family)
        got = result_spans(NearDuplicateSearcher(index).search(query, theta))
        assert got == expected
