"""Tests for exact Jaccard measures and span post-processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.verify import (
    Span,
    distinct_jaccard,
    estimate_jaccard,
    merge_overlapping_spans,
    multiset_jaccard,
    verify_spans,
)


class TestDistinctJaccard:
    def test_identical(self):
        a = np.array([1, 2, 3])
        assert distinct_jaccard(a, a) == 1.0

    def test_disjoint(self):
        assert distinct_jaccard(np.array([1, 2]), np.array([3, 4])) == 0.0

    def test_paper_example(self):
        """Section 3.1: (A,A,A,B,B) vs (A,B,B,C) has distinct Jaccard 2/3."""
        a = np.array([0, 0, 0, 1, 1])  # A=0, B=1, C=2
        b = np.array([0, 1, 1, 2])
        assert distinct_jaccard(a, b) == pytest.approx(2 / 3)

    def test_duplicates_ignored(self):
        a = np.array([1, 1, 1, 2])
        b = np.array([1, 2, 2, 2])
        assert distinct_jaccard(a, b) == 1.0

    def test_empty_vs_empty(self):
        assert distinct_jaccard(np.array([]), np.array([])) == 1.0

    def test_empty_vs_nonempty(self):
        assert distinct_jaccard(np.array([]), np.array([1])) == 0.0

    def test_symmetric(self, rng):
        a = rng.integers(0, 10, 20)
        b = rng.integers(0, 10, 20)
        assert distinct_jaccard(a, b) == distinct_jaccard(b, a)


class TestMultisetJaccard:
    def test_paper_example(self):
        """Section 3.1: (A,A,A,B,B) vs (A,B,B,B,C) has multiset Jaccard 3/7.

        The paper expands the pair to (A1,A2,A3,B1,B2) and
        (A1,B1,B2,B3,C1): intersection {A1,B1,B2} (3), union 7.
        """
        a = np.array([0, 0, 0, 1, 1])
        b = np.array([0, 1, 1, 1, 2])
        assert multiset_jaccard(a, b) == pytest.approx(3 / 7)
        assert distinct_jaccard(a, b) == pytest.approx(2 / 3)

    def test_identical(self):
        a = np.array([1, 1, 2, 3])
        assert multiset_jaccard(a, a) == 1.0

    def test_duplicates_matter(self):
        a = np.array([1, 1])
        b = np.array([1])
        assert multiset_jaccard(a, b) == pytest.approx(0.5)
        assert distinct_jaccard(a, b) == 1.0

    def test_empty_vs_empty(self):
        assert multiset_jaccard(np.array([]), np.array([])) == 1.0


class TestEstimateJaccard:
    def test_identical_sketches(self):
        sketch = np.array([1, 2, 3, 4], dtype=np.uint32)
        assert estimate_jaccard(sketch, sketch) == 1.0

    def test_half_collisions(self):
        a = np.array([1, 2, 3, 4], dtype=np.uint32)
        b = np.array([1, 2, 9, 9], dtype=np.uint32)
        assert estimate_jaccard(a, b) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            estimate_jaccard(np.array([1]), np.array([1, 2]))


class TestSpan:
    def test_length(self):
        assert Span(0, 3, 7).length == 5

    def test_frozen(self):
        span = Span(0, 1, 2)
        with pytest.raises(AttributeError):
            span.start = 5


class TestMergeOverlappingSpans:
    def test_empty(self):
        assert merge_overlapping_spans([]) == []

    def test_single(self):
        assert merge_overlapping_spans([Span(0, 1, 5)]) == [Span(0, 1, 5)]

    def test_overlapping_merge(self):
        merged = merge_overlapping_spans([Span(0, 0, 5), Span(0, 3, 9)])
        assert merged == [Span(0, 0, 9)]

    def test_adjacent_merge(self):
        merged = merge_overlapping_spans([Span(0, 0, 4), Span(0, 5, 8)])
        assert merged == [Span(0, 0, 8)]

    def test_gap_preserved(self):
        merged = merge_overlapping_spans([Span(0, 0, 3), Span(0, 6, 9)])
        assert merged == [Span(0, 0, 3), Span(0, 6, 9)]

    def test_texts_kept_separate(self):
        merged = merge_overlapping_spans([Span(1, 0, 5), Span(0, 0, 5)])
        assert merged == [Span(0, 0, 5), Span(1, 0, 5)]

    def test_nested_spans(self):
        merged = merge_overlapping_spans([Span(0, 0, 10), Span(0, 2, 4)])
        assert merged == [Span(0, 0, 10)]

    def test_result_disjoint(self, rng):
        spans = [
            Span(int(rng.integers(0, 3)), s, s + int(rng.integers(0, 10)))
            for s in rng.integers(0, 50, size=30).tolist()
        ]
        merged = merge_overlapping_spans(spans)
        by_text: dict[int, list[Span]] = {}
        for span in merged:
            by_text.setdefault(span.text_id, []).append(span)
        for text_spans in by_text.values():
            ordered = sorted(text_spans, key=lambda s: s.start)
            for first, second in zip(ordered, ordered[1:]):
                assert first.end + 1 < second.start

    def test_coverage_preserved(self):
        spans = [Span(0, 0, 3), Span(0, 2, 6), Span(0, 10, 12)]
        merged = merge_overlapping_spans(spans)
        original = {
            (s.text_id, p) for s in spans for p in range(s.start, s.end + 1)
        }
        covered = {
            (s.text_id, p) for s in merged for p in range(s.start, s.end + 1)
        }
        assert covered == original


class TestVerifySpans:
    def test_filters_by_exact_similarity(self):
        texts = [np.array([1, 2, 3, 4, 5, 6], dtype=np.uint32)]
        query = np.array([1, 2, 3], dtype=np.uint32)
        spans = [Span(0, 0, 2), Span(0, 3, 5)]
        kept = verify_spans(query, texts, spans, theta=0.99)
        assert kept == [Span(0, 0, 2)]

    def test_multiset_mode(self):
        texts = [np.array([1, 1], dtype=np.uint32)]
        query = np.array([1], dtype=np.uint32)
        spans = [Span(0, 0, 1)]
        assert verify_spans(query, texts, spans, theta=0.9) == spans
        assert verify_spans(query, texts, spans, theta=0.9, similarity="multiset") == []
