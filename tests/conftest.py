"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.corpus.corpus import InMemoryCorpus
from repro.corpus.synthetic import synthweb
from repro.index.builder import build_memory_index


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def family() -> HashFamily:
    return HashFamily(k=8, seed=7)


@pytest.fixture
def tiny_corpus(rng: np.random.Generator) -> InMemoryCorpus:
    """A dozen short random texts over a small vocabulary."""
    texts = [
        rng.integers(0, 50, size=int(rng.integers(10, 60))).astype(np.uint32)
        for _ in range(12)
    ]
    return InMemoryCorpus(texts)


@pytest.fixture(scope="session")
def planted_data():
    """A medium synthetic corpus with planted near-duplicates (session-wide)."""
    return synthweb(
        num_texts=250,
        mean_length=150,
        vocab_size=1024,
        duplicate_rate=0.2,
        span_length=48,
        mutation_rate=0.04,
        seed=99,
    )


@pytest.fixture(scope="session")
def planted_index(planted_data):
    """Index over the planted corpus with realistic paper parameters."""
    family = HashFamily(k=16, seed=3)
    index = build_memory_index(planted_data.corpus, family, t=25, vocab_size=1024)
    return index
