"""Tests for IntervalScan (Algorithm 5) and CollisionCount (Algorithm 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact_windows import CompactWindow, windows_to_array
from repro.core.intervals import (
    CollisionRectangle,
    collision_count,
    interval_scan,
    max_collisions,
)
from repro.exceptions import InvalidParameterError


def brute_force_coverage(intervals, alpha):
    """point -> id set, for every point covered by >= alpha intervals."""
    coverage = {}
    if not intervals:
        return coverage
    lo = min(start for start, _ in intervals)
    hi = max(end for _, end in intervals)
    for point in range(lo, hi + 1):
        members = frozenset(
            ident
            for ident, (start, end) in enumerate(intervals)
            if start <= point <= end
        )
        if len(members) >= alpha:
            coverage[point] = members
    return coverage


class TestIntervalScan:
    def test_empty_input(self):
        assert interval_scan([], 1) == []

    def test_alpha_validated(self):
        with pytest.raises(InvalidParameterError):
            interval_scan([(0, 1)], 0)

    def test_bad_interval_rejected(self):
        with pytest.raises(InvalidParameterError):
            interval_scan([(5, 2)], 1)

    def test_single_interval(self):
        results = interval_scan([(2, 6)], 1)
        assert len(results) == 1
        assert results[0].members == (0,)
        assert (results[0].start, results[0].end) == (2, 6)

    def test_disjoint_intervals_alpha2(self):
        assert interval_scan([(0, 1), (5, 9)], 2) == []

    def test_nested_intervals(self):
        results = interval_scan([(0, 10), (3, 5)], 2)
        assert len(results) == 1
        assert set(results[0].members) == {0, 1}
        assert (results[0].start, results[0].end) == (3, 5)

    def test_paper_lemma_every_point_reported_exactly_once(self, rng):
        """Lemma 1: each point with >= alpha cover lies in exactly one
        reported segment, whose member set is the exact covering set."""
        for _ in range(25):
            m = int(rng.integers(1, 12))
            intervals = []
            for _ in range(m):
                start = int(rng.integers(0, 30))
                end = start + int(rng.integers(0, 10))
                intervals.append((start, end))
            alpha = int(rng.integers(1, m + 1))
            expected = brute_force_coverage(intervals, alpha)
            got = {}
            for result in interval_scan(intervals, alpha):
                for point in range(result.start, result.end + 1):
                    assert point not in got, "point reported twice"
                    got[point] = frozenset(result.members)
            assert got == expected

    def test_identical_intervals(self):
        results = interval_scan([(1, 4), (1, 4), (1, 4)], 3)
        assert len(results) == 1
        assert set(results[0].members) == {0, 1, 2}

    def test_adjacent_segments_have_distinct_member_sets(self):
        results = interval_scan([(0, 10), (0, 10), (3, 4)], 2)
        for first, second in zip(results, results[1:]):
            if first.end + 1 == second.start:
                assert set(first.members) != set(second.members)

    def test_touching_endpoints(self):
        """[0,3] and [3,6] overlap exactly at point 3."""
        results = interval_scan([(0, 3), (3, 6)], 2)
        assert len(results) == 1
        assert (results[0].start, results[0].end) == (3, 3)


class TestCollisionRectangle:
    def test_iter_spans_min_length(self):
        rect = CollisionRectangle(i_lo=0, i_hi=2, j_lo=4, j_hi=5, count=3)
        spans = list(rect.iter_spans(min_length=6))
        assert spans == [(0, 5)]

    def test_iter_spans_all(self):
        rect = CollisionRectangle(i_lo=1, i_hi=2, j_lo=3, j_hi=4, count=2)
        assert sorted(rect.iter_spans()) == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_span_count_matches_iteration(self):
        rect = CollisionRectangle(i_lo=0, i_hi=4, j_lo=3, j_hi=9, count=2)
        for min_length in (1, 4, 8, 20):
            assert rect.span_count(min_length) == len(list(rect.iter_spans(min_length)))

    def test_widest_span(self):
        rect = CollisionRectangle(i_lo=2, i_hi=4, j_lo=5, j_hi=9, count=2)
        assert rect.widest_span() == (2, 9)
        assert rect.widest_span(min_length=8) == (2, 9)
        assert rect.widest_span(min_length=9) is None

    def test_clip_min_length(self):
        rect = CollisionRectangle(i_lo=0, i_hi=1, j_lo=2, j_hi=3, count=1)
        assert rect.clip_min_length(4) is rect
        assert rect.clip_min_length(5) is None


class TestCollisionCount:
    def make_windows(self, triples):
        return [CompactWindow(*t) for t in triples]

    def test_single_window(self):
        rects = collision_count(self.make_windows([(0, 3, 8)]), 1)
        assert len(rects) == 1
        rect = rects[0]
        assert (rect.i_lo, rect.i_hi, rect.j_lo, rect.j_hi) == (0, 3, 3, 8)
        assert rect.count == 1

    def test_threshold_not_met(self):
        windows = self.make_windows([(0, 2, 5), (10, 12, 15)])
        assert collision_count(windows, 2) == []

    def test_two_overlapping_windows(self):
        windows = self.make_windows([(0, 4, 9), (2, 5, 12)])
        rects = collision_count(windows, 2)
        covered = {(i, j) for rect in rects for (i, j) in rect.iter_spans()}
        expected = {
            (i, j)
            for i in range(0, 13)
            for j in range(i, 13)
            if max_collisions(windows, i, j) >= 2
        }
        assert covered == expected

    def test_counts_are_exact(self, rng):
        for _ in range(20):
            m = int(rng.integers(1, 10))
            windows = []
            for _ in range(m):
                left = int(rng.integers(0, 20))
                center = left + int(rng.integers(0, 8))
                right = center + int(rng.integers(0, 8))
                windows.append(CompactWindow(left, center, right))
            alpha = int(rng.integers(1, m + 1))
            rects = collision_count(windows, alpha)
            seen = set()
            for rect in rects:
                assert rect.count >= alpha
                for (i, j) in rect.iter_spans():
                    assert (i, j) not in seen, "rectangles overlap"
                    seen.add((i, j))
                    assert max_collisions(windows, i, j) == rect.count
            # completeness
            for i in range(0, 40):
                for j in range(i, 40):
                    if max_collisions(windows, i, j) >= alpha:
                        assert (i, j) in seen

    def test_structured_array_input(self, rng):
        windows = [CompactWindow(0, 2, 6), CompactWindow(1, 3, 8)]
        array = windows_to_array(windows)
        rects_list = collision_count(windows, 2)
        rects_array = collision_count(array, 2)
        as_set = lambda rects: {
            (r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count) for r in rects
        }
        assert as_set(rects_list) == as_set(rects_array)

    def test_i_le_j_always(self, rng):
        windows = [
            CompactWindow(0, 5, 10),
            CompactWindow(3, 5, 7),
            CompactWindow(5, 5, 5),
        ]
        for rect in collision_count(windows, 2):
            for (i, j) in rect.iter_spans():
                assert i <= j

    def test_max_collisions_helper(self):
        windows = self.make_windows([(0, 2, 5), (1, 3, 6)])
        assert max_collisions(windows, 1, 3) == 2
        assert max_collisions(windows, 0, 5) == 1
        assert max_collisions(windows, 4, 5) == 0
        array = windows_to_array(windows)
        assert max_collisions(array, 1, 3) == 2
