"""Tests for the baseline algorithms (brute force, window LSH, seed-extend)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import (
    BruteForceStats,
    search_definition2,
    search_exact,
)
from repro.baselines.lsh import WindowLSHIndex
from repro.baselines.seed_extend import SeedExtendIndex
from repro.core.hashing import HashFamily
from repro.core.verify import distinct_jaccard
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def small_corpus():
    rng = np.random.default_rng(3)
    vocab = 60
    texts = [rng.integers(0, vocab, size=40).astype(np.uint32) for _ in range(5)]
    # Plant an exact copy of a span of text 0 into text 3.
    texts[3][5:25] = texts[0][10:30]
    return InMemoryCorpus(texts)


class TestSearchExact:
    def test_finds_planted_copy(self, small_corpus):
        query = np.asarray(small_corpus[0])[10:30]
        spans = search_exact(small_corpus, query, theta=1.0, t=20)
        found = {(s.text_id, s.start, s.end) for s in spans}
        assert (0, 10, 29) in found
        assert (3, 5, 24) in found

    def test_every_result_satisfies_threshold(self, small_corpus):
        query = np.asarray(small_corpus[1])[0:15]
        theta = 0.7
        for span in search_exact(small_corpus, query, theta, t=8):
            tokens = np.asarray(small_corpus[span.text_id])[span.start : span.end + 1]
            assert distinct_jaccard(query, tokens) >= theta
            assert span.length >= 8

    def test_multiset_mode(self, small_corpus):
        query = np.asarray(small_corpus[0])[10:30]
        spans = search_exact(
            small_corpus, query, theta=1.0, t=20, similarity="multiset"
        )
        assert any(s.text_id == 3 for s in spans)

    def test_stats(self, small_corpus):
        stats = BruteForceStats()
        search_exact(small_corpus, small_corpus[0][:10], 0.9, 5, stats=stats)
        assert stats.sequences_examined > 0
        assert stats.seconds > 0

    def test_validation(self, small_corpus):
        with pytest.raises(InvalidParameterError):
            search_exact(small_corpus, small_corpus[0][:5], 0.0, 5)
        with pytest.raises(InvalidParameterError):
            search_exact(small_corpus, small_corpus[0][:5], 0.5, 0)


class TestSearchDefinition2:
    def test_matches_naive_sketching(self, small_corpus):
        """The incremental-sketch oracle equals per-span sketching."""
        family = HashFamily(k=6, seed=8)
        query = np.asarray(small_corpus[2])[0:12]
        theta, t = 0.5, 4
        fast = {
            (s.text_id, s.start, s.end)
            for s in search_definition2(small_corpus, query, theta, t, family)
        }
        from repro.core.theory import collision_threshold

        beta = collision_threshold(family.k, theta)
        qsk = family.sketch(query)
        slow = set()
        for text_id in range(len(small_corpus)):
            text = np.asarray(small_corpus[text_id])
            for i in range(text.size):
                for j in range(i + t - 1, text.size):
                    s = int(np.count_nonzero(family.sketch(text[i : j + 1]) == qsk))
                    if s >= beta:
                        slow.add((text_id, i, j))
        assert fast == slow

    def test_t_equal_one(self, small_corpus):
        family = HashFamily(k=4, seed=2)
        query = np.asarray(small_corpus[0])[:3]
        spans = search_definition2(small_corpus, query, 0.25, 1, family)
        assert all(s.length >= 1 for s in spans)


class TestWindowLSH:
    def test_finds_exact_copy(self, small_corpus):
        family = HashFamily(k=16, seed=6)
        index = WindowLSHIndex(family, window=20, bands=8, rows=2).build(small_corpus)
        query = np.asarray(small_corpus[0])[10:30]
        spans = index.query(small_corpus, query, theta=0.95)
        found = {(s.text_id, s.start) for s in spans}
        assert (0, 10) in found and (3, 5) in found

    def test_index_explodes_vs_compact_windows(self, small_corpus):
        """The structural point: entries ~ k/stride per token position."""
        family = HashFamily(k=16, seed=6)
        index = WindowLSHIndex(family, window=20, stride=1, bands=8, rows=2).build(
            small_corpus
        )
        positions = sum(max(0, t.size - 20 + 1) for t in small_corpus)
        assert index.stats.windows_indexed == positions
        assert index.stats.index_entries == positions * 8

    def test_wrong_width_invisible(self, small_corpus):
        """A near-duplicate longer than the window width is not findable
        as a whole — the no-guarantee failure mode."""
        family = HashFamily(k=16, seed=6)
        index = WindowLSHIndex(family, window=10, bands=8, rows=2).build(small_corpus)
        query = np.asarray(small_corpus[0])[10:30]  # width 20 != 10
        spans = index.query(small_corpus, query, theta=0.9)
        assert all(s.length == 10 for s in spans)

    def test_band_config_validated(self):
        family = HashFamily(k=16, seed=1)
        with pytest.raises(InvalidParameterError):
            WindowLSHIndex(family, window=10, bands=3, rows=3)
        with pytest.raises(InvalidParameterError):
            WindowLSHIndex(family, window=0)
        with pytest.raises(InvalidParameterError):
            WindowLSHIndex(family, window=5, stride=0)

    def test_default_banding(self):
        family = HashFamily(k=16, seed=1)
        index = WindowLSHIndex(family, window=5)
        assert index.bands * index.rows == 16

    def test_theta_validated(self, small_corpus):
        family = HashFamily(k=16, seed=1)
        index = WindowLSHIndex(family, window=5, bands=8, rows=2)
        with pytest.raises(InvalidParameterError):
            index.query(small_corpus, small_corpus[0][:5], theta=0.0)

    def test_nbytes_positive_after_build(self, small_corpus):
        family = HashFamily(k=16, seed=1)
        index = WindowLSHIndex(family, window=10, bands=8, rows=2).build(small_corpus)
        assert index.nbytes > 0


class TestSeedExtend:
    def test_finds_exact_copy(self, small_corpus):
        index = SeedExtendIndex(seed_length=8).build(small_corpus)
        query = np.asarray(small_corpus[0])[10:30]
        spans = index.query(small_corpus, query, theta=0.9, t=10)
        assert any(s.text_id == 3 for s in spans)
        assert any(s.text_id == 0 for s in spans)

    def test_misses_without_shared_seed(self):
        """Mutations every few tokens defeat the heuristic — no guarantee."""
        rng = np.random.default_rng(9)
        base = rng.integers(0, 1000, size=40).astype(np.uint32)
        mutated = np.array(base)
        mutated[::4] = rng.integers(1000, 2000, size=mutated[::4].size)  # break all 8-grams
        corpus = InMemoryCorpus([mutated])
        index = SeedExtendIndex(seed_length=8).build(corpus)
        assert distinct_jaccard(base, mutated) >= 0.55
        spans = index.query(corpus, base, theta=0.55, t=10)
        assert spans == []  # the paper's point: recall failure

    def test_stats(self, small_corpus):
        index = SeedExtendIndex(seed_length=6).build(small_corpus)
        assert index.stats.seeds_indexed > 0
        index.query(small_corpus, small_corpus[0][:20], theta=0.8, t=10)
        assert index.stats.query_seconds > 0

    def test_validation(self, small_corpus):
        with pytest.raises(InvalidParameterError):
            SeedExtendIndex(seed_length=0)
        index = SeedExtendIndex(seed_length=4).build(small_corpus)
        with pytest.raises(InvalidParameterError):
            index.query(small_corpus, small_corpus[0][:8], theta=2.0, t=5)
        with pytest.raises(InvalidParameterError):
            index.query(small_corpus, small_corpus[0][:8], theta=0.5, t=0)

    def test_results_disjoint(self, small_corpus):
        index = SeedExtendIndex(seed_length=6).build(small_corpus)
        spans = index.query(small_corpus, small_corpus[0][:30], theta=0.5, t=6)
        by_text: dict[int, list] = {}
        for span in spans:
            by_text.setdefault(span.text_id, []).append(span)
        for group in by_text.values():
            ordered = sorted(group, key=lambda s: s.start)
            for a, b in zip(ordered, ordered[1:]):
                assert a.end < b.start
