"""Tests for the Figure-4 sweep runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.synthetic import synthweb
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.memorization.sweep import SweepConfig, SweepResult, run_figure4_sweep


@pytest.fixture(scope="module")
def sweep_setup():
    data = synthweb(num_texts=150, mean_length=120, vocab_size=512, seed=81)
    family = HashFamily(k=12, seed=6)
    index = build_memory_index(data.corpus, family, t=20, vocab_size=512)
    return data.corpus, NearDuplicateSearcher(index)


@pytest.fixture(scope="module")
def sweep_result(sweep_setup):
    corpus, searcher = sweep_setup
    config = SweepConfig(
        model_names=("small", "xl"),
        thetas=(1.0, 0.8),
        window_widths=(32, 64),
        num_texts=2,
        text_length=128,
        seed=5,
    )
    return run_figure4_sweep(corpus, searcher, config, vocab_size=512)


class TestConfig:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SweepConfig(model_names=())
        with pytest.raises(InvalidParameterError):
            SweepConfig(thetas=())
        with pytest.raises(InvalidParameterError):
            SweepConfig(num_texts=0)

    def test_defaults_match_paper(self):
        config = SweepConfig()
        assert config.model_names == ("small", "medium", "large", "xl")
        assert 0.8 in config.thetas and 1.0 in config.thetas
        assert config.window_widths == (32, 64, 128)


class TestSweep:
    def test_grid_complete(self, sweep_result):
        assert len(sweep_result.reports) == 2 * 2 * 2  # models x thetas x widths

    def test_get(self, sweep_result):
        report = sweep_result.get("xl", 0.8, 32)
        assert report.model_name == "xl"
        assert report.theta == 0.8
        with pytest.raises(KeyError):
            sweep_result.get("xl", 0.5, 32)

    def test_theta_series_monotone(self, sweep_result):
        """Per (model, width): lower theta => fraction can only rise."""
        for model in ("small", "xl"):
            series = sweep_result.theta_series(model, 32)
            fractions = [fraction for _, fraction in series]  # theta ascending
            assert fractions == sorted(fractions, reverse=True)

    def test_width_series_shape(self, sweep_result):
        series = sweep_result.width_series("xl", 0.8)
        assert [w for w, _ in series] == [32, 64]

    def test_capacity_series(self, sweep_result):
        series = sweep_result.capacity_series(0.8, 32)
        assert [name for name, _ in series] == ["small", "xl"]
        fractions = dict(series)
        assert fractions["xl"] >= fractions["small"]

    def test_generations_shared_across_cells(self, sweep_result):
        """Same model at different thetas evaluates the same query count."""
        a = sweep_result.get("xl", 1.0, 32)
        b = sweep_result.get("xl", 0.8, 32)
        assert a.num_queries == b.num_queries
