"""Tests for the high-level NearDupEngine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import InMemoryCorpus
from repro.engine import Hit, NearDupEngine
from repro.exceptions import InvalidParameterError

DOCS = [
    "the standard terms and conditions apply to all purchases made "
    "through this website including digital goods and services " * 2,
    "completely unrelated content about gardening tomatoes in summer "
    "with plenty of water and sunshine every single day " * 2,
    # Lifts the boilerplate of document 0 with two word changes.
    "intro paragraph here. the standard terms and conditions apply to "
    "all orders made through this platform including digital goods and "
    "services. closing remarks follow " * 2,
]


@pytest.fixture(scope="module")
def engine():
    return NearDupEngine.from_texts(DOCS, k=24, t=12, vocab_size=400, seed=1)


class TestFromTexts:
    def test_metadata(self, engine):
        assert engine.num_texts == 3
        assert engine.total_tokens > 0
        assert engine.tokenizer is not None

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            NearDupEngine.from_texts([])

    QUERY = (
        " the standard terms and conditions apply to all purchases made "
        "through this website including digital goods and services"
    )

    def test_string_search_finds_source(self, engine):
        hits = engine.search(self.QUERY, theta=0.8)
        assert {hit.text_id for hit in hits} >= {0}
        assert all(isinstance(hit, Hit) for hit in hits)

    def test_string_search_finds_paraphrase_at_low_theta(self, engine):
        # BPE merges differ between the two phrasings, so the paraphrase
        # sits at token-level Jaccard ~0.5 despite the word overlap.
        hits = engine.search(self.QUERY, theta=0.5)
        assert {hit.text_id for hit in hits} >= {0, 2}

    def test_snippets_decoded(self, engine):
        hits = engine.search(self.QUERY, theta=0.7)
        assert hits
        assert any("terms" in (hit.snippet or "") for hit in hits)

    def test_contains_near_duplicate(self, engine):
        assert engine.contains_near_duplicate(self.QUERY, theta=0.7)
        assert not engine.contains_near_duplicate(
            "zebra xylophone quantum volcano " * 4, theta=0.9
        )

    def test_token_query_accepted(self, engine):
        tokens = engine.tokenizer.encode(self.QUERY)
        result = engine.search_raw(tokens, theta=0.8)
        assert result.num_texts >= 1
        # Same answer as the string form of the query.
        via_string = engine.search_raw(self.QUERY, theta=0.8)
        assert {m.text_id for m in result.matches} == {
            m.text_id for m in via_string.matches
        }

    def test_verify_mode(self, engine):
        hits = engine.search(self.QUERY, theta=0.7, verify=True)
        assert {hit.text_id for hit in hits} >= {0}


class TestFromCorpus:
    def test_token_only_engine(self):
        rng = np.random.default_rng(5)
        corpus = InMemoryCorpus(
            [rng.integers(0, 100, size=40).astype(np.uint32) for _ in range(4)]
        )
        engine = NearDupEngine.from_corpus(corpus, k=8, t=10, vocab_size=100)
        result = engine.search_raw(np.asarray(corpus[1])[:20], theta=0.9)
        assert any(m.text_id == 1 for m in result.matches)

    def test_string_query_without_tokenizer_rejected(self):
        corpus = InMemoryCorpus([np.arange(30, dtype=np.uint32)])
        engine = NearDupEngine.from_corpus(corpus, k=4, t=5)
        with pytest.raises(InvalidParameterError):
            engine.search("hello")

    def test_snippets_none_without_tokenizer(self):
        corpus = InMemoryCorpus([np.arange(30, dtype=np.uint32)])
        engine = NearDupEngine.from_corpus(corpus, k=4, t=5)
        hits = engine.search(np.arange(10, dtype=np.uint32), theta=0.5)
        assert all(hit.snippet is None for hit in hits)


class TestPersistence:
    def test_save_load_roundtrip(self, engine, tmp_path):
        engine.save(tmp_path / "saved")
        loaded = NearDupEngine.load(tmp_path / "saved")
        assert loaded.num_texts == engine.num_texts
        assert loaded.total_tokens == engine.total_tokens
        query = TestFromTexts.QUERY
        original = {(h.text_id, h.start, h.end) for h in engine.search(query, 0.7)}
        reloaded = {(h.text_id, h.start, h.end) for h in loaded.search(query, 0.7)}
        assert original == reloaded

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            NearDupEngine.load(tmp_path / "nothing")

    def test_saved_engine_resaveable(self, engine, tmp_path):
        """A loaded (disk-backed) engine can be saved again."""
        engine.save(tmp_path / "one")
        loaded = NearDupEngine.load(tmp_path / "one")
        loaded.save(tmp_path / "two")
        again = NearDupEngine.load(tmp_path / "two")
        assert again.num_texts == engine.num_texts
