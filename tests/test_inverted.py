"""Tests for the in-memory inverted index and its directory structures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.inverted import (
    IOStats,
    ListLengthProfile,
    MemoryInvertedIndex,
    POSTING_BYTES,
    POSTING_DTYPE,
)


def make_postings(records):
    """records: list of (minhash, text, l, c, r)."""
    minhashes = np.array([r[0] for r in records], dtype=np.uint32)
    postings = np.empty(len(records), dtype=POSTING_DTYPE)
    for idx, (_, text, left, center, right) in enumerate(records):
        postings[idx] = (text, left, center, right)
    return minhashes, postings


class TestIOStats:
    def test_add_and_reset(self):
        stats = IOStats()
        stats.add(100, 0.5)
        stats.add(50)
        assert stats.bytes_read == 150
        assert stats.read_calls == 2
        assert stats.seconds == 0.5
        stats.reset()
        assert stats.bytes_read == 0 and stats.read_calls == 0


class TestFromPostings:
    def test_lists_sorted_by_text(self, family):
        minhashes, postings = make_postings(
            [(7, 3, 0, 1, 2), (7, 1, 0, 1, 2), (7, 2, 0, 1, 2)]
        )
        per_func = [(minhashes, postings)] + [
            (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
        ] * (family.k - 1)
        index = MemoryInvertedIndex.from_postings(family, 2, per_func)
        loaded = index.load_list(0, 7)
        assert loaded["text"].tolist() == [1, 2, 3]

    def test_requires_one_entry_per_func(self, family):
        with pytest.raises(InvalidParameterError):
            MemoryInvertedIndex.from_postings(family, 2, [])

    def test_misaligned_arrays_rejected(self, family):
        minhashes = np.zeros(2, dtype=np.uint32)
        postings = np.empty(3, dtype=POSTING_DTYPE)
        per_func = [(minhashes, postings)] + [
            (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
        ] * (family.k - 1)
        with pytest.raises(InvalidParameterError):
            MemoryInvertedIndex.from_postings(family, 2, per_func)

    def test_t_validated(self, family):
        per_func = [
            (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
        ] * family.k
        with pytest.raises(InvalidParameterError):
            MemoryInvertedIndex.from_postings(family, 0, per_func)


class TestReads:
    @pytest.fixture
    def index(self, family):
        minhashes, postings = make_postings(
            [
                (5, 0, 0, 2, 4),
                (5, 0, 6, 8, 10),
                (5, 2, 1, 3, 5),
                (9, 1, 0, 0, 3),
            ]
        )
        per_func = [(minhashes, postings)] + [
            (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
        ] * (family.k - 1)
        return MemoryInvertedIndex.from_postings(family, 2, per_func)

    def test_list_length(self, index):
        assert index.list_length(0, 5) == 3
        assert index.list_length(0, 9) == 1
        assert index.list_length(0, 12345) == 0
        assert index.list_length(1, 5) == 0

    def test_load_list(self, index):
        postings = index.load_list(0, 5)
        assert postings.size == 3
        assert postings["text"].tolist() == [0, 0, 2]

    def test_load_absent_list(self, index):
        assert index.load_list(0, 777).size == 0

    def test_load_text_windows(self, index):
        windows = index.load_text_windows(0, 5, 0)
        assert windows.size == 2
        assert set(windows["center"].tolist()) == {2, 8}
        assert index.load_text_windows(0, 5, 1).size == 0

    def test_io_accounting(self, index):
        index.io_stats.reset()
        index.load_list(0, 5)
        assert index.io_stats.bytes_read == 3 * POSTING_BYTES
        index.load_text_windows(0, 5, 2)
        assert index.io_stats.bytes_read == 4 * POSTING_BYTES

    def test_num_postings_and_nbytes(self, index):
        assert index.num_postings == 4
        assert index.nbytes == 4 * POSTING_BYTES

    def test_iter_lists(self, index):
        lists = dict(index.iter_lists(0))
        assert set(lists) == {5, 9}
        assert lists[5].size == 3

    def test_list_lengths(self, index):
        assert sorted(index.list_lengths(0).tolist()) == [1, 3]
        assert index.list_lengths(1).size == 0


class TestListLengthProfile:
    def test_from_built_index(self, planted_index):
        profile = ListLengthProfile.from_index(planted_index)
        assert profile.lengths.size > 0
        assert np.all(np.diff(profile.lengths) >= 0)

    def test_cutoff_monotone_in_fraction(self, planted_index):
        profile = ListLengthProfile.from_index(planted_index)
        c05 = profile.cutoff_for_fraction(0.05)
        c20 = profile.cutoff_for_fraction(0.20)
        assert c20 <= c05

    def test_cutoff_zero_fraction(self, planted_index):
        profile = ListLengthProfile.from_index(planted_index)
        cutoff = profile.cutoff_for_fraction(0.0)
        assert cutoff == int(profile.lengths[-1])

    def test_cutoff_validation(self):
        with pytest.raises(InvalidParameterError):
            ListLengthProfile(np.array([1])).cutoff_for_fraction(1.0)

    def test_empty_profile(self):
        assert ListLengthProfile().cutoff_for_fraction(0.1) == 0
