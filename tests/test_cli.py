"""Tests for the repro-cli command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """synth + build executed once; later tests reuse the artifacts."""
    root = tmp_path_factory.mktemp("cli")
    corpus_dir = str(root / "corpus")
    index_dir = str(root / "idx")
    assert (
        main(
            [
                "synth",
                corpus_dir,
                "--texts",
                "120",
                "--mean-length",
                "120",
                "--vocab",
                "512",
                "--seed",
                "4",
            ]
        )
        == 0
    )
    assert main(["build", corpus_dir, index_dir, "-k", "8", "-t", "20"]) == 0
    return corpus_dir, index_dir


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_defaults(self):
        args = build_parser().parse_args(["synth", "out"])
        assert args.preset == "synthweb"
        assert args.texts == 2000

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "c", "i"])
        assert args.k == 32 and args.t == 25 and not args.external


class TestSynth:
    def test_minipile_preset(self, tmp_path, capsys):
        code = main(
            [
                "synth",
                str(tmp_path / "mp"),
                "--preset",
                "minipile",
                "--texts",
                "40",
                "--mean-length",
                "60",
                "--vocab",
                "256",
            ]
        )
        assert code == 0
        assert "minipile" in capsys.readouterr().out


class TestBuild:
    def test_external_build(self, pipeline, tmp_path, capsys):
        corpus_dir, _ = pipeline
        code = main(
            [
                "build",
                corpus_dir,
                str(tmp_path / "ext"),
                "-k",
                "4",
                "-t",
                "20",
                "--external",
                "--batch-texts",
                "30",
            ]
        )
        assert code == 0
        assert "compact windows" in capsys.readouterr().out


class TestQuery:
    def test_query_runs(self, pipeline, capsys):
        corpus_dir, index_dir = pipeline
        from repro.corpus.store import DiskCorpus

        corpus = DiskCorpus(corpus_dir)
        text_id = next(i for i in range(len(corpus)) if corpus[i].size >= 64)
        code = main(
            [
                "query",
                index_dir,
                corpus_dir,
                "--text",
                str(text_id),
                "--length",
                "64",
                "--theta",
                "0.8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matching texts" in out
        assert f"text {text_id}" in out  # finds at least itself

    def test_query_window_out_of_range(self, pipeline, capsys):
        corpus_dir, index_dir = pipeline
        code = main(
            [
                "query",
                index_dir,
                corpus_dir,
                "--text",
                "0",
                "--start",
                "0",
                "--length",
                "100000",
            ]
        )
        assert code == 2
        assert "exceeds" in capsys.readouterr().err


class TestStats:
    def test_stats_output(self, pipeline, capsys):
        _, index_dir = pipeline
        assert main(["stats", index_dir, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "postings=" in out
        assert "#1:" in out


class TestBatchQuery:
    def test_batch_query_runs(self, pipeline, tmp_path, capsys):
        corpus_dir, index_dir = pipeline
        from repro.corpus.store import DiskCorpus

        corpus = DiskCorpus(corpus_dir)
        lines = []
        for text_id in range(len(corpus)):
            text = corpus[text_id]
            if text.size >= 40:
                lines.append(" ".join(str(t) for t in text[:40].tolist()))
            if len(lines) == 3:
                break
        query_file = tmp_path / "queries.txt"
        query_file.write_text("\n".join(lines))
        code = main(
            ["batch-query", index_dir, str(query_file), "--theta", "0.9", "--cache"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency_ms" in out
        assert "cache hit rate" in out

    def test_bad_query_line(self, pipeline, tmp_path, capsys):
        _, index_dir = pipeline
        query_file = tmp_path / "bad.txt"
        query_file.write_text("1 2 three")
        code = main(["batch-query", index_dir, str(query_file)])
        assert code == 2
        assert "not a token-id sequence" in capsys.readouterr().err


class TestIngest:
    def test_ingest_runs(self, tmp_path, capsys):
        src = tmp_path / "docs"
        src.mkdir()
        (src / "a.txt").write_text("the quick brown fox " * 10)
        (src / "b.txt").write_text("jumps over the lazy dog " * 10)
        code = main(["ingest", str(src), str(tmp_path / "out"), "--vocab", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested 2 files" in out
        from repro.corpus.store import DiskCorpus

        assert len(DiskCorpus(tmp_path / "out" / "corpus")) == 2


class TestDedup:
    def test_dedup_runs(self, pipeline, capsys):
        corpus_dir, index_dir = pipeline
        code = main(
            [
                "dedup",
                index_dir,
                corpus_dir,
                "--theta",
                "0.85",
                "--window",
                "48",
                "--max-probes",
                "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "duplicate clusters" in out


class TestMemorize:
    def test_memorize_runs(self, pipeline, capsys):
        corpus_dir, index_dir = pipeline
        code = main(
            [
                "memorize",
                index_dir,
                corpus_dir,
                "--model",
                "small",
                "--texts",
                "1",
                "--length",
                "64",
                "--window",
                "32",
            ]
        )
        assert code == 0
        assert "memorized%" in capsys.readouterr().out
