"""The multi-tier read cache: policies, block tier, single-flight,
result memoization — and above all byte-identity: every cached
configuration must return exactly what the uncached reader returns."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.engine import NearDupEngine
from repro.exceptions import InvalidParameterError
from repro.index.blockcache import DecodedBlockCache
from repro.index.cache import CachedIndexReader
from repro.index.cachepolicy import (
    CACHE_POLICIES,
    FrequencySketch,
    LruPolicy,
    TinyLfuPolicy,
    check_cache_policy,
    make_policy,
)
from repro.index.inverted import IOStats, POSTING_DTYPE
from repro.index.storage import DiskInvertedIndex, write_index
from repro.query.resultcache import CachingSearcher, ResultCache


def canon(result):
    """A search result's observable content (stats excluded)."""
    return (
        result.k,
        result.theta,
        result.beta,
        result.t,
        [(match.text_id, match.rectangles) for match in result.matches],
    )


# ----------------------------------------------------------------------
# Policy unit behaviour
# ----------------------------------------------------------------------
class TestFrequencySketch:
    def test_counts_and_caps(self):
        sketch = FrequencySketch(64)
        assert sketch.estimate("x") == 0
        for _ in range(5):
            sketch.increment("x")
        assert 1 <= sketch.estimate("x") <= 5
        for _ in range(100):
            sketch.increment("x")
        assert sketch.estimate("x") <= FrequencySketch.MAX_COUNT

    def test_aging_halves(self):
        sketch = FrequencySketch(16)
        for _ in range(sketch.sample_period):
            sketch.increment("hot")
        assert sketch.ages >= 1
        assert sketch.estimate("hot") <= FrequencySketch.MAX_COUNT // 2 + 1

    def test_width_is_power_of_two(self):
        assert FrequencySketch(1000).width == 1024
        with pytest.raises(InvalidParameterError):
            FrequencySketch(4)


class TestPolicies:
    def test_check_cache_policy(self):
        for name in CACHE_POLICIES:
            assert check_cache_policy(name) == name
        with pytest.raises(InvalidParameterError):
            check_cache_policy("clock")
        with pytest.raises(InvalidParameterError):
            make_policy("clock", 1024)

    def test_lru_evicts_cold_end(self):
        policy = LruPolicy(300)
        for key in ("a", "b", "c"):
            assert policy.admit(key, 100) == (True, [])
        policy.on_hit("a")  # now b is coldest
        admitted, evicted = policy.admit("d", 100)
        assert admitted and evicted == ["b"]
        assert policy.used_bytes == 300

    def test_lru_rejects_oversized(self):
        policy = LruPolicy(100)
        admitted, evicted = policy.admit("huge", 101)
        assert not admitted and not evicted
        assert policy.admission_rejections == 1

    def test_lru_respects_pins(self):
        pinned = {"a", "b"}
        policy = LruPolicy(200, lambda key: key in pinned)
        policy.admit("a", 100)
        policy.admit("b", 100)
        admitted, evicted = policy.admit("c", 100)
        assert not admitted and not evicted
        assert policy.admission_rejections == 1

    def test_tinylfu_scan_resistance(self):
        policy = TinyLfuPolicy(10_000)
        hot = [f"hot{i}" for i in range(5)]
        for key in hot:
            policy.admit(key, 1800)
        for _ in range(4):
            for key in hot:
                policy.on_hit(key)
        # A long one-shot scan: frequency-1 keys must not displace the
        # hot set (ties lose the contest, and 1 < hot frequency anyway).
        for i in range(100):
            policy.admit(f"scan{i}", 1800)
        for key in hot:
            assert key in policy
        assert policy.admission_rejections > 0

    def test_tinylfu_repeated_key_graduates(self):
        policy = TinyLfuPolicy(10_000)
        for key in ("a", "b", "c", "d", "e"):
            policy.admit(key, 1800)
        # Build up frequency for a newcomer, then admit: it should win
        # the contest against the never-touched residents.
        for _ in range(6):
            policy.sketch.increment("comeback")
        admitted, evicted = policy.admit("comeback", 1800)
        assert admitted and evicted

    def test_tinylfu_force_bypasses_gate(self):
        policy = TinyLfuPolicy(4_000)
        for key in ("a", "b"):
            policy.admit(key, 1800)
            for _ in range(5):
                policy.on_hit(key)
        # Ordinary admission of a cold key loses the contest...
        admitted, _ = policy.admit("cold", 1800)
        assert not admitted
        # ...but force (batch pinning) must land it regardless.
        admitted, evicted = policy.force("pinme", 1800)
        assert admitted
        assert "pinme" in policy
        assert all(victim != "pinme" for victim in evicted)

    def test_tinylfu_probation_promotes_to_protected(self):
        policy = TinyLfuPolicy(10_000)
        policy.admit("a", 1800)
        assert "a" in policy._probation
        policy.on_hit("a")
        assert "a" in policy._protected


# ----------------------------------------------------------------------
# Byte-identity across every tier/policy combination
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def packed_dir(planted_index, tmp_path_factory):
    directory = tmp_path_factory.mktemp("multitier") / "index"
    write_index(planted_index, directory, codec="packed")
    return directory


@pytest.fixture(scope="module")
def query_set(planted_data):
    corpus = planted_data.corpus
    queries = []
    for text_id in (0, 3, 7, 16, 40, 97):
        tokens = np.asarray(corpus[text_id], dtype=np.uint32)
        queries.append(tokens[:48])
        queries.append(tokens[10:90])
    queries.append(queries[0])  # exact repeat exercises the result tier
    return queries


@pytest.fixture(scope="module")
def baseline(packed_dir, query_set):
    searcher = NearDuplicateSearcher(DiskInvertedIndex(packed_dir))
    return [canon(searcher.search(query, 0.8)) for query in query_set]


@pytest.mark.parametrize("policy", CACHE_POLICIES)
@pytest.mark.parametrize("block_bytes", [0, 1 << 20])
@pytest.mark.parametrize("result_cache", [False, True])
def test_tiers_byte_identical(
    packed_dir, query_set, baseline, policy, block_bytes, result_cache
):
    index = DiskInvertedIndex(packed_dir)
    if block_bytes:
        index.enable_block_cache(DecodedBlockCache(block_bytes, policy=policy))
    reader = CachedIndexReader(index, capacity_bytes=1 << 20, policy=policy)
    searcher = NearDuplicateSearcher(reader)
    if result_cache:
        searcher = CachingSearcher(searcher)
    for _ in range(2):  # second pass runs every warm path
        got = [canon(searcher.search(query, 0.8)) for query in query_set]
        assert got == baseline


@pytest.mark.parametrize("policy", CACHE_POLICIES)
def test_tiny_capacity_still_correct(packed_dir, query_set, baseline, policy):
    """A cache too small to hold anything must degrade to correctness."""
    index = DiskInvertedIndex(packed_dir)
    index.enable_block_cache(DecodedBlockCache(256, policy=policy))
    reader = CachedIndexReader(index, capacity_bytes=1024, policy=policy)
    searcher = NearDuplicateSearcher(reader)
    got = [canon(searcher.search(query, 0.8)) for query in query_set]
    assert got == baseline


class TestHypothesisIdentity:
    """Random queries: every policy answers exactly like the raw index."""

    @given(
        tokens=st.lists(
            st.integers(min_value=0, max_value=1023), min_size=30, max_size=90
        ),
        theta=st.sampled_from([0.6, 0.8, 1.0]),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_cached_policies_match_uncached(
        self, planted_index, tokens, theta
    ):
        query = np.asarray(tokens, dtype=np.uint32)
        expected = canon(
            NearDuplicateSearcher(planted_index).search(query, theta)
        )
        for policy in CACHE_POLICIES:
            reader = CachedIndexReader(
                planted_index, capacity_bytes=1 << 18, policy=policy
            )
            searcher = CachingSearcher(NearDuplicateSearcher(reader))
            assert canon(searcher.search(query, theta)) == expected
            assert canon(searcher.search(query, theta)) == expected


# ----------------------------------------------------------------------
# Result cache semantics
# ----------------------------------------------------------------------
class TestResultCache:
    def test_memoizes_and_distinguishes_params(self, planted_data, planted_index):
        searcher = CachingSearcher(NearDuplicateSearcher(planted_index))
        query = np.asarray(planted_data.corpus[0], dtype=np.uint32)[:48]
        first = searcher.search(query, 0.8)
        assert searcher.search(query, 0.8) is first
        assert searcher.result_cache.hits == 1
        # Different theta / flags are different entries, not collisions.
        other = searcher.search(query, 0.9)
        assert other is not first
        fmo = searcher.search(query, 0.8, first_match_only=True)
        assert fmo is not first
        # Defaults spelled explicitly hit the same entry.
        assert searcher.search(query, 0.8, first_match_only=False) is first

    def test_digest_includes_query_only_when_asked(self):
        sketch = np.arange(8, dtype=np.uint64)
        a = ResultCache.digest(sketch, 0.8, (), np.array([1, 2], np.uint32))
        b = ResultCache.digest(sketch, 0.8, (), np.array([1, 3], np.uint32))
        c = ResultCache.digest(sketch, 0.8, ())
        assert a != b and a != c

    def test_lru_bound_and_eviction(self):
        cache = ResultCache(max_entries=2)
        for i in range(3):
            key = ResultCache.digest(np.array([i], np.uint64), 0.8, ())
            _, generation = cache.lookup(key)
            cache.store(key, f"r{i}", generation)
        stats = cache.stats()
        assert stats.entries == 2 and stats.evictions == 1

    def test_generation_gate_drops_stale_store(self):
        generation = [0]
        cache = ResultCache(generation_fn=lambda: generation[0])
        key = ResultCache.digest(np.array([1], np.uint64), 0.8, ())
        _, token = cache.lookup(key)
        generation[0] += 1  # index moved while we computed
        cache.store(key, "stale", token)
        result, _ = cache.lookup(key)
        assert result is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(InvalidParameterError):
            ResultCache(max_entries=0)

    def test_live_generation_bump_invalidates(self, tmp_path):
        engine = NearDupEngine.live(
            tmp_path / "live", k=8, t=25, vocab_size=256, seed=5
        )
        try:
            rng = np.random.default_rng(11)
            base = rng.integers(0, 256, size=64).astype(np.uint32)
            engine.append_texts([base])
            searcher = engine.cached_searcher(cache_bytes=1 << 20)
            assert isinstance(searcher, CachingSearcher)
            first = searcher.search(base, 0.8)
            assert searcher.search(base, 0.8) is first
            # Ingest a near-duplicate: the generation moves, the memo
            # must not serve the pre-ingest result.
            mutated = base.copy()
            mutated[5] = (mutated[5] + 1) % 256
            engine.append_texts([mutated])
            fresh = searcher.search(base, 0.8)
            assert fresh is not first
            assert fresh.num_texts >= first.num_texts
            assert searcher.result_cache.stats().invalidations >= 1
            expected = canon(engine.searcher.search(base, 0.8))
            assert canon(fresh) == expected
        finally:
            engine.close()


# ----------------------------------------------------------------------
# Single-flight miss coalescing
# ----------------------------------------------------------------------
class _SlowCountingReader:
    """Inner-reader stub: counts loads, sleeps to widen the miss race."""

    def __init__(self, delay: float = 0.05, fail_first: bool = False):
        self.family = HashFamily(k=4, seed=0)
        self.t = 25
        self.io_stats = IOStats()
        self.delay = delay
        self.fail_first = fail_first
        self.loads: dict[tuple[int, int], int] = {}
        self._lock = threading.Lock()

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        with self._lock:
            count = self.loads.get((func, minhash), 0) + 1
            self.loads[(func, minhash)] = count
        if self.fail_first and count == 1:
            raise OSError("transient read failure")
        time.sleep(self.delay)
        postings = np.zeros(4, dtype=POSTING_DTYPE)
        postings["text"] = minhash
        return postings

    def list_length(self, func: int, minhash: int) -> int:
        return 4


class TestSingleFlight:
    def test_concurrent_misses_coalesce(self):
        inner = _SlowCountingReader()
        reader = CachedIndexReader(inner, capacity_bytes=1 << 20)
        threads = 8
        barrier = threading.Barrier(threads)
        outputs: list[np.ndarray | None] = [None] * threads

        def worker(slot: int) -> None:
            barrier.wait()
            outputs[slot] = reader.load_list(0, 42)

        pool = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # Exactly one inner load; everyone else waited on the flight.
        assert inner.loads == {(0, 42): 1}
        assert reader.misses == 1
        assert reader.singleflight_waits == threads - 1
        assert reader.hits == threads - 1
        for output in outputs:
            assert output is not None and output.size == 4

    def test_distinct_keys_load_in_parallel(self):
        inner = _SlowCountingReader(delay=0.05)
        reader = CachedIndexReader(inner, capacity_bytes=1 << 20)
        keys = [(0, 1), (1, 2), (2, 3), (3, 4)]
        begin = time.perf_counter()
        pool = [
            threading.Thread(target=reader.load_list, args=key) for key in keys
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - begin
        assert all(inner.loads[key] == 1 for key in keys)
        # Serialized would be >= 4 * delay; parallel misses overlap.
        assert elapsed < 4 * inner.delay

    def test_loader_failure_does_not_poison(self):
        inner = _SlowCountingReader(delay=0.0, fail_first=True)
        reader = CachedIndexReader(inner, capacity_bytes=1 << 20)
        with pytest.raises(OSError):
            reader.load_list(0, 7)
        postings = reader.load_list(0, 7)
        assert postings.size == 4
        assert inner.loads[(0, 7)] == 2


# ----------------------------------------------------------------------
# Accounting fixes (hit/miss skew, sketch_list_lengths)
# ----------------------------------------------------------------------
class TestAccounting:
    def test_point_read_fallthrough_counts_miss(self, planted_index):
        reader = CachedIndexReader(planted_index)
        keys = np.asarray(planted_index.list_keys(0))
        minhash = int(keys[0])
        before = reader.stats()
        reader.load_text_windows(0, minhash, 0)
        after_single = reader.stats()
        assert after_single.misses == before.misses + 1
        reader.load_texts_windows(0, minhash, np.array([0, 1]))
        after_batch = reader.stats()
        assert after_batch.misses == after_single.misses + 1
        # Once the full list is resident, the same reads count as hits.
        reader.load_list(0, minhash)
        hits_before = reader.stats().hits
        reader.load_text_windows(0, minhash, 0)
        reader.load_texts_windows(0, minhash, np.array([0, 1]))
        assert reader.stats().hits == hits_before + 2

    def test_sketch_list_lengths_consults_cache(self, planted_index):
        reader = CachedIndexReader(planted_index)
        keys0 = np.asarray(planted_index.list_keys(0))
        sketch = np.zeros(planted_index.family.k, dtype=np.uint64)
        for func in range(planted_index.family.k):
            func_keys = np.asarray(planted_index.list_keys(func))
            sketch[func] = func_keys[0] if func_keys.size else 0
        expected = np.array(
            [
                planted_index.list_length(func, int(sketch[func]))
                for func in range(planted_index.family.k)
            ],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(reader.sketch_list_lengths(sketch), expected)
        # With a list cached, the answer must be identical and come from
        # the resident copy.
        reader.load_list(0, int(keys0[0]))
        np.testing.assert_array_equal(reader.sketch_list_lengths(sketch), expected)

    def test_sketch_list_lengths_vectorized_fallback(self, planted_index):
        class Bare:
            """Reader without sketch_list_lengths: forces the
            searchsorted directory fallback."""

            def __init__(self, inner):
                self.family = inner.family
                self.t = inner.t
                self.io_stats = inner.io_stats
                self._inner = inner

            def load_list(self, func, minhash):
                return self._inner.load_list(func, minhash)

            def list_length(self, func, minhash):
                return self._inner.list_length(func, minhash)

            def list_keys(self, func):
                return self._inner.list_keys(func)

            def list_lengths(self, func):
                return self._inner.list_lengths(func)

        bare = Bare(planted_index)
        reader = CachedIndexReader(bare)
        sketch = np.zeros(planted_index.family.k, dtype=np.uint64)
        sketch[0] = np.asarray(planted_index.list_keys(0))[0]
        sketch[1] = 10**9  # absent key: length 0
        expected = np.array(
            [
                planted_index.list_length(func, int(sketch[func]))
                for func in range(planted_index.family.k)
            ],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(reader.sketch_list_lengths(sketch), expected)


# ----------------------------------------------------------------------
# Decoded-block tier
# ----------------------------------------------------------------------
class TestBlockCache:
    def test_warm_point_reads_decode_nothing(self, packed_dir, planted_data):
        index = DiskInvertedIndex(packed_dir)
        cache = DecodedBlockCache(4 << 20)
        index.enable_block_cache(cache)
        searcher = NearDuplicateSearcher(index)
        query = np.asarray(planted_data.corpus[0], dtype=np.uint32)[:48]
        searcher.search(query, 0.8)
        cold = index.io_stats.decoded_bytes
        assert cold > 0
        searcher.search(query, 0.8)
        warm = index.io_stats.decoded_bytes - cold
        assert warm == 0
        assert cache.stats().hits > 0

    def test_namespace_isolates_readers(self, packed_dir, tmp_path, planted_index):
        other_dir = tmp_path / "other"
        write_index(planted_index, other_dir, codec="packed")
        cache = DecodedBlockCache(4 << 20)
        first = DiskInvertedIndex(packed_dir)
        second = DiskInvertedIndex(other_dir)
        first.enable_block_cache(cache)
        second.enable_block_cache(cache)
        keys = np.asarray(first.list_keys(0))
        minhash = int(keys[0])
        a = first.load_list(0, minhash)
        b = second.load_list(0, minhash)
        np.testing.assert_array_equal(a, b)
        # Same (func, minhash), two namespaces: both cold-missed.
        assert cache.stats().misses >= 2

    def test_raw_codec_ignores_block_cache(self, planted_index, tmp_path):
        raw_dir = tmp_path / "raw"
        write_index(planted_index, raw_dir, codec="raw")
        index = DiskInvertedIndex(raw_dir)
        index.enable_block_cache(DecodedBlockCache(1 << 20))
        assert index.block_cache is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(InvalidParameterError):
            DecodedBlockCache(0)
