"""End-to-end integration tests across the whole pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import search_exact
from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.theory import recall_estimate
from repro.core.verify import verify_spans
from repro.corpus.corpus import InMemoryCorpus
from repro.corpus.store import DiskCorpus, write_corpus
from repro.index.builder import build_memory_index
from repro.index.external import ExternalBuildConfig, build_external_index
from repro.index.storage import DiskInvertedIndex
from repro.lm.models import train_zoo
from repro.memorization.evaluator import evaluate_model
from repro.tokenizer.bpe import BPETokenizer


class TestTextPipeline:
    """Raw strings -> BPE -> corpus -> index -> search -> decoded matches."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        boiler = (
            "subscribe to our newsletter for the latest updates and offers "
            "delivered directly to your inbox every single morning "
        )
        rng = np.random.default_rng(0)
        words = ["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa"]
        documents = []
        for doc in range(30):
            body = " ".join(rng.choice(words, size=60))
            if doc % 3 == 0:
                body = body[:60] + " " + boiler + body[60:]
            documents.append(body)
        tokenizer = BPETokenizer.train(documents, vocab_size=400)
        corpus = InMemoryCorpus([tokenizer.encode(doc) for doc in documents])
        family = HashFamily(k=16, seed=1)
        index = build_memory_index(corpus, family, t=15)
        return tokenizer, corpus, index, boiler

    def test_boilerplate_found_across_documents(self, pipeline):
        tokenizer, corpus, index, boiler = pipeline
        # The in-document form starts with a leading space, which BPE
        # tokenizes differently from the bare string — query as planted.
        query = tokenizer.encode(" " + boiler)
        result = NearDuplicateSearcher(index).search(query, 0.7)
        assert result.num_texts >= 8  # planted in 10 documents

    def test_matches_decode_to_boilerplate(self, pipeline):
        tokenizer, corpus, index, boiler = pipeline
        query = tokenizer.encode(" " + boiler)
        result = NearDuplicateSearcher(index).search(query, 0.7)
        span = result.merged_spans()[0]
        decoded = tokenizer.decode(
            np.asarray(corpus[span.text_id])[span.start : span.end + 1]
        )
        assert "newsletter" in decoded

    def test_exact_verification_agrees(self, pipeline):
        tokenizer, corpus, index, boiler = pipeline
        query = tokenizer.encode(" " + boiler)
        result = NearDuplicateSearcher(index).search(query, 0.7)
        spans = result.merged_spans()
        texts = [np.asarray(corpus[i]) for i in range(len(corpus))]
        verified = verify_spans(query, texts, spans, theta=0.5)
        assert len(verified) >= 0.8 * len(spans)


class TestRecallOnPlantedDuplicates:
    def test_planted_near_duplicates_found(self, planted_data, planted_index):
        """Search for each planted target span; the source must be found
        at a rate consistent with the binomial recall estimate."""
        searcher = NearDuplicateSearcher(planted_index)
        theta = 0.7
        hits = 0
        usable = 0
        from repro.core.verify import distinct_jaccard

        for plant in planted_data.planted[:30]:
            query = np.asarray(planted_data.corpus[plant.target_text])[
                plant.target_start : plant.target_start + plant.length
            ]
            src = np.asarray(planted_data.corpus[plant.source_text])[
                plant.source_start : plant.source_start + plant.length
            ]
            true_sim = distinct_jaccard(query, src)
            if true_sim < 0.85:  # overwritten by a later plant
                continue
            usable += 1
            result = searcher.search(query, theta)
            if any(m.text_id == plant.source_text for m in result.matches):
                hits += 1
        assert usable >= 10
        predicted = recall_estimate(planted_index.family.k, theta, 0.9)
        assert hits / usable >= 0.6 * predicted

    def test_query_always_finds_itself(self, planted_data, planted_index):
        searcher = NearDuplicateSearcher(planted_index)
        for text_id in (0, 5, 10):
            text = np.asarray(planted_data.corpus[text_id])
            if text.size < 40:
                continue
            result = searcher.search(text[:40], 1.0)
            assert any(m.text_id == text_id for m in result.matches)


class TestDiskPipeline:
    def test_full_disk_roundtrip(self, tmp_path, planted_data):
        corpus_dir = write_corpus(planted_data.corpus, tmp_path / "corpus")
        disk_corpus = DiskCorpus(corpus_dir)
        family = HashFamily(k=8, seed=2)
        build_external_index(
            disk_corpus,
            family,
            25,
            tmp_path / "idx",
            config=ExternalBuildConfig(batch_texts=40, num_partitions=4),
        )
        index = DiskInvertedIndex(tmp_path / "idx")
        searcher = NearDuplicateSearcher(index)
        text = np.asarray(disk_corpus[0])
        result = searcher.search(text[: max(30, index.t)], 0.9)
        assert any(m.text_id == 0 for m in result.matches)
        assert result.stats.io_bytes > 0


class TestApproxVsExact:
    def test_high_k_recovers_exact_answers(self):
        """With large k, Definition 2 converges to Definition 1: the
        indexed search finds what exact enumeration finds."""
        rng = np.random.default_rng(31)
        vocab = 100
        texts = [rng.integers(0, vocab, size=60).astype(np.uint32) for _ in range(6)]
        texts[4][10:40] = texts[1][5:35]
        corpus = InMemoryCorpus(texts)
        family = HashFamily(k=48, seed=7)
        t = 15
        index = build_memory_index(corpus, family, t=t, vocab_size=vocab)
        query = np.asarray(texts[1][5:35])
        theta = 0.8
        exact = {
            (s.text_id, s.start, s.end)
            for s in search_exact(corpus, query, theta, t)
        }
        result = NearDuplicateSearcher(index).search(query, theta)
        approx = {
            (m.text_id, i, j)
            for m in result.matches
            for rect in m.rectangles
            for (i, j) in rect.iter_spans(t)
        }
        # Most exact answers are recovered (binomial recall), and the
        # planted copy in particular must be.
        assert (4, 10, 39) in approx
        assert len(exact & approx) >= 0.5 * len(exact)


class TestMemorizationTrends:
    def test_capacity_increases_memorization(self, planted_data, planted_index):
        """Figure 4(a)/(c): larger models memorize more."""
        searcher = NearDuplicateSearcher(planted_index)
        zoo = train_zoo(planted_data.corpus, ["small", "xl"])
        fractions = []
        for tier in zoo:
            report = evaluate_model(
                tier.model,
                searcher,
                theta=0.8,
                num_texts=3,
                text_length=128,
                window_width=32,
                model_name=tier.name,
                seed=6,
            )
            fractions.append(report.memorized_fraction)
        assert fractions[1] >= fractions[0]
