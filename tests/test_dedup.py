"""Tests for the corpus deduplication pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.verify import Span
from repro.corpus.corpus import InMemoryCorpus
from repro.dedup.clusters import DuplicateCluster, UnionFind, build_clusters
from repro.dedup.pipeline import deduplicate, find_duplicate_clusters
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index


class TestUnionFind:
    def test_initially_disjoint(self):
        forest = UnionFind(4)
        assert len({forest.find(i) for i in range(4)}) == 4

    def test_union_merges(self):
        forest = UnionFind(4)
        assert forest.union(0, 1)
        assert forest.find(0) == forest.find(1)
        assert not forest.union(1, 0)

    def test_transitive(self):
        forest = UnionFind(5)
        forest.union(0, 1)
        forest.union(1, 2)
        assert forest.find(0) == forest.find(2)
        assert forest.find(3) != forest.find(0)

    def test_groups(self):
        forest = UnionFind(5)
        forest.union(0, 1)
        forest.union(2, 3)
        groups = sorted(sorted(g) for g in forest.groups().values())
        assert groups == [[0, 1], [2, 3], [4]]


class TestClusters:
    def test_representative_is_longest(self):
        cluster = DuplicateCluster(
            (Span(0, 0, 10), Span(1, 5, 20), Span(2, 0, 5))
        )
        assert cluster.representative == Span(1, 5, 20)
        assert set(cluster.redundant()) == {Span(0, 0, 10), Span(2, 0, 5)}

    def test_build_clusters_skips_singletons(self):
        spans = [Span(0, 0, 5), Span(1, 0, 5), Span(2, 0, 5)]
        clusters = build_clusters(spans, [(0, 1)])
        assert len(clusters) == 1
        assert clusters[0].size == 2

    def test_build_clusters_sorted_by_size(self):
        spans = [Span(i, 0, 5) for i in range(6)]
        clusters = build_clusters(spans, [(0, 1), (2, 3), (3, 4)])
        assert [c.size for c in clusters] == [3, 2]


@pytest.fixture(scope="module")
def dedup_setup():
    """A corpus where one 40-token passage appears in texts 1, 4 and 7."""
    rng = np.random.default_rng(8)
    vocab = 400
    texts = [rng.integers(0, vocab, size=120).astype(np.uint32) for _ in range(10)]
    passage = np.array(texts[1][30:70])
    texts[4][10:50] = passage
    texts[7][60:100] = passage
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=16, seed=9)
    index = build_memory_index(corpus, family, t=20, vocab_size=vocab)
    return corpus, NearDuplicateSearcher(index)


class TestPipeline:
    def test_finds_the_planted_cluster(self, dedup_setup):
        corpus, searcher = dedup_setup
        report = find_duplicate_clusters(
            corpus, searcher, theta=0.9, window=40, stride=10
        )
        assert report.clusters
        biggest = report.clusters[0]
        member_texts = {span.text_id for span in biggest.members}
        assert {1, 4, 7} <= member_texts

    def test_probe_count(self, dedup_setup):
        corpus, searcher = dedup_setup
        report = find_duplicate_clusters(
            corpus, searcher, theta=0.9, window=40, stride=40
        )
        expected = sum(
            len(range(0, max(0, np.asarray(corpus[i]).size - 40 + 1), 40))
            for i in range(len(corpus))
        )
        assert report.probes == expected

    def test_max_probes_cap(self, dedup_setup):
        corpus, searcher = dedup_setup
        report = find_duplicate_clusters(
            corpus, searcher, theta=0.9, window=40, max_probes=3
        )
        assert report.probes == 3

    def test_window_validated(self, dedup_setup):
        corpus, searcher = dedup_setup
        with pytest.raises(InvalidParameterError):
            find_duplicate_clusters(corpus, searcher, window=5)
        with pytest.raises(InvalidParameterError):
            find_duplicate_clusters(corpus, searcher, window=40, stride=0)

    def test_report_accounting(self, dedup_setup):
        corpus, searcher = dedup_setup
        report = find_duplicate_clusters(
            corpus, searcher, theta=0.9, window=40, stride=10
        )
        assert report.duplicated_spans >= 3
        assert report.redundant_tokens > 0
        assert report.seconds > 0
        drop = report.drop_list()
        # Drop list is disjoint per text.
        per_text: dict[int, list[Span]] = {}
        for span in drop:
            per_text.setdefault(span.text_id, []).append(span)
        for group in per_text.values():
            ordered = sorted(group, key=lambda s: s.start)
            for a, b in zip(ordered, ordered[1:]):
                assert a.end < b.start


class TestDeduplicate:
    def test_removes_redundant_tokens(self, dedup_setup):
        corpus, searcher = dedup_setup
        report = find_duplicate_clusters(
            corpus, searcher, theta=0.9, window=40, stride=10
        )
        cleaned = deduplicate(corpus, report)
        assert len(cleaned) == len(corpus)
        total_before = corpus.total_tokens
        total_after = sum(t.size for t in cleaned)
        assert total_after == total_before - sum(
            s.length for s in report.drop_list()
        )

    def test_untouched_texts_identical(self, dedup_setup):
        corpus, searcher = dedup_setup
        report = find_duplicate_clusters(
            corpus, searcher, theta=0.9, window=40, stride=10
        )
        dropped_texts = {s.text_id for s in report.drop_list()}
        cleaned = deduplicate(corpus, report)
        for text_id in range(len(corpus)):
            if text_id not in dropped_texts:
                assert np.array_equal(cleaned[text_id], corpus[text_id])

    def test_empty_report_is_identity(self, dedup_setup):
        corpus, searcher = dedup_setup
        from repro.dedup.pipeline import DedupReport

        cleaned = deduplicate(corpus, DedupReport(theta=0.9, window=40, stride=40))
        for text_id in range(len(corpus)):
            assert np.array_equal(cleaned[text_id], corpus[text_id])
