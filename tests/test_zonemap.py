"""Tests for zone maps over inverted lists."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.index.zonemap import ZoneMap, build_zone_map


def check_locate(text_ids: np.ndarray, zone: ZoneMap, text_id: int) -> None:
    """The returned range must contain every posting of text_id."""
    lo, hi = zone.locate(text_id)
    assert 0 <= lo <= hi <= text_ids.size
    positions = np.flatnonzero(text_ids == text_id)
    for pos in positions:
        assert lo <= pos < hi, (text_id, lo, hi, positions)


class TestBuildZoneMap:
    def test_samples_every_step(self):
        text_ids = np.arange(100, dtype=np.uint32)
        zone = build_zone_map(text_ids, step=10)
        assert zone.sample_texts.tolist() == list(range(0, 100, 10))
        assert zone.length == 100

    def test_step_validated(self):
        with pytest.raises(InvalidParameterError):
            build_zone_map(np.array([1]), step=0)

    def test_empty_list(self):
        zone = build_zone_map(np.array([], dtype=np.uint32), step=4)
        assert zone.locate(5) == (0, 0)


class TestLocate:
    def test_all_texts_found(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 300))
            text_ids = np.sort(rng.integers(0, 40, size=n).astype(np.uint32))
            step = int(rng.integers(1, 16))
            zone = build_zone_map(text_ids, step)
            for text_id in range(42):
                check_locate(text_ids, zone, text_id)

    def test_absent_text_narrow_range(self):
        text_ids = np.array([0, 0, 5, 5, 9, 9], dtype=np.uint32)
        zone = build_zone_map(text_ids, step=2)
        lo, hi = zone.locate(7)
        assert hi - lo <= 2 * 2  # at most two zones scanned

    def test_text_spanning_many_zones(self):
        """One text owning most of the list must be fully covered."""
        text_ids = np.array([1] + [5] * 20 + [9], dtype=np.uint32)
        zone = build_zone_map(text_ids, step=4)
        check_locate(text_ids, zone, 5)
        lo, hi = zone.locate(5)
        assert lo <= 1 and hi >= 21

    def test_before_first_text(self):
        text_ids = np.array([10, 11, 12], dtype=np.uint32)
        zone = build_zone_map(text_ids, step=2)
        lo, hi = zone.locate(3)
        assert hi - lo == 0

    def test_after_last_text(self):
        text_ids = np.array([1, 2, 3], dtype=np.uint32)
        zone = build_zone_map(text_ids, step=2)
        check_locate(text_ids, zone, 99)

    def test_range_shrinks_io(self):
        """The point of the zone map: locate reads far less than the list."""
        text_ids = np.repeat(np.arange(1000, dtype=np.uint32), 2)
        zone = build_zone_map(text_ids, step=8)
        lo, hi = zone.locate(500)
        assert hi - lo <= 3 * 8
        assert text_ids.size == 2000
