"""Tests for raw-text corpus ingestion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.store import DiskCorpus
from repro.corpus.textfile import (
    ingest_directory,
    ingest_texts,
    iter_text_files,
)
from repro.exceptions import InvalidParameterError
from repro.tokenizer.bpe import BPETokenizer

DOCS = [
    "the rain in spain stays mainly in the plain",
    "the quick brown fox jumps over the lazy dog",
    "pack my box with five dozen liquor jugs",
]


class TestIterTextFiles:
    def test_reads_sorted(self, tmp_path):
        (tmp_path / "b.txt").write_text("second")
        (tmp_path / "a.txt").write_text("first")
        (tmp_path / "ignored.md").write_text("nope")
        assert list(iter_text_files(tmp_path)) == ["first", "second"]

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            list(iter_text_files(tmp_path / "missing"))

    def test_custom_pattern(self, tmp_path):
        (tmp_path / "doc.md").write_text("markdown")
        assert list(iter_text_files(tmp_path, "*.md")) == ["markdown"]


class TestIngestTexts:
    def test_roundtrip(self, tmp_path):
        report = ingest_texts(DOCS, tmp_path / "out", vocab_size=400)
        assert report.num_texts == 3
        assert report.total_tokens > 0
        corpus = DiskCorpus(report.corpus_dir)
        tokenizer = BPETokenizer.load(report.tokenizer_path)
        for doc, text_id in zip(DOCS, range(3)):
            assert tokenizer.decode(np.asarray(corpus[text_id])) == doc

    def test_pretrained_tokenizer_reused(self, tmp_path):
        tokenizer = BPETokenizer.train(DOCS, vocab_size=300)
        report = ingest_texts(
            DOCS, tmp_path / "out2", tokenizer=tokenizer, vocab_size=999
        )
        assert report.vocab_size == tokenizer.vocab_size  # not retrained

    def test_searchable_after_ingest(self, tmp_path):
        """End to end: files -> corpus -> index -> find a copied sentence."""
        docs = DOCS + [DOCS[0] + " and extra trailing words beyond it"]
        report = ingest_texts(docs, tmp_path / "out3", vocab_size=400)
        corpus = DiskCorpus(report.corpus_dir)
        tokenizer = BPETokenizer.load(report.tokenizer_path)

        from repro.core.hashing import HashFamily
        from repro.core.search import NearDuplicateSearcher
        from repro.index.builder import build_memory_index

        family = HashFamily(k=16, seed=2)
        index = build_memory_index(corpus.to_memory(), family, t=5)
        query = tokenizer.encode(DOCS[0])
        result = NearDuplicateSearcher(index).search(query, 0.9)
        matched = {m.text_id for m in result.matches}
        assert {0, 3} <= matched


class TestIngestDirectory:
    def test_directory_pipeline(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        for idx, doc in enumerate(DOCS):
            (src / f"doc{idx}.txt").write_text(doc)
        report = ingest_directory(src, tmp_path / "out", vocab_size=400)
        assert report.num_texts == 3
        assert report.corpus_dir.exists()
        assert report.tokenizer_path.exists()
