"""Tests for the n-gram language model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError
from repro.lm.ngram import NGramConfig, NGramLM


@pytest.fixture(scope="module")
def repeated_corpus():
    """A corpus dominated by one repeated phrase (easy to memorize)."""
    phrase = [1, 2, 3, 4, 5, 6, 7, 8]
    rng = np.random.default_rng(5)
    texts = []
    for _ in range(20):
        noise = rng.integers(0, 20, size=10).tolist()
        texts.append(np.array(phrase * 3 + noise, dtype=np.uint32))
    return InMemoryCorpus(texts)


class TestConfig:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            NGramConfig(order=0)
        with pytest.raises(InvalidParameterError):
            NGramConfig(order=2, prune_min_count=0)
        with pytest.raises(InvalidParameterError):
            NGramConfig(order=2, interpolation=1.0)


class TestTraining:
    def test_vocab_validated(self):
        with pytest.raises(InvalidParameterError):
            NGramLM(NGramConfig(order=2), vocab_size=0)

    def test_fit_counts_tokens(self, repeated_corpus):
        model = NGramLM(NGramConfig(order=3), 20).fit(repeated_corpus)
        assert model.trained_tokens == repeated_corpus.total_tokens

    def test_num_parameters_grows_with_order(self, repeated_corpus):
        small = NGramLM(NGramConfig(order=2), 20).fit(repeated_corpus)
        large = NGramLM(NGramConfig(order=5), 20).fit(repeated_corpus)
        assert large.num_parameters > small.num_parameters

    def test_pruning_shrinks_model(self, repeated_corpus):
        full = NGramLM(NGramConfig(order=3, prune_min_count=1), 20).fit(repeated_corpus)
        pruned = NGramLM(NGramConfig(order=3, prune_min_count=5), 20).fit(
            repeated_corpus
        )
        assert pruned.num_parameters < full.num_parameters


class TestDistribution:
    def test_probabilities_normalized(self, repeated_corpus):
        model = NGramLM(NGramConfig(order=3), 20).fit(repeated_corpus)
        for context in ([], [1], [1, 2], [19, 19, 19]):
            probs = model.next_token_distribution(context)
            assert probs.shape == (20,)
            assert probs.min() > 0  # smoothing never zeroes an event
            assert float(probs.sum()) == pytest.approx(1.0)

    def test_learned_continuation_dominates(self, repeated_corpus):
        """After (1, 2, 3) the corpus always continues with 4."""
        model = NGramLM(NGramConfig(order=4, interpolation=0.95), 20).fit(
            repeated_corpus
        )
        probs = model.next_token_distribution([1, 2, 3])
        assert int(np.argmax(probs)) == 4
        assert probs[4] > 0.5

    def test_unseen_context_falls_back(self, repeated_corpus):
        model = NGramLM(NGramConfig(order=3), 20).fit(repeated_corpus)
        probs = model.next_token_distribution([17, 13])
        # Falls back towards the unigram: frequent tokens still likelier.
        assert probs[1] > probs[19] or probs[2] > probs[19]


class TestScoring:
    def test_sequence_log_prob_finite(self, repeated_corpus):
        model = NGramLM(NGramConfig(order=3), 20).fit(repeated_corpus)
        logp = model.sequence_log_prob(np.array([1, 2, 3, 4]))
        assert np.isfinite(logp) and logp < 0

    def test_memorized_sequence_more_likely(self, repeated_corpus):
        model = NGramLM(NGramConfig(order=4), 20).fit(repeated_corpus)
        seen = model.sequence_log_prob(np.array([1, 2, 3, 4, 5, 6]))
        unseen = model.sequence_log_prob(np.array([9, 17, 11, 13, 19, 10]))
        assert seen > unseen

    def test_perplexity(self, repeated_corpus):
        model = NGramLM(NGramConfig(order=3), 20).fit(repeated_corpus)
        ppl = model.perplexity(np.array([1, 2, 3, 4, 5]))
        assert 1.0 <= ppl < 20.0
        with pytest.raises(InvalidParameterError):
            model.perplexity(np.array([]))

    def test_higher_capacity_lower_perplexity(self, repeated_corpus):
        seq = np.array([1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4])
        small = NGramLM(NGramConfig(order=2), 20).fit(repeated_corpus)
        large = NGramLM(NGramConfig(order=5), 20).fit(repeated_corpus)
        assert large.perplexity(seq) < small.perplexity(seq)
