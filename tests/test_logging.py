"""Tests that the instrumentation logging actually fires."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index


@pytest.fixture
def small_corpus(rng):
    return InMemoryCorpus(
        [rng.integers(0, 40, size=30).astype(np.uint32) for _ in range(4)]
    )


def test_build_logs_summary(small_corpus, caplog):
    family = HashFamily(k=2, seed=1)
    with caplog.at_level(logging.INFO, logger="repro.index.builder"):
        build_memory_index(small_corpus, family, t=5, vocab_size=40)
    messages = [rec.message for rec in caplog.records]
    assert any("built in-memory index" in m for m in messages)


def test_search_logs_debug(small_corpus, caplog):
    family = HashFamily(k=4, seed=2)
    index = build_memory_index(small_corpus, family, t=5, vocab_size=40)
    searcher = NearDuplicateSearcher(index)
    with caplog.at_level(logging.DEBUG, logger="repro.core.search"):
        searcher.search(np.asarray(small_corpus[0])[:10], 0.8)
    assert any("query theta=" in rec.message for rec in caplog.records)


def test_external_build_logs(small_corpus, caplog, tmp_path):
    from repro.index.external import ExternalBuildConfig, build_external_index

    family = HashFamily(k=2, seed=3)
    with caplog.at_level(logging.INFO, logger="repro.index.external"):
        build_external_index(
            small_corpus,
            family,
            5,
            tmp_path / "idx",
            vocab_size=40,
            config=ExternalBuildConfig(batch_texts=2, num_partitions=2),
        )
    assert any("external build complete" in rec.message for rec in caplog.records)


def test_recursive_partitioning_logs_debug(small_corpus, caplog, tmp_path):
    from repro.index.external import ExternalBuildConfig, build_external_index

    family = HashFamily(k=2, seed=4)
    with caplog.at_level(logging.DEBUG, logger="repro.index.external"):
        build_external_index(
            small_corpus,
            family,
            5,
            tmp_path / "deep",
            vocab_size=40,
            config=ExternalBuildConfig(
                batch_texts=2, num_partitions=2, memory_budget_bytes=64
            ),
        )
    assert any("re-partitioning" in rec.message for rec in caplog.records)
