"""Tests for the single-pass multi-threshold search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.synthetic import synthweb
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index


@pytest.fixture(scope="module")
def engine():
    data = synthweb(num_texts=120, mean_length=120, vocab_size=512, seed=41)
    family = HashFamily(k=16, seed=7)
    index = build_memory_index(data.corpus, family, t=20, vocab_size=512)
    return data.corpus, NearDuplicateSearcher(index)


def as_set(result):
    return {
        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
        for m in result.matches
        for r in m.rectangles
    }


class TestSearchThetas:
    def test_matches_individual_searches(self, engine):
        corpus, searcher = engine
        thetas = [0.5, 0.7, 0.9, 1.0]
        for text_id in (0, 3, 7):
            query = np.asarray(corpus[text_id])[:40]
            combined = searcher.search_thetas(query, thetas)
            for theta in thetas:
                single = searcher.search(query, theta)
                assert as_set(combined[theta]) == as_set(single), theta

    def test_metadata_per_theta(self, engine):
        corpus, searcher = engine
        results = searcher.search_thetas(np.asarray(corpus[0])[:40], [0.6, 0.9])
        assert results[0.6].theta == 0.6
        assert results[0.9].theta == 0.9
        assert results[0.9].beta > results[0.6].beta
        assert results[0.6].t == results[0.9].t == searcher.t

    def test_nested_results(self, engine):
        """Stricter thresholds return subsets."""
        corpus, searcher = engine
        results = searcher.search_thetas(
            np.asarray(corpus[2])[:40], [0.5, 0.8, 1.0]
        )
        pairs_05 = {
            (m.text_id, i, j)
            for m in results[0.5].matches
            for r in m.rectangles
            for (i, j) in r.iter_spans(searcher.t)
        }
        pairs_10 = {
            (m.text_id, i, j)
            for m in results[1.0].matches
            for r in m.rectangles
            for (i, j) in r.iter_spans(searcher.t)
        }
        assert pairs_10 <= pairs_05

    def test_single_theta(self, engine):
        corpus, searcher = engine
        query = np.asarray(corpus[1])[:40]
        combined = searcher.search_thetas(query, [0.8])
        assert as_set(combined[0.8]) == as_set(searcher.search(query, 0.8))

    def test_empty_thetas_rejected(self, engine):
        _, searcher = engine
        with pytest.raises(InvalidParameterError):
            searcher.search_thetas(np.array([1], dtype=np.uint32), [])

    def test_stats_shared_single_pass(self, engine):
        """All thetas report the same (single-pass) I/O accounting."""
        corpus, searcher = engine
        results = searcher.search_thetas(np.asarray(corpus[4])[:40], [0.5, 1.0])
        assert results[0.5].stats.io_bytes == results[1.0].stats.io_bytes
        assert results[0.5].stats.groups_scanned == results[1.0].stats.groups_scanned

    def test_with_prefix_filtering(self, engine):
        corpus, _ = engine
        family = HashFamily(k=16, seed=7)
        index = build_memory_index(corpus, family, t=20, vocab_size=512)
        aggressive = NearDuplicateSearcher(index, long_list_cutoff=8)
        query = np.asarray(corpus[0])[:40]
        combined = aggressive.search_thetas(query, [0.5, 0.9])
        for theta in (0.5, 0.9):
            assert as_set(combined[theta]) == as_set(aggressive.search(query, theta))
