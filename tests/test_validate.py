"""Tests for the index integrity validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.index.inverted import MemoryInvertedIndex, POSTING_DTYPE
from repro.index.storage import DiskInvertedIndex, write_index
from repro.index.validate import validate_index


@pytest.fixture(scope="module")
def good_setup():
    rng = np.random.default_rng(7)
    corpus = InMemoryCorpus(
        [rng.integers(0, 60, size=50).astype(np.uint32) for _ in range(8)]
    )
    family = HashFamily(k=4, seed=3)
    index = build_memory_index(corpus, family, t=8, vocab_size=60)
    return corpus, family, index


def corrupt_index(family, t, records):
    """Build an index directly from raw (minhash, text, l, c, r) records."""
    minhashes = np.array([r[0] for r in records], dtype=np.uint32)
    postings = np.empty(len(records), dtype=POSTING_DTYPE)
    for idx, (_, text, left, center, right) in enumerate(records):
        postings[idx] = (text, left, center, right)
    per_func = [(minhashes, postings)] + [
        (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
    ] * (family.k - 1)
    return MemoryInvertedIndex.from_postings(family, t, per_func)


class TestValidIndexes:
    def test_memory_index_passes(self, good_setup):
        corpus, family, index = good_setup
        report = validate_index(index, corpus)
        assert report.ok, report.errors
        assert report.lists_checked > 0
        assert report.postings_checked == index.num_postings

    def test_disk_index_passes(self, good_setup, tmp_path):
        corpus, family, index = good_setup
        write_index(index, tmp_path / "idx")
        disk = DiskInvertedIndex(tmp_path / "idx")
        report = validate_index(disk, corpus)
        assert report.ok, report.errors

    def test_structure_only_validation(self, good_setup):
        _, _, index = good_setup
        report = validate_index(index)  # no corpus: shallow checks only
        assert report.ok

    def test_sampled_validation(self, good_setup):
        corpus, _, index = good_setup
        report = validate_index(index, corpus, max_lists_per_func=2)
        assert report.ok
        assert report.lists_checked <= 2 * index.family.k


class TestCorruptIndexes:
    def test_bad_geometry_detected(self):
        family = HashFamily(k=2, seed=1)
        index = corrupt_index(family, 3, [(10, 0, 5, 2, 8)])  # left > center
        report = validate_index(index)
        assert not report.ok
        assert any("geometry" in e for e in report.errors)

    def test_narrow_window_detected(self):
        family = HashFamily(k=2, seed=1)
        index = corrupt_index(family, 10, [(10, 0, 2, 3, 5)])  # width 4 < t
        report = validate_index(index)
        assert any("narrower" in e for e in report.errors)

    def test_window_outside_text_detected(self):
        family = HashFamily(k=2, seed=1)
        corpus = InMemoryCorpus([[1, 2, 3]])
        index = corrupt_index(family, 2, [(10, 0, 0, 1, 9)])  # right=9 > len
        report = validate_index(index, corpus)
        assert any("exceeds text" in e for e in report.errors)

    def test_text_id_out_of_range_detected(self):
        family = HashFamily(k=2, seed=1)
        corpus = InMemoryCorpus([[1, 2, 3]])
        index = corrupt_index(family, 2, [(10, 7, 0, 1, 2)])
        report = validate_index(index, corpus)
        assert any("out of range" in e for e in report.errors)

    def test_wrong_minhash_detected(self):
        family = HashFamily(k=2, seed=1)
        corpus = InMemoryCorpus([np.arange(10, dtype=np.uint32)])
        # Window geometry fine, but the stored min-hash is bogus.
        index = corrupt_index(family, 3, [(123456, 0, 0, 4, 9)])
        report = validate_index(index, corpus)
        assert any("mismatch" in e or "minimal" in e for e in report.errors)

    def test_tampered_disk_payload_detected(self, good_setup, tmp_path):
        corpus, family, index = good_setup
        write_index(index, tmp_path / "tampered")
        payload = tmp_path / "tampered" / "index.postings.bin"
        raw = bytearray(payload.read_bytes())
        # Flip a posting's 'right' field to an absurd value.
        raw[12:16] = (10**6).to_bytes(4, "little")
        payload.write_bytes(bytes(raw))
        disk = DiskInvertedIndex(tmp_path / "tampered")
        report = validate_index(disk, corpus)
        assert not report.ok


class TestCLIValidate:
    def test_cli_roundtrip(self, good_setup, tmp_path, capsys):
        from repro.cli import main
        from repro.corpus.store import write_corpus

        corpus, family, index = good_setup
        write_index(index, tmp_path / "idx")
        write_corpus(corpus, tmp_path / "corpus")
        code = main(
            ["validate", str(tmp_path / "idx"), "--corpus", str(tmp_path / "corpus")]
        )
        assert code == 0
        assert "index OK" in capsys.readouterr().out
