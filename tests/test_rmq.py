"""Tests for the three RMQ backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rmq import (
    BlockRMQ,
    RMQ_BACKENDS,
    SegmentTreeRMQ,
    SparseTableRMQ,
    make_rmq,
)
from repro.exceptions import InvalidParameterError

BACKENDS = list(RMQ_BACKENDS.values())


def leftmost_argmin(values: np.ndarray, lo: int, hi: int) -> int:
    """Reference implementation."""
    window = values[lo : hi + 1]
    return lo + int(np.argmin(window))


@pytest.mark.parametrize("backend", BACKENDS)
class TestCorrectness:
    def test_singleton(self, backend):
        rmq = backend(np.array([42]))
        assert rmq.query(0, 0) == 0

    def test_full_range(self, backend):
        values = np.array([5, 3, 8, 1, 9, 2])
        assert backend(values).query(0, 5) == 3

    def test_all_subranges_random(self, backend, rng):
        values = rng.integers(0, 100, size=60)
        rmq = backend(values)
        for lo in range(60):
            for hi in range(lo, 60):
                assert rmq.query(lo, hi) == leftmost_argmin(values, lo, hi)

    def test_leftmost_on_ties(self, backend):
        values = np.array([7, 2, 5, 2, 2, 9])
        rmq = backend(values)
        assert rmq.query(0, 5) == 1
        assert rmq.query(2, 5) == 3
        assert rmq.query(3, 4) == 3

    def test_all_equal(self, backend):
        values = np.zeros(17, dtype=np.int64)
        rmq = backend(values)
        for lo in range(17):
            for hi in range(lo, 17):
                assert rmq.query(lo, hi) == lo

    def test_sorted_ascending(self, backend):
        values = np.arange(33)
        rmq = backend(values)
        assert rmq.query(5, 30) == 5

    def test_sorted_descending(self, backend):
        values = np.arange(33)[::-1].copy()
        rmq = backend(values)
        assert rmq.query(5, 30) == 30

    def test_invalid_ranges(self, backend):
        rmq = backend(np.array([1, 2, 3]))
        with pytest.raises(InvalidParameterError):
            rmq.query(2, 1)
        with pytest.raises(InvalidParameterError):
            rmq.query(-1, 2)
        with pytest.raises(InvalidParameterError):
            rmq.query(0, 3)

    def test_empty_input_rejected(self, backend):
        with pytest.raises(InvalidParameterError):
            backend(np.array([]))

    def test_two_dimensional_rejected(self, backend):
        with pytest.raises(InvalidParameterError):
            backend(np.zeros((3, 3)))


class TestBackendsAgree:
    def test_random_arrays(self, rng):
        for _ in range(10):
            n = int(rng.integers(1, 200))
            values = rng.integers(0, 20, size=n)  # many ties
            structures = [backend(values) for backend in BACKENDS]
            for _ in range(50):
                lo = int(rng.integers(0, n))
                hi = int(rng.integers(lo, n))
                answers = {s.query(lo, hi) for s in structures}
                assert len(answers) == 1


class TestBlockRMQ:
    def test_custom_block_size(self, rng):
        values = rng.integers(0, 50, size=100)
        rmq = BlockRMQ(values, block_size=7)
        for _ in range(100):
            lo = int(rng.integers(0, 100))
            hi = int(rng.integers(lo, 100))
            assert rmq.query(lo, hi) == leftmost_argmin(values, lo, hi)

    def test_invalid_block_size(self):
        with pytest.raises(InvalidParameterError):
            BlockRMQ(np.array([1, 2]), block_size=0)

    def test_single_block(self):
        rmq = BlockRMQ(np.array([4, 2, 6]), block_size=10)
        assert rmq.query(0, 2) == 1


class TestFactory:
    def test_known_backends(self):
        values = np.array([3, 1, 2])
        assert isinstance(make_rmq(values, "sparse"), SparseTableRMQ)
        assert isinstance(make_rmq(values, "segment"), SegmentTreeRMQ)
        assert isinstance(make_rmq(values, "block"), BlockRMQ)

    def test_unknown_backend(self):
        with pytest.raises(InvalidParameterError):
            make_rmq(np.array([1]), "btree")

    def test_default_is_sparse(self):
        assert isinstance(make_rmq(np.array([1, 2])), SparseTableRMQ)
