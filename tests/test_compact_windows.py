"""Tests for compact-window generation (Algorithm 2 and variants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact_windows import (
    CompactWindow,
    WINDOW_DTYPE,
    array_to_windows,
    enumerate_covered_sequences,
    generate_compact_windows,
    generate_compact_windows_recursive,
    generate_compact_windows_stack,
    window_minhashes,
    windows_to_array,
)
from repro.core.theory import expected_window_count
from repro.exceptions import InvalidParameterError


def window_set(windows) -> set[tuple[int, int, int]]:
    if isinstance(windows, np.ndarray):
        return {
            (int(w["left"]), int(w["center"]), int(w["right"])) for w in windows
        }
    return {(w.left, w.center, w.right) for w in windows}


class TestCompactWindow:
    def test_width(self):
        assert CompactWindow(2, 5, 9).width == 8

    def test_contains(self):
        window = CompactWindow(2, 5, 9)
        assert window.contains(2, 5)
        assert window.contains(5, 5)
        assert window.contains(3, 7)
        assert not window.contains(6, 9)  # i > center
        assert not window.contains(2, 4)  # j < center
        assert not window.contains(1, 9)  # i < left
        assert not window.contains(2, 10)  # j > right

    def test_paper_example(self):
        """Figure 1: hash values placing the minimum at position 13 (1-based)."""
        # 0-based: the minimum is at index 12; window (0, 12, 16) covers
        # all sequences starting <= 12 and ending >= 12.
        window = CompactWindow(0, 12, 16)
        assert window.contains(0, 16)
        assert window.contains(12, 12)
        assert not window.contains(13, 16)


class TestGenerators:
    def test_threshold_validated(self):
        for generator in (
            generate_compact_windows,
            generate_compact_windows_recursive,
            generate_compact_windows_stack,
        ):
            with pytest.raises(InvalidParameterError):
                generator(np.array([1, 2, 3]), 0)

    def test_short_input_yields_nothing(self):
        hashes = np.array([5, 1, 7], dtype=np.uint32)
        assert generate_compact_windows(hashes, 4) == []
        assert generate_compact_windows_stack(hashes, 4).size == 0

    def test_empty_input(self):
        empty = np.array([], dtype=np.uint32)
        assert generate_compact_windows(empty, 1) == []
        assert generate_compact_windows_stack(empty, 1).size == 0

    def test_t1_generates_one_window_per_position(self, rng):
        hashes = rng.permutation(100).astype(np.uint32)
        windows = generate_compact_windows_stack(hashes, 1)
        assert windows.size == 100
        assert set(windows["center"].tolist()) == set(range(100))

    def test_root_window_spans_text(self, rng):
        hashes = rng.permutation(64).astype(np.uint32)
        windows = generate_compact_windows(hashes, 1)
        root = next(w for w in windows if w.left == 0 and w.right == 63)
        assert hashes[root.center] == hashes.min()

    def test_all_generators_agree_random(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 150))
            t = int(rng.integers(1, 20))
            hashes = rng.integers(0, 40, size=n).astype(np.uint32)
            a = window_set(generate_compact_windows(hashes, t))
            b = window_set(generate_compact_windows_recursive(hashes, t))
            c = window_set(generate_compact_windows_stack(hashes, t))
            assert a == b == c

    @pytest.mark.parametrize("backend", ["sparse", "segment", "block"])
    def test_rmq_backends_agree(self, backend, rng):
        hashes = rng.integers(0, 30, size=80).astype(np.uint32)
        base = window_set(generate_compact_windows(hashes, 5))
        assert window_set(generate_compact_windows(hashes, 5, backend)) == base

    def test_duplicate_tokens_tie_break(self):
        """All-equal hashes: leftmost tie-break gives a left-leaning chain."""
        hashes = np.zeros(6, dtype=np.uint32)
        windows = window_set(generate_compact_windows_stack(hashes, 1))
        assert (0, 0, 5) in windows
        assert len(windows) == 6

    def test_long_text_no_recursion_error(self):
        """The iterative generators must survive adversarial (sorted) input."""
        hashes = np.arange(50_000, dtype=np.uint32)
        windows = generate_compact_windows_stack(hashes, 1000)
        assert windows.size > 0
        iterative = generate_compact_windows(hashes, 40_000)
        assert window_set(iterative) == window_set(
            generate_compact_windows_stack(hashes, 40_000)
        )


class TestPartitionProperty:
    """Theorem 1, second part: every sequence of length >= t lies in
    exactly one valid compact window."""

    @pytest.mark.parametrize("t", [1, 2, 5, 9])
    def test_every_sequence_covered_once(self, t, rng):
        n = 70
        hashes = rng.integers(0, 25, size=n).astype(np.uint32)  # many ties
        windows = generate_compact_windows(hashes, t)
        for i in range(n):
            for j in range(i + t - 1, n):
                cover = sum(1 for w in windows if w.contains(i, j))
                assert cover == 1, f"sequence ({i},{j}) covered {cover} times"

    def test_no_window_narrower_than_t(self, rng):
        hashes = rng.integers(0, 1000, size=200).astype(np.uint32)
        for t in (3, 10, 50):
            for window in generate_compact_windows(hashes, t):
                assert window.width >= t

    def test_windows_have_minimum_at_center(self, rng):
        hashes = rng.integers(0, 100, size=120).astype(np.uint32)
        for window in generate_compact_windows(hashes, 4):
            segment = hashes[window.left : window.right + 1]
            assert hashes[window.center] == segment.min()


class TestExpectedCount:
    def test_matches_theorem_on_average(self):
        """Measured mean window count ~ 2(n+1)/(t+1) - 1 over random hashes."""
        n, t = 150, 8
        counts = []
        for seed in range(300):
            rng = np.random.default_rng(seed)
            hashes = rng.permutation(10**6)[:n].astype(np.uint32)
            counts.append(generate_compact_windows_stack(hashes, t).size)
        expected = expected_window_count(n, t)
        assert abs(float(np.mean(counts)) - expected) < 0.05 * expected

    def test_paper_example_count(self):
        """Example 1: n=17, t=5 gives expectation 2*18/6 - 1 = 5."""
        assert expected_window_count(17, 5) == 5.0


class TestConversions:
    def test_roundtrip(self, rng):
        hashes = rng.integers(0, 50, size=40).astype(np.uint32)
        windows = generate_compact_windows(hashes, 3)
        array = windows_to_array(windows)
        assert array.dtype == WINDOW_DTYPE
        assert array_to_windows(array) == windows

    def test_window_minhashes(self, rng):
        hashes = rng.integers(0, 50, size=40).astype(np.uint32)
        array = generate_compact_windows_stack(hashes, 3)
        minhashes = window_minhashes(array, hashes)
        for rec, mh in zip(array, minhashes):
            assert hashes[int(rec["center"])] == mh

    def test_enumerate_covered_sequences(self):
        window = CompactWindow(1, 3, 5)
        spans = enumerate_covered_sequences(window, min_length=1)
        assert (1, 3) in spans and (3, 5) in spans and (3, 3) in spans
        assert all(i <= 3 <= j for i, j in spans)
        long_spans = enumerate_covered_sequences(window, min_length=4)
        assert all(j - i + 1 >= 4 for i, j in long_spans)
        assert (1, 4) in long_spans
