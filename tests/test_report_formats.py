"""Tests for report formatting and remaining evaluator surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memorization.evaluator import MemorizationReport, QueryOutcome
from repro.memorization.report import figure4_series, format_series_table


def make_report(fractions: list[bool], model="m", theta=0.8, width=32):
    report = MemorizationReport(model_name=model, theta=theta, window_width=width)
    for idx, matched in enumerate(fractions):
        report.outcomes.append(
            QueryOutcome(
                generated_text=0,
                window_index=idx,
                query=np.array([1, 2, 3], dtype=np.uint32),
                matched=matched,
                num_texts=int(matched),
                example=None,
            )
        )
    return report


class TestMemorizationReport:
    def test_fraction_math(self):
        report = make_report([True, False, True, False])
        assert report.num_queries == 4
        assert report.num_memorized == 2
        assert report.memorized_fraction == 0.5

    def test_empty_report(self):
        report = make_report([])
        assert report.memorized_fraction == 0.0

    def test_examples_only_matched(self):
        report = make_report([True, False, True])
        examples = report.examples(limit=10)
        assert len(examples) == 2
        assert all(outcome.matched for outcome in examples)

    def test_examples_limit(self):
        report = make_report([True] * 10)
        assert len(report.examples(limit=3)) == 3


class TestSeriesFormatting:
    def test_rows_structure(self):
        rows = figure4_series([make_report([True]), make_report([False], theta=1.0)])
        assert rows[0]["memorized_fraction"] == 1.0
        assert rows[1]["theta"] == 1.0

    def test_table_renders_all_rows(self):
        rows = figure4_series(
            [make_report([True], model="small"), make_report([False], model="xl")]
        )
        table = format_series_table(rows)
        assert "small" in table and "xl" in table
        assert "100.00%" in table and "0.00%" in table

    def test_table_header(self):
        table = format_series_table([])
        assert "model" in table and "theta" in table

    def test_percent_formatting(self):
        rows = figure4_series([make_report([True, False, False])])
        table = format_series_table(rows)
        assert "33.33%" in table
