"""Replica-aware routing tests (ISSUE 9).

Three layers, cheapest first:

* pure shard-map format tests — format-2 (replica lists) round trips,
  format-1 documents still load (promoted to one-replica sets), the
  validation rejects duplicate/ambiguous endpoints, and ``save()`` is
  crash-safe (no stray temp files);
* :class:`ReplicaState` / :class:`ReplicaSet` unit tests with a fake
  clock — breaker lifecycle (closed → open → half-open probe → closed
  or re-open), the selection policies, and the p95-derived hedge delay
  — no sockets, no sleeps;
* a live replicated fleet (two shards x two replicas, every replica a
  real :class:`SearchService` on an ephemeral port) proving the hard
  invariant: whatever the policy, hedging mode, or replica health, a
  routed answer is byte-identical to the in-process
  :class:`ShardedSearcher` over the same partition.  Failover and
  hedging are driven deterministically — a stopped runner for breaker
  trips, a paused batcher for hedge wins — never by racing timers.
"""

from __future__ import annotations

import asyncio
import json
import socket

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import NearDupEngine
from repro.exceptions import InvalidParameterError
from repro.index.sharded import ShardedIndex, ShardedSearcher
from repro.service import (
    AsyncServiceClient,
    Replica,
    ReplicaSet,
    ReplicaState,
    RouterConfig,
    RouterService,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    ShardEntry,
    ShardMap,
    build_shard_fleet,
    result_to_wire,
    with_added_replicas,
)
from repro.service.replicas import CLOSED, HALF_OPEN, OPEN
from repro.service.server import load_served_engine

NUM_SHARDS = 2
REPLICAS = 2


def canonical(wire) -> str:
    return json.dumps(wire, sort_keys=True)


# ----------------------------------------------------------------------
# Shard map format 2
# ----------------------------------------------------------------------
class TestShardMapFormat2:
    def entries(self):
        return [
            ShardEntry(
                name="s0",
                first_text=0,
                count=10,
                replicas=(Replica("127.0.0.1", 9000), Replica("127.0.0.1", 9001)),
            ),
            ShardEntry(
                name="s1",
                first_text=10,
                count=5,
                replicas=(Replica("127.0.0.1", 9002), Replica("127.0.0.1", 9003)),
            ),
        ]

    def test_round_trip_preserves_replicas(self, tmp_path):
        shard_map = ShardMap(self.entries())
        path = shard_map.save(tmp_path / "shardmap.json")
        loaded = ShardMap.load(path)
        assert loaded.to_dict() == shard_map.to_dict()
        assert loaded.to_dict()["format"] == 2
        assert [r.endpoint for r in loaded.entries[0].replicas] == [
            "127.0.0.1:9000",
            "127.0.0.1:9001",
        ]
        assert loaded.num_replicas == 4

    def test_primary_is_first_replica_and_backs_host_port(self):
        entry = self.entries()[0]
        assert entry.primary == Replica("127.0.0.1", 9000)
        # host/port view (format-1 callers) tracks the primary
        assert (entry.host, entry.port) == ("127.0.0.1", 9000)

    def test_format1_documents_still_load(self, tmp_path):
        doc = {
            "format": 1,
            "replicas": 48,  # ring vnodes, the format-1 meaning
            "shards": [
                {"name": "s0", "host": "h", "port": 1, "first_text": 0, "count": 3},
                {"name": "s1", "host": "h", "port": 2, "first_text": 3, "count": 4},
            ],
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps(doc))
        loaded = ShardMap.load(path)
        assert loaded.replicas == 48  # ring width survives the rename
        for entry, port in zip(loaded, (1, 2)):
            assert [r.endpoint for r in entry.replicas] == [f"h:{port}"]
        # re-saving upgrades in place
        loaded.save(path)
        assert json.loads(path.read_text())["format"] == 2

    def test_rejects_duplicate_endpoints_within_a_shard(self):
        with pytest.raises(InvalidParameterError):
            ShardEntry(
                name="s0",
                first_text=0,
                count=1,
                replicas=(Replica("h", 1), Replica("h", 1)),
            )

    def test_rejects_one_endpoint_serving_two_shards(self):
        with pytest.raises(InvalidParameterError):
            ShardMap(
                [
                    ShardEntry("s0", "h", 1, 0, 3),
                    ShardEntry("s1", "h", 1, 3, 3),
                ]
            )

    def test_rejects_an_entry_with_no_endpoint(self):
        with pytest.raises(InvalidParameterError):
            ShardEntry(name="s0", first_text=0, count=1)

    def test_with_added_replicas_grows_without_moving_ports(self):
        shard_map = ShardMap(
            [ShardEntry("s0", "h", 9000, 0, 3), ShardEntry("s1", "h", 9001, 3, 3)]
        )
        grown = with_added_replicas(shard_map, 2, base_port=9000)
        for entry, old in zip(grown, shard_map):
            assert entry.replicas[0] == old.primary  # primary kept
            assert len(entry.replicas) == 2
        endpoints = [r.endpoint for e in grown for r in e.replicas]
        assert len(endpoints) == len(set(endpoints))
        # idempotent once the target width is reached
        again = with_added_replicas(grown, 2, base_port=9000)
        assert again.to_dict() == grown.to_dict()

    def test_save_leaves_no_temp_files(self, tmp_path):
        shard_map = ShardMap(self.entries())
        shard_map.save(tmp_path / "shardmap.json")
        shard_map.save(tmp_path / "shardmap.json")  # overwrite path too
        assert [p.name for p in tmp_path.iterdir()] == ["shardmap.json"]


# ----------------------------------------------------------------------
# Breaker + policy units (fake clock, no sockets)
# ----------------------------------------------------------------------
def make_state(port=9000, **kwargs):
    clock = kwargs.pop("clock", None)
    if clock is None:
        now = [0.0]
        clock = lambda: now[0]  # noqa: E731
        state = ReplicaState(Replica("h", port), clock=clock, **kwargs)
        state.now = now  # let tests advance time
        return state
    return ReplicaState(Replica("h", port), clock=clock, **kwargs)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        state = make_state(failure_threshold=3, cooldown_s=5.0)
        for _ in range(2):
            state.on_pick()
            assert state.on_failure() is False
        assert state.breaker_state() == CLOSED
        state.on_pick()
        assert state.on_failure() is True  # the trip is reported once
        assert state.breaker_state() == OPEN
        assert not state.available()
        assert state.breaker_trips == 1

    def test_success_resets_the_streak(self):
        state = make_state(failure_threshold=2)
        state.on_pick()
        state.on_failure()
        state.on_pick()
        state.on_success(0.01)
        state.on_pick()
        assert state.on_failure() is False  # streak restarted at 0
        assert state.breaker_state() == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        state = make_state(failure_threshold=1, cooldown_s=2.0)
        state.on_pick()
        state.on_failure()
        assert state.breaker_state() == OPEN
        state.now[0] = 2.5  # cooldown elapsed
        assert state.breaker_state() == HALF_OPEN
        assert state.available()
        state.on_pick()  # the probe
        assert not state.available()  # concurrent traffic still barred
        state.on_success(0.01)
        assert state.breaker_state() == CLOSED
        assert state.available()

    def test_failed_probe_rearms_the_cooldown(self):
        state = make_state(failure_threshold=1, cooldown_s=2.0)
        state.on_pick()
        state.on_failure()
        state.now[0] = 2.5
        state.on_pick()  # probe...
        assert state.on_failure() is True  # ...fails: a fresh trip
        assert state.breaker_state() == OPEN
        assert state.breaker_trips == 2
        state.now[0] = 4.0  # only 1.5s into the new cooldown
        assert state.breaker_state() == OPEN
        state.now[0] = 4.6
        assert state.breaker_state() == HALF_OPEN

    def test_cancellation_is_not_a_health_signal(self):
        state = make_state(failure_threshold=1)
        state.on_pick()
        state.on_cancelled()
        assert state.breaker_state() == CLOSED
        assert state.inflight == 0
        assert state.cancelled == 1

    def test_non_breaker_failures_never_trip(self):
        """A 4xx means the replica answered; only transport/5xx count."""
        state = make_state(failure_threshold=1)
        for _ in range(5):
            state.on_pick()
            assert state.on_failure(breaker=False) is False
        assert state.breaker_state() == CLOSED
        assert state.failures == 5

    def test_ewma_tracks_latency(self):
        state = make_state(ewma_alpha=0.5)
        state.on_pick()
        state.on_success(0.100)
        assert state.ewma_s == pytest.approx(0.100)
        state.on_pick()
        state.on_success(0.200)
        assert state.ewma_s == pytest.approx(0.150)


class TestReplicaSetPolicies:
    def make_set(self, policy, count=3, **kwargs):
        now = [0.0]
        clock = lambda: now[0]  # noqa: E731
        states = [
            make_state(port=9000 + index, clock=clock) for index in range(count)
        ]
        replica_set = ReplicaSet(states, policy=policy, clock=clock, **kwargs)
        replica_set.now = now
        return replica_set

    def test_pick_first_is_deterministic(self):
        replica_set = self.make_set("pick-first")
        assert all(
            replica_set.pick() is replica_set.replicas[0] for _ in range(5)
        )

    def test_pick_first_skips_open_breakers(self):
        replica_set = self.make_set("pick-first")
        bad = replica_set.replicas[0]
        for _ in range(bad.failure_threshold):
            bad.on_pick()
            bad.on_failure()
        assert replica_set.pick() is replica_set.replicas[1]

    def test_round_robin_rotates(self):
        replica_set = self.make_set("round-robin")
        picks = [replica_set.pick() for _ in range(6)]
        assert picks[:3] == replica_set.replicas
        assert picks[3:] == replica_set.replicas

    def test_power_of_two_prefers_the_lower_score(self):
        import random

        replica_set = self.make_set("power-of-two", rng=random.Random(0))
        fast, slow = replica_set.replicas[0], replica_set.replicas[1]
        for state in replica_set.replicas:
            state.on_pick()
            state.on_success(0.100)
        fast.on_pick()
        fast.on_success(0.001)  # drag its EWMA down
        wins = 0
        for _ in range(20):
            picked = replica_set.pick()
            assert picked.score() <= max(fast.score(), slow.score())
            wins += picked is fast
        # fast is in 2/3 of the sampled pairs and wins each one it is in
        assert wins > 10

    def test_exclusion_and_exhaustion(self):
        replica_set = self.make_set("pick-first", count=2)
        first = replica_set.pick()
        second = replica_set.pick(exclude=[first])
        assert second is not first
        assert replica_set.pick(exclude=[first, second]) is None

    def test_all_breakers_open_falls_back_to_soonest_recovery(self):
        replica_set = self.make_set("pick-first", count=2)
        early, late = replica_set.replicas
        for state, trip_at in ((early, 0.0), (late, 1.0)):
            replica_set.now[0] = trip_at
            for _ in range(state.failure_threshold):
                state.on_pick()
                state.on_failure()
        replica_set.now[0] = 1.5  # both still open
        assert replica_set.pick() is early  # its cooldown expires first

    def test_hedge_delay_fixed_auto_and_warmup(self):
        replica_set = self.make_set("pick-first")
        assert replica_set.hedge_delay(40.0) == pytest.approx(0.040)
        # auto mode before warmup: the fixed default
        from repro.service.replicas import (
            DEFAULT_HEDGE_DELAY_S,
            HEDGE_WARMUP_SAMPLES,
        )

        assert replica_set.hedge_delay(0) == DEFAULT_HEDGE_DELAY_S
        for _ in range(HEDGE_WARMUP_SAMPLES):
            replica_set.record_latency(0.010)
        delay = replica_set.hedge_delay(0)
        assert delay >= 0.010  # the p95 bucket bound covers the samples
        assert delay < DEFAULT_HEDGE_DELAY_S

    def test_snapshot_shape(self):
        replica_set = self.make_set("round-robin")
        replica_set.pick().on_pick()
        snapshot = replica_set.snapshot()
        assert snapshot["policy"] == "round-robin"
        assert len(snapshot["replicas"]) == 3
        first = snapshot["replicas"][0]
        assert first["picks"] == 1
        assert first["breaker"]["state"] == CLOSED


# ----------------------------------------------------------------------
# A live replicated fleet: 2 shards x 2 replicas + the reference
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine(planted_data, planted_index) -> NearDupEngine:
    return NearDupEngine(planted_data.corpus, planted_index)


@pytest.fixture(scope="module")
def queries(planted_data) -> list[np.ndarray]:
    corpus = planted_data.corpus
    return [np.asarray(corpus[text_id])[:40] for text_id in range(4)]


@pytest.fixture(scope="module")
def direct(engine) -> ShardedSearcher:
    sharded = ShardedIndex.build(
        engine.corpus, engine.index.family, engine.index.t, num_shards=NUM_SHARDS
    )
    return ShardedSearcher(sharded)


@pytest.fixture(scope="module")
def replicated_fleet(engine, tmp_path_factory):
    """Every shard served by REPLICAS independent servers (same data)."""
    root = tmp_path_factory.mktemp("replicated")
    saved_map = build_shard_fleet(
        engine, root, num_shards=NUM_SHARDS, replicas_per_shard=REPLICAS
    )
    runners: dict[str, list[ServiceRunner]] = {}
    entries = []
    for entry in saved_map:
        shard_runners = []
        for _ in range(REPLICAS):
            shard_engine = load_served_engine(str(root / entry.name))
            shard_runners.append(
                ServiceRunner(
                    shard_engine,
                    ServiceConfig(port=0, warmup_lists=0, workers=1),
                ).start()
            )
        runners[entry.name] = shard_runners
        entries.append(
            ShardEntry(
                name=entry.name,
                first_text=entry.first_text,
                count=entry.count,
                replicas=tuple(
                    Replica(r.host, r.port) for r in shard_runners
                ),
            )
        )
    yield {"map": ShardMap(entries), "runners": runners}
    for shard_runners in runners.values():
        for runner in shard_runners:
            runner.stop()


ROUTER_CONFIGS = [
    ("pick-first", None),
    ("round-robin", None),
    ("power-of-two", None),
    ("power-of-two", 0),  # hedging in auto (p95) mode
    ("pick-first", 25.0),  # hedging with a fixed delay
]


@pytest.fixture(scope="module")
def routed_clients(replicated_fleet):
    """One live router + client per (policy, hedge) configuration."""
    clients = {}
    stack = []
    for policy, hedge in ROUTER_CONFIGS:
        router = RouterService(
            replicated_fleet["map"],
            RouterConfig(
                port=0, policy=policy, hedge_after_ms=hedge, policy_seed=7
            ),
        )
        runner = ServiceRunner(service=router).start()
        client = ServiceClient(runner.host, runner.port)
        clients[(policy, hedge)] = client
        stack.append((client, runner))
    yield clients
    for client, runner in stack:
        client.close()
        runner.stop()


class TestRoutedIdentityAcrossPolicies:
    @pytest.mark.parametrize("policy,hedge", ROUTER_CONFIGS)
    def test_byte_identity_with_direct_search(
        self, routed_clients, direct, queries, policy, hedge
    ):
        client = routed_clients[(policy, hedge)]
        for query in queries:
            response = client.search(query, 0.8)
            assert response["ok"] is True
            assert "partial" not in response
            want = result_to_wire(direct.search(query, 0.8))
            assert canonical(response["result"]) == canonical(want)

    @pytest.mark.parametrize("policy,hedge", ROUTER_CONFIGS)
    def test_batch_identity(self, routed_clients, direct, queries, policy, hedge):
        client = routed_clients[(policy, hedge)]
        response = client.batch(queries[:3], 0.6)
        wants = [result_to_wire(direct.search(q, 0.6)) for q in queries[:3]]
        for got, want in zip(response["results"], wants):
            assert canonical(got) == canonical(want)

    @given(
        text_id=st.integers(min_value=0, max_value=249),
        prefix=st.integers(min_value=20, max_value=60),
        theta=st.sampled_from([0.5, 0.8]),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_policy_and_hedging_never_change_results(
        self, routed_clients, direct, planted_data, text_id, prefix, theta
    ):
        """The invariant, property-style: for any query, every routing
        configuration returns the same bytes as the direct search."""
        query = np.asarray(planted_data.corpus[text_id])[:prefix]
        want = canonical(result_to_wire(direct.search(query, theta)))
        for client in routed_clients.values():
            response = client.search(query, theta)
            assert canonical(response["result"]) == want


# ----------------------------------------------------------------------
# Deterministic failover, breaker trips, and hedge wins
# ----------------------------------------------------------------------
@pytest.fixture
def small_replicated(tmp_path):
    """Function-scoped 2x2 fleet over a tiny corpus — safe to degrade."""
    rng = np.random.default_rng(11)
    from repro.corpus.corpus import InMemoryCorpus

    texts = [
        rng.integers(0, 40, size=int(rng.integers(30, 60))).astype(np.uint32)
        for _ in range(20)
    ]
    engine = NearDupEngine.from_corpus(InMemoryCorpus(texts), k=8, t=10)
    saved_map = build_shard_fleet(
        engine, tmp_path, num_shards=2, replicas_per_shard=2
    )
    runners = {}
    entries = []
    for entry in saved_map:
        shard_runners = [
            ServiceRunner(
                load_served_engine(str(tmp_path / entry.name)),
                ServiceConfig(port=0, warmup_lists=0, workers=1),
            ).start()
            for _ in range(2)
        ]
        runners[entry.name] = shard_runners
        entries.append(
            ShardEntry(
                name=entry.name,
                first_text=entry.first_text,
                count=entry.count,
                replicas=tuple(Replica(r.host, r.port) for r in shard_runners),
            )
        )
    fleet = {
        "map": ShardMap(entries),
        "runners": runners,
        "query": texts[3][:30].tolist(),
        "engine": engine,
    }
    yield fleet
    for shard_runners in runners.values():
        for runner in shard_runners:
            runner.stop()


def start_router(shard_map, **config_kwargs) -> tuple:
    router = RouterService(shard_map, RouterConfig(port=0, **config_kwargs))
    runner = ServiceRunner(service=router).start()
    return router, runner


class TestFailoverAndBreaker:
    def test_dead_primary_fails_over_without_partial(self, small_replicated):
        """Kill shard0's primary: pick-first keeps choosing it, the
        failover retries on the survivor, and after breaker_failures
        consecutive failures the breaker opens and it stops being
        picked at all — all invisible to the caller."""
        small_replicated["runners"]["shard0"][0].stop()
        router, runner = start_router(
            small_replicated["map"],
            policy="pick-first",
            breaker_failures=2,
        )
        direct2 = ShardedSearcher(
            ShardedIndex.build(
                small_replicated["engine"].corpus,
                small_replicated["engine"].index.family,
                small_replicated["engine"].index.t,
                num_shards=2,
            )
        )
        want = canonical(
            result_to_wire(direct2.search(small_replicated["query"], 0.5))
        )
        try:
            with ServiceClient(runner.host, runner.port) as client:
                for _ in range(4):
                    response = client.search(small_replicated["query"], 0.5)
                    assert response["ok"] is True
                    assert "partial" not in response
                    assert canonical(response["result"]) == want
                stats = client.stats()
        finally:
            runner.stop()
        router_block = stats["router"]
        assert router_block["failovers"] >= 2
        assert router_block["breaker_trips"] >= 1
        dead_endpoint = small_replicated["map"].entries[0].primary.endpoint
        replica_snapshots = {
            snap["endpoint"]: snap
            for snap in stats["routing"]["shard0"]["replicas"]
        }
        assert replica_snapshots[dead_endpoint]["breaker"]["state"] == OPEN
        assert replica_snapshots[dead_endpoint]["failures"] >= 2
        # once open, the breaker keeps the dead replica out of the path:
        # later requests stop failing over entirely
        assert router_block["failovers"] < 4

    def test_both_replicas_down_yields_partial(self, small_replicated):
        for runner in small_replicated["runners"]["shard1"]:
            runner.stop()
        router, runner = start_router(
            small_replicated["map"], policy="round-robin"
        )
        try:
            with ServiceClient(runner.host, runner.port) as client:
                response = client.search(small_replicated["query"], 0.5)
        finally:
            runner.stop()
        assert response["partial"] is True
        assert [f["shard"] for f in response["failed_shards"]] == ["shard1"]


class TestHedging:
    def test_paused_primary_is_rescued_by_a_hedge(self, small_replicated):
        """Hold shard0's primary at the batcher pause gate: the
        sub-request cannot answer, the hedge timer fires, the backup
        replica wins, and the caller sees a normal (non-partial)
        response plus hedge counters in /stats."""
        primary = small_replicated["runners"]["shard0"][0]
        primary.call(primary.service.batcher.pause)
        router, runner = start_router(
            small_replicated["map"],
            policy="pick-first",
            hedge_after_ms=30.0,
        )
        try:
            with ServiceClient(runner.host, runner.port) as client:
                response = client.search(small_replicated["query"], 0.5)
                stats = client.stats()
        finally:
            primary.call(primary.service.batcher.resume)
            runner.stop()
        assert response["ok"] is True
        assert "partial" not in response
        router_block = stats["router"]
        assert router_block["hedges_fired"] >= 1
        assert router_block["hedge_wins"] >= 1
        backup_endpoint = small_replicated["map"].entries[0].replicas[1].endpoint
        replica_snapshots = {
            snap["endpoint"]: snap
            for snap in stats["routing"]["shard0"]["replicas"]
        }
        assert replica_snapshots[backup_endpoint]["hedges"] >= 1
        assert replica_snapshots[backup_endpoint]["hedge_wins"] >= 1

    def test_single_replica_shards_never_hedge(self, small_replicated):
        """A format-1-shaped map (one replica per shard) with hedging
        on must behave exactly like the unhedged router."""
        entries = [
            ShardEntry(
                name=entry.name,
                first_text=entry.first_text,
                count=entry.count,
                replicas=(entry.primary,),
            )
            for entry in small_replicated["map"]
        ]
        router, runner = start_router(
            ShardMap(entries), policy="pick-first", hedge_after_ms=1.0
        )
        try:
            with ServiceClient(runner.host, runner.port) as client:
                response = client.search(small_replicated["query"], 0.5)
                stats = client.stats()
        finally:
            runner.stop()
        assert response["ok"] is True
        assert stats["router"]["hedges_fired"] == 0


# ----------------------------------------------------------------------
# The async client's stale-pooled-connection replay
# ----------------------------------------------------------------------
def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def restartable_server(tmp_path):
    """A tiny engine served on a *fixed* port so a restart lands on the
    same endpoint — exactly the stale-pool scenario."""
    rng = np.random.default_rng(3)
    from repro.corpus.corpus import InMemoryCorpus

    texts = [
        rng.integers(0, 30, size=40).astype(np.uint32) for _ in range(8)
    ]
    engine = NearDupEngine.from_corpus(InMemoryCorpus(texts), k=8, t=10)
    port = free_port()

    def start() -> ServiceRunner:
        return ServiceRunner(
            engine, ServiceConfig(port=port, warmup_lists=0, workers=1)
        ).start()

    runner = start()
    holder = {"runner": runner, "port": port, "start": start}
    yield holder
    holder["runner"].stop()


class TestStalePooledConnections:
    def test_idempotent_request_replays_on_a_fresh_socket(
        self, restartable_server
    ):
        holder = restartable_server

        async def exercise():
            client = AsyncServiceClient("127.0.0.1", holder["port"])
            try:
                assert (await client.health())["ok"] is True
                assert client.pooled_connections == 1
                # restart the server: the pooled socket is now stale
                holder["runner"].stop()
                holder["runner"] = await asyncio.to_thread(holder["start"])
                response = await client.health()
                assert response["ok"] is True
                return client.pool_stats()
            finally:
                await client.close()

        stats = asyncio.run(exercise())
        assert stats["stale_retries"] == 1
        assert stats["opened"] == 2  # original + the replay's fresh socket
        assert stats["discarded"] >= 1

    def test_non_idempotent_requests_never_replay(self, restartable_server):
        holder = restartable_server

        async def exercise():
            client = AsyncServiceClient("127.0.0.1", holder["port"])
            try:
                assert (await client.health())["ok"] is True
                holder["runner"].stop()
                holder["runner"] = await asyncio.to_thread(holder["start"])
                with pytest.raises(
                    (ConnectionResetError, BrokenPipeError, ConnectionAbortedError)
                ):
                    await client.request(
                        "POST",
                        "/search",
                        {"query": [1, 2, 3]},
                        idempotent=False,
                    )
                return client.pool_stats()
            finally:
                await client.close()

        stats = asyncio.run(exercise())
        assert stats["stale_retries"] == 0
