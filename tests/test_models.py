"""Tests for the model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.synthetic import zipf_corpus
from repro.exceptions import InvalidParameterError
from repro.lm.models import MODEL_ZOO, train_model, train_zoo


@pytest.fixture(scope="module")
def corpus():
    return zipf_corpus(60, mean_length=100, vocab_size=256, seed=44)


class TestZoo:
    def test_four_tiers(self):
        assert set(MODEL_ZOO) == {"small", "medium", "large", "xl"}

    def test_unknown_tier(self, corpus):
        with pytest.raises(InvalidParameterError):
            train_model("gigantic", corpus)

    def test_capacity_monotone(self, corpus):
        """Parameter counts must increase along the tier axis (Figure 4's x-axis)."""
        zoo = train_zoo(corpus, vocab_size=256)
        params = [tier.num_parameters for tier in zoo]
        assert params == sorted(params)
        assert params[0] < params[-1]

    def test_metadata(self, corpus):
        tier = train_model("small", corpus, vocab_size=256)
        assert tier.name == "small"
        assert "GPT-2" in tier.paper_analogue

    def test_subset_training(self, corpus):
        zoo = train_zoo(corpus, names=["small", "large"], vocab_size=256)
        assert [tier.name for tier in zoo] == ["small", "large"]

    def test_vocab_inferred(self, corpus):
        tier = train_model("small", corpus)
        assert tier.model.vocab_size == 256
