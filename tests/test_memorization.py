"""Tests for the Section 5 memorization evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.lm.models import train_model
from repro.memorization.evaluator import (
    evaluate_generated_texts,
    evaluate_model,
    sliding_queries,
)
from repro.memorization.report import (
    figure4_series,
    format_series_table,
    table1_rows,
)


class TestSlidingQueries:
    def test_non_overlapping_fixed_width(self):
        text = np.arange(100, dtype=np.uint32)
        queries = sliding_queries(text, 32)
        assert len(queries) == 3
        assert np.array_equal(queries[0], np.arange(0, 32))
        assert np.array_equal(queries[2], np.arange(64, 96))

    def test_trailing_partial_discarded(self):
        queries = sliding_queries(np.arange(33, dtype=np.uint32), 32)
        assert len(queries) == 1

    def test_text_shorter_than_width(self):
        assert sliding_queries(np.arange(10, dtype=np.uint32), 32) == []

    def test_paper_window_count_relation(self):
        """More than twice as many width-64 windows as width-128 windows
        can exist (the Figure 4(d) footnote effect)."""
        text = np.arange(130 + 64, dtype=np.uint32)
        assert len(sliding_queries(text, 64)) == 3
        assert len(sliding_queries(text, 128)) == 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            sliding_queries(np.arange(5), 0)


@pytest.fixture(scope="module")
def memorization_setup():
    """Corpus + index + searcher for evaluation tests."""
    rng = np.random.default_rng(50)
    vocab = 300
    texts = [rng.integers(0, vocab, size=200).astype(np.uint32) for _ in range(40)]
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=16, seed=20)
    index = build_memory_index(corpus, family, t=25, vocab_size=vocab)
    return corpus, NearDuplicateSearcher(index)


class TestEvaluateGeneratedTexts:
    def test_verbatim_copy_is_memorized(self, memorization_setup):
        corpus, searcher = memorization_setup
        generated = [np.array(corpus[0][:96])]  # three width-32 queries, all verbatim
        report = evaluate_generated_texts(generated, searcher, 0.9, 32)
        assert report.num_queries == 3
        assert report.memorized_fraction == 1.0

    def test_random_text_not_memorized(self, memorization_setup):
        _, searcher = memorization_setup
        rng = np.random.default_rng(123)
        generated = [rng.integers(5000, 9000, size=96).astype(np.uint32)]
        report = evaluate_generated_texts(generated, searcher, 0.9, 32)
        assert report.memorized_fraction == 0.0

    def test_examples_recorded(self, memorization_setup):
        corpus, searcher = memorization_setup
        generated = [np.array(corpus[1][:64])]
        report = evaluate_generated_texts(generated, searcher, 0.9, 32)
        examples = report.examples()
        assert examples and examples[0].example is not None

    def test_outcome_metadata(self, memorization_setup):
        corpus, searcher = memorization_setup
        generated = [np.array(corpus[2][:64])]
        report = evaluate_generated_texts(generated, searcher, 0.9, 32)
        outcome = report.outcomes[1]
        assert outcome.generated_text == 0
        assert outcome.window_index == 1
        assert outcome.query.size == 32

    def test_empty_generated_list(self, memorization_setup):
        _, searcher = memorization_setup
        report = evaluate_generated_texts([], searcher, 0.9, 32)
        assert report.num_queries == 0
        assert report.memorized_fraction == 0.0


class TestEvaluateModel:
    def test_end_to_end(self, memorization_setup):
        corpus, searcher = memorization_setup
        tier = train_model("large", corpus)
        report = evaluate_model(
            tier.model,
            searcher,
            theta=0.8,
            num_texts=2,
            text_length=96,
            window_width=32,
            model_name="large",
            seed=1,
        )
        assert report.num_queries == 6
        assert 0.0 <= report.memorized_fraction <= 1.0
        assert report.model_name == "large"

    def test_theta_monotonicity(self, memorization_setup):
        """Lower theta can only increase the memorized fraction (Figure 4)."""
        corpus, searcher = memorization_setup
        tier = train_model("xl", corpus)
        texts = [
            np.asarray(corpus[i][:96]) for i in range(3)
        ]  # verbatim-ish "generations"
        strict = evaluate_generated_texts(texts, searcher, 1.0, 32)
        loose = evaluate_generated_texts(texts, searcher, 0.7, 32)
        assert loose.memorized_fraction >= strict.memorized_fraction


class TestReporting:
    def test_figure4_series(self, memorization_setup):
        corpus, searcher = memorization_setup
        generated = [np.array(corpus[0][:64])]
        reports = [
            evaluate_generated_texts(generated, searcher, theta, 32, model_name="m")
            for theta in (0.8, 1.0)
        ]
        rows = figure4_series(reports)
        assert len(rows) == 2
        assert {row["theta"] for row in rows} == {0.8, 1.0}
        table = format_series_table(rows)
        assert "memorized%" in table and "m" in table

    def test_table1_rows(self, memorization_setup):
        corpus, searcher = memorization_setup
        generated = [np.array(corpus[0][:64])]
        report = evaluate_generated_texts(generated, searcher, 0.9, 32)
        rows = table1_rows(report, corpus, limit=3)
        assert rows
        row = rows[0]
        assert row.match_tokens.size == row.match_end - row.match_start + 1
        rendered = row.render()
        assert "near-duplicate" in rendered

    def test_table1_render_with_tokenizer(self, memorization_setup):
        corpus, searcher = memorization_setup

        class FakeTokenizer:
            def decode(self, ids):
                return "<" + ",".join(str(int(i)) for i in ids) + ">"

        generated = [np.array(corpus[0][:64])]
        report = evaluate_generated_texts(generated, searcher, 0.9, 32)
        rows = table1_rows(report, corpus)
        assert "<" in rows[0].render(FakeTokenizer())
