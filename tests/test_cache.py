"""Tests for the LRU inverted-list cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.exceptions import InvalidParameterError
from repro.index.cache import CachedIndexReader, CacheStats
from repro.index.inverted import IOStats, POSTING_BYTES, POSTING_DTYPE


class FakeReader:
    """Deterministic reader: list (func, h) has ``h`` postings."""

    def __init__(self, k: int = 4):
        self.family = HashFamily(k=k, seed=0)
        self.t = 10
        self.io_stats = IOStats()

    def list_length(self, func: int, minhash: int) -> int:
        return int(minhash)

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        postings = np.zeros(int(minhash), dtype=POSTING_DTYPE)
        postings["text"] = np.arange(int(minhash))
        self.io_stats.add(int(minhash) * POSTING_BYTES)
        return postings

    def load_text_windows(self, func: int, minhash: int, text_id: int) -> np.ndarray:
        postings = self.load_list(func, minhash)
        return postings[postings["text"] == text_id]


@pytest.fixture
def cached(planted_index):
    planted_index.io_stats.reset()
    return CachedIndexReader(planted_index, capacity_bytes=1 << 20)


def first_list(index):
    for func in range(index.family.k):
        for minhash, postings in index.iter_lists(func):
            if postings.size:
                return func, minhash, postings
    raise AssertionError("index is empty")


class TestBasics:
    def test_capacity_validated(self, planted_index):
        with pytest.raises(InvalidParameterError):
            CachedIndexReader(planted_index, capacity_bytes=0)

    def test_passthrough_metadata(self, cached, planted_index):
        assert cached.family == planted_index.family
        assert cached.t == planted_index.t
        assert cached.num_postings == planted_index.num_postings
        assert cached.nbytes == planted_index.nbytes

    def test_list_contents_identical(self, cached, planted_index):
        func, minhash, postings = first_list(planted_index)
        assert np.array_equal(cached.load_list(func, minhash), postings)

    def test_list_length_passthrough(self, cached, planted_index):
        func, minhash, postings = first_list(planted_index)
        assert cached.list_length(func, minhash) == postings.size
        cached.load_list(func, minhash)
        assert cached.list_length(func, minhash) == postings.size


class TestCaching:
    def test_second_read_hits(self, cached):
        func, minhash, _ = first_list(cached.inner)
        cached.load_list(func, minhash)
        assert cached.misses == 1 and cached.hits == 0
        cached.load_list(func, minhash)
        assert cached.hits == 1

    def test_hit_costs_no_io(self, cached):
        func, minhash, postings = first_list(cached.inner)
        cached.load_list(func, minhash)
        before = cached.io_stats.bytes_read
        cached.load_list(func, minhash)
        assert cached.io_stats.bytes_read == before

    def test_point_read_served_from_cached_list(self, cached):
        func, minhash, postings = first_list(cached.inner)
        cached.load_list(func, minhash)
        text_id = int(postings["text"][0])
        before = cached.io_stats.bytes_read
        windows = cached.load_text_windows(func, minhash, text_id)
        assert cached.io_stats.bytes_read == before
        expected = postings[postings["text"] == text_id]
        assert np.array_equal(windows, expected)

    def test_point_read_uncached_delegates(self, cached):
        func, minhash, postings = first_list(cached.inner)
        text_id = int(postings["text"][0])
        windows = cached.load_text_windows(func, minhash, text_id)
        expected = postings[postings["text"] == text_id]
        assert np.array_equal(windows, expected)

    def test_eviction_respects_capacity(self, planted_index):
        func, minhash, postings = first_list(planted_index)
        tiny = CachedIndexReader(
            planted_index, capacity_bytes=max(POSTING_BYTES * 8, 64)
        )
        for mh, lst in planted_index.iter_lists(func):
            tiny.load_list(func, mh)
            assert tiny.cached_bytes <= tiny._capacity

    def test_oversized_list_bypasses(self, planted_index):
        func, minhash, postings = first_list(planted_index)
        tiny = CachedIndexReader(planted_index, capacity_bytes=1)
        tiny.load_list(func, minhash)
        assert tiny.cached_bytes == 0

    def test_clear(self, cached):
        func, minhash, _ = first_list(cached.inner)
        cached.load_list(func, minhash)
        cached.clear()
        assert cached.cached_bytes == 0
        cached.load_list(func, minhash)
        assert cached.misses == 2

    def test_hit_rate(self, cached):
        func, minhash, _ = first_list(cached.inner)
        assert cached.hit_rate == 0.0
        cached.load_list(func, minhash)
        cached.load_list(func, minhash)
        assert cached.hit_rate == pytest.approx(0.5)


class TestCountersAndStats:
    """ISSUE 1 satellite: hits/misses/evictions counters + stats()."""

    def test_eviction_order_is_lru(self):
        # Capacity for exactly two 4-posting lists.
        cache = CachedIndexReader(FakeReader(), capacity_bytes=8 * POSTING_BYTES)
        cache.load_list(0, 4)  # A
        cache.load_list(1, 4)  # B
        cache.load_list(0, 4)  # touch A -> B is now least recently used
        cache.load_list(2, 4)  # C evicts B, not A
        assert cache.evictions == 1
        before = cache.io_stats.bytes_read
        cache.load_list(0, 4)  # A still cached
        assert cache.io_stats.bytes_read == before
        cache.load_list(1, 4)  # B was evicted -> re-read
        assert cache.io_stats.bytes_read > before

    def test_eviction_counter_counts_every_victim(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=8 * POSTING_BYTES)
        cache.load_list(0, 4)
        cache.load_list(1, 4)
        cache.load_list(2, 8)  # needs the whole budget: evicts both
        assert cache.evictions == 2

    def test_cache_hit_reports_zero_io_bytes(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=1 << 20)
        cache.load_list(0, 16)
        before = cache.io_stats.bytes_read
        cache.load_list(0, 16)
        cache.load_text_windows(0, 16, 3)
        assert cache.io_stats.bytes_read == before

    def test_stats_snapshot(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=1 << 20)
        cache.load_list(0, 4)
        cache.load_list(0, 4)
        snap = cache.stats()
        assert isinstance(snap, CacheStats)
        assert snap.hits == 1 and snap.misses == 1 and snap.evictions == 0
        assert snap.cached_bytes == 4 * POSTING_BYTES
        assert snap.capacity_bytes == 1 << 20
        assert snap.hit_rate == pytest.approx(0.5)
        # Snapshots are immutable and decoupled from later activity.
        cache.load_list(1, 4)
        assert snap.misses == 1

    def test_stats_count_lists(self):
        """ISSUE 3 satellite: stats() reports cached and pinned lists."""
        cache = CachedIndexReader(FakeReader(), capacity_bytes=1 << 20)
        cache.load_list(0, 4)
        cache.load_list(1, 8)
        cache.pin(2, 4)
        snap = cache.stats()
        assert snap.cached_lists == 3
        assert snap.pinned_lists == 1
        assert snap.pinned_bytes == 4 * POSTING_BYTES
        assert snap.cached_bytes == 16 * POSTING_BYTES

    def test_stats_to_dict_is_json_ready(self):
        import json

        cache = CachedIndexReader(FakeReader(), capacity_bytes=1 << 20)
        cache.load_list(0, 4)
        cache.load_list(0, 4)
        payload = cache.stats().to_dict()
        assert payload["hits"] == 1 and payload["misses"] == 1
        assert payload["hit_rate"] == pytest.approx(0.5)
        assert payload["cached_lists"] == 1 and payload["pinned_lists"] == 0
        json.dumps(payload)


class TestPinning:
    """ISSUE 1 tentpole support: batch-pinned lists never evict."""

    def test_pinned_list_survives_pressure(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=8 * POSTING_BYTES)
        assert cache.pin(0, 4)
        cache.load_list(1, 4)
        cache.load_list(2, 4)  # pressure: must evict (1, 4), not the pin
        before = cache.io_stats.bytes_read
        cache.load_list(0, 4)
        assert cache.io_stats.bytes_read == before
        assert cache.pinned_bytes == 4 * POSTING_BYTES

    def test_unpin_all_restores_lru(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=8 * POSTING_BYTES)
        cache.pin(0, 4)
        cache.unpin_all()
        assert cache.pinned_bytes == 0
        cache.load_list(1, 4)
        cache.load_list(2, 8)  # now the old pin may evict
        assert cache.evictions == 2

    def test_oversized_pin_refused(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=POSTING_BYTES)
        assert not cache.pin(0, 100)
        assert cache.pinned_bytes == 0

    def test_pin_is_idempotent(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=1 << 20)
        assert cache.pin(0, 4)
        misses = cache.misses
        assert cache.pin(0, 4)
        assert cache.misses == misses

    def test_all_pinned_blocks_admission_not_reads(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=8 * POSTING_BYTES)
        cache.pin(0, 4)
        cache.pin(1, 4)
        postings = cache.load_list(2, 4)  # nothing evictable: uncached read
        assert postings.size == 4
        assert cache.cached_bytes == 8 * POSTING_BYTES

    def test_clear_drops_pins(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=1 << 20)
        cache.pin(0, 4)
        cache.clear()
        assert cache.pinned_bytes == 0 and cache.cached_bytes == 0


class TestThreadSafety:
    """ISSUE 3 satellite: the cache is shared across server workers."""

    def test_concurrent_mixed_workload_stays_consistent(self):
        # Small capacity on purpose: constant admission/eviction churn
        # maximises the chance of torn bookkeeping without the lock.
        cache = CachedIndexReader(FakeReader(), capacity_bytes=24 * POSTING_BYTES)
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                barrier.wait()
                for _ in range(400):
                    op = int(rng.integers(0, 10))
                    minhash = int(rng.integers(1, 12))
                    func = int(rng.integers(0, 4))
                    if op < 6:
                        postings = cache.load_list(func, minhash)
                        assert postings.size == minhash
                        assert postings["text"][-1] == minhash - 1
                    elif op < 8:
                        windows = cache.load_text_windows(func, minhash, 0)
                        assert windows.size == 1
                    elif op == 8:
                        cache.pin(func, minhash)
                    else:
                        cache.unpin_all()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors
        cache.unpin_all()
        snap = cache.stats()
        assert snap.cached_bytes <= snap.capacity_bytes
        assert snap.pinned_bytes == 0 and snap.pinned_lists == 0
        # Internal bookkeeping survived the churn: the byte counter
        # matches the lists actually resident.
        resident = sum(
            postings.nbytes for postings in cache._lists.values()
        )
        assert snap.cached_bytes == resident
        assert snap.hits + snap.misses > 0

    def test_concurrent_repeat_reads_all_identical(self):
        cache = CachedIndexReader(FakeReader(), capacity_bytes=1 << 20)
        expected = cache.load_list(0, 8).copy()
        results: list[np.ndarray] = []
        lock = threading.Lock()

        def worker() -> None:
            for _ in range(50):
                postings = cache.load_list(0, 8)
                with lock:
                    results.append(postings)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert len(results) == 300
        for postings in results:
            assert np.array_equal(postings, expected)


class TestSearchThroughCache:
    def test_results_identical(self, planted_data, planted_index):
        query = np.asarray(planted_data.corpus[0])[:40]
        direct = NearDuplicateSearcher(planted_index).search(query, 0.8)
        cached_reader = CachedIndexReader(planted_index)
        through_cache = NearDuplicateSearcher(cached_reader).search(query, 0.8)
        as_set = lambda res: {
            (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
            for m in res.matches
            for r in m.rectangles
        }
        assert as_set(direct) == as_set(through_cache)

    def test_repeat_queries_hit(self, planted_data, planted_index):
        cached_reader = CachedIndexReader(planted_index)
        searcher = NearDuplicateSearcher(cached_reader)
        query = np.asarray(planted_data.corpus[0])[:40]
        searcher.search(query, 0.8)
        misses_after_first = cached_reader.misses
        lists_after_first = cached_reader.stats().cached_lists
        hits_after_first = cached_reader.hits
        searcher.search(query, 0.8)
        # The repeat query loads no new lists; the only permitted new
        # misses are point-read fallthroughs into lists the cache never
        # admitted (counted since the accounting fix), which repeat 1:1.
        assert cached_reader.stats().cached_lists == lists_after_first
        assert cached_reader.misses - misses_after_first <= misses_after_first
        assert cached_reader.hits > hits_after_first
