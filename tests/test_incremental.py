"""Tests for incremental index maintenance (main + delta)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.incremental import IncrementalIndex


VOCAB = 200


@pytest.fixture
def setup(rng):
    initial = [rng.integers(0, VOCAB, size=60).astype(np.uint32) for _ in range(6)]
    extra = [rng.integers(0, VOCAB, size=60).astype(np.uint32) for _ in range(4)]
    family = HashFamily(k=8, seed=4)
    main = build_memory_index(InMemoryCorpus(initial), family, t=10, vocab_size=VOCAB)
    return initial, extra, family, main


def indexes_answer_equally(a, b, corpus_texts, theta=0.7):
    query = np.asarray(corpus_texts[0])[:30]
    res_a = NearDuplicateSearcher(a).search(query, theta)
    res_b = NearDuplicateSearcher(b).search(query, theta)
    as_set = lambda res: {
        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
        for m in res.matches
        for r in m.rectangles
    }
    return as_set(res_a) == as_set(res_b)


class TestAppend:
    def test_ids_continue_from_main(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        ids = inc.append_texts(extra)
        assert ids == [6, 7, 8, 9]

    def test_union_equals_full_rebuild(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        inc.append_texts(extra)
        rebuilt = build_memory_index(
            InMemoryCorpus(initial + extra), family, t=10, vocab_size=VOCAB
        )
        assert inc.num_postings == rebuilt.num_postings
        assert indexes_answer_equally(inc, rebuilt, initial + extra)

    def test_new_text_searchable(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        new_id = inc.append_text(extra[0])
        result = NearDuplicateSearcher(inc).search(extra[0][:30], 1.0)
        assert any(m.text_id == new_id for m in result.matches)

    def test_vocab_overflow_rejected(self, setup):
        _, _, _, main = setup
        inc = IncrementalIndex(main, VOCAB)
        with pytest.raises(InvalidParameterError):
            inc.append_text(np.array([VOCAB + 5] * 20, dtype=np.uint32))

    def test_lists_stay_sorted_by_text(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        inc.append_texts(extra)
        for func in range(family.k):
            for minhash in np.unique(
                np.concatenate(
                    [
                        np.array([mh for mh, _ in main.iter_lists(func)], dtype=np.uint64)
                    ]
                )
            )[:5]:
                postings = inc.load_list(func, int(minhash))
                texts = postings["text"].astype(np.int64)
                assert np.all(np.diff(texts) >= 0)


class TestNextTextIdInference:
    def test_uses_recorded_num_texts(self, setup):
        initial, extra, family, main = setup
        assert main.num_texts == len(initial)
        inc = IncrementalIndex(main, VOCAB)
        assert inc._next_text_id == len(initial)

    def test_recorded_beats_posting_scan(self, setup):
        # num_texts counts *all* texts, including trailing ones too
        # short to own postings — a posting scan would miss them.
        initial, extra, family, main = setup
        main.num_texts = len(initial) + 3
        inc = IncrementalIndex(main, VOCAB)
        assert inc._next_text_id == len(initial) + 3

    def test_legacy_fallback_scans_postings(self, setup):
        initial, extra, family, main = setup
        main.num_texts = None
        inc = IncrementalIndex(main, VOCAB)
        assert inc._next_text_id == len(initial)


class TestConsolidation:
    def test_threshold_triggers_merge(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB, merge_threshold=1)
        inc.append_texts(extra[:2])
        assert inc.merges >= 1
        assert inc.delta_postings == 0

    def test_manual_consolidate_preserves_answers(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        inc.append_texts(extra)
        rebuilt = build_memory_index(
            InMemoryCorpus(initial + extra), family, t=10, vocab_size=VOCAB
        )
        inc.consolidate()
        assert inc.delta_postings == 0
        assert inc.num_postings == rebuilt.num_postings
        assert indexes_answer_equally(inc, rebuilt, initial + extra)

    def test_consolidate_empty_delta_noop(self, setup):
        _, _, _, main = setup
        inc = IncrementalIndex(main, VOCAB)
        inc.consolidate()
        assert inc.merges == 0

    def test_merge_threshold_validated(self, setup):
        _, _, _, main = setup
        with pytest.raises(InvalidParameterError):
            IncrementalIndex(main, VOCAB, merge_threshold=0)


class TestReaderProtocol:
    def test_list_length_is_union(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        inc.append_texts(extra)
        rebuilt = build_memory_index(
            InMemoryCorpus(initial + extra), family, t=10, vocab_size=VOCAB
        )
        for func in range(family.k):
            for minhash, postings in rebuilt.iter_lists(func):
                assert inc.list_length(func, int(minhash)) == postings.size

    def test_load_text_windows_from_both_sides(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        new_ids = inc.append_texts(extra)
        rebuilt = build_memory_index(
            InMemoryCorpus(initial + extra), family, t=10, vocab_size=VOCAB
        )
        for func in range(family.k):
            for minhash, postings in rebuilt.iter_lists(func):
                for probe in {0, new_ids[0]}:
                    got = inc.load_text_windows(func, int(minhash), probe)
                    expected = postings[postings["text"] == probe]
                    assert np.array_equal(
                        np.sort(got, order=["center"]),
                        np.sort(expected, order=["center"]),
                    )
                break  # one list per function keeps the test quick

    def test_list_lengths_concatenated(self, setup):
        initial, extra, family, main = setup
        inc = IncrementalIndex(main, VOCAB)
        inc.append_texts(extra)
        total = sum(int(inc.list_lengths(func).sum()) for func in range(family.k))
        assert total == inc.num_postings
