"""Tests for the prefix-filter cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search import NearDuplicateSearcher
from repro.exceptions import InvalidParameterError
from repro.index.costmodel import (
    CostModelSearcher,
    estimate_cost,
    plan_prefix,
)


class TestEstimateCost:
    def test_zero_long_lists(self):
        lengths = np.array([100, 50, 10, 5])
        estimate = estimate_cost(lengths, 0, beta=3)
        assert estimate.num_long == 0
        assert estimate.lazy_bytes == 0
        assert estimate.eager_bytes == 165 * 16

    def test_more_long_lists_less_eager_io(self):
        lengths = np.array([10_000, 100, 50, 10])
        none_long = estimate_cost(lengths, 0, beta=3)
        one_long = estimate_cost(lengths, 1, beta=3)
        assert one_long.eager_bytes < none_long.eager_bytes

    def test_skewed_lists_favor_filtering(self):
        """With one huge list the model must prefer to filter it."""
        lengths = np.array([1_000_000, 100, 80, 60, 40, 20, 10, 5])
        none_long = estimate_cost(lengths, 0, beta=6)
        one_long = estimate_cost(lengths, 1, beta=6)
        assert one_long.total < none_long.total

    def test_uniform_lists_favor_no_filtering(self):
        """With uniform short lists, lazy point reads are pure overhead."""
        lengths = np.array([50] * 8)
        none_long = estimate_cost(lengths, 0, beta=6)
        two_long = estimate_cost(lengths, 2, beta=6)
        assert none_long.total <= two_long.total

    def test_num_long_validated(self):
        lengths = np.array([10, 10])
        with pytest.raises(InvalidParameterError):
            estimate_cost(lengths, -1, beta=2)
        with pytest.raises(InvalidParameterError):
            estimate_cost(lengths, 2, beta=2)  # must stay < beta


class TestPlanPrefix:
    def test_plan_picks_longest_lists(self):
        lengths = np.array([5, 1_000_000, 10, 500_000, 20, 30, 40, 50])
        plan = plan_prefix(lengths, k=8, theta=0.75)  # beta = 6
        for func in plan.long_funcs:
            assert lengths[func] >= 500_000

    def test_plan_respects_beta_cap(self):
        lengths = np.array([1_000] * 8)
        plan = plan_prefix(lengths, k=8, theta=0.25)  # beta = 2 -> at most 1 long
        assert len(plan.long_funcs) <= 1

    def test_length_count_validated(self):
        with pytest.raises(InvalidParameterError):
            plan_prefix(np.array([1, 2]), k=4, theta=0.5)

    def test_no_filtering_when_uniform(self):
        lengths = np.array([40] * 16)
        plan = plan_prefix(lengths, k=16, theta=0.8)
        assert plan.long_funcs == ()


class TestCostModelSearcher:
    def test_same_answers_as_fixed_cutoff(self, planted_data, planted_index):
        query = np.asarray(planted_data.corpus[0])[:40]
        reference = NearDuplicateSearcher(planted_index, long_list_cutoff=0).search(
            query, 0.8
        )
        adaptive = CostModelSearcher(planted_index).search(query, 0.8)
        as_set = lambda res: {
            (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
            for m in res.matches
            for r in m.rectangles
        }
        assert as_set(adaptive) == as_set(reference)

    def test_multiple_thetas(self, planted_data, planted_index):
        searcher = CostModelSearcher(planted_index)
        query = np.asarray(planted_data.corpus[1])[:40]
        for theta in (0.6, 0.9, 1.0):
            result = searcher.search(query, theta)
            assert result.theta == theta
