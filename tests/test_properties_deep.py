"""Deep hypothesis properties: whole-pipeline invariants.

These are slower, wider-net property tests than
``tests/test_properties.py`` — each example exercises multiple layers
(build + query, or spill + aggregate) and asserts exact equivalence.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import search_definition2
from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.tokenizer.bpe import BPETokenizer

# Small-but-varied corpora: 2-5 texts, lengths 1-25, vocab 12 (heavy
# duplication exercises tie-breaking everywhere).
corpora = st.lists(
    st.lists(st.integers(0, 11), min_size=1, max_size=25),
    min_size=2,
    max_size=5,
).map(lambda texts: InMemoryCorpus([np.asarray(t, dtype=np.uint32) for t in texts]))

queries = st.lists(st.integers(0, 11), min_size=1, max_size=12).map(
    lambda xs: np.asarray(xs, dtype=np.uint32)
)


class TestEndToEndOracle:
    @given(
        corpus=corpora,
        query=queries,
        theta=st.sampled_from([0.3, 0.6, 1.0]),
        t=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_search_equals_definition2(self, corpus, query, theta, t, seed):
        """Theorem 2 as a property: index+search == brute-force oracle,
        for arbitrary corpora, thresholds and hash draws."""
        family = HashFamily(k=5, seed=seed)
        index = build_memory_index(corpus, family, t=t, vocab_size=12)
        result = NearDuplicateSearcher(index).search(query, theta)
        got = {
            (m.text_id, i, j)
            for m in result.matches
            for rect in m.rectangles
            for (i, j) in rect.iter_spans(t)
        }
        expected = {
            (s.text_id, s.start, s.end)
            for s in search_definition2(corpus, query, theta, t, family)
        }
        assert got == expected

    @given(
        corpus=corpora,
        query=queries,
        cutoff=st.sampled_from([0, 1, 3, None]),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_prefix_filter_invariance(self, corpus, query, cutoff, seed):
        """Any prefix cutoff returns the identical answer set."""
        family = HashFamily(k=6, seed=seed)
        index = build_memory_index(corpus, family, t=3, vocab_size=12)
        baseline = NearDuplicateSearcher(index, long_list_cutoff=0).search(query, 0.5)
        filtered = NearDuplicateSearcher(index, long_list_cutoff=cutoff).search(
            query, 0.5
        )
        as_set = lambda res: {
            (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
            for m in res.matches
            for r in m.rectangles
        }
        assert as_set(baseline) == as_set(filtered)


class TestMultiThetaProperties:
    @given(
        corpus=corpora,
        query=queries,
        seed=st.integers(0, 30),
    )
    @settings(max_examples=30, deadline=None)
    def test_search_thetas_equals_individual(self, corpus, query, seed):
        """The single-pass multi-theta search is per-theta exact."""
        family = HashFamily(k=6, seed=seed)
        index = build_memory_index(corpus, family, t=3, vocab_size=12)
        searcher = NearDuplicateSearcher(index)
        thetas = [0.3, 0.6, 0.9, 1.0]
        combined = searcher.search_thetas(query, thetas)
        for theta in thetas:
            single = searcher.search(query, theta)
            as_set = lambda res: {
                (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                for m in res.matches
                for r in m.rectangles
            }
            assert as_set(combined[theta]) == as_set(single)


class TestStorageProperties:
    @given(corpus=corpora, seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_disk_roundtrip_preserves_lists(self, corpus, seed, tmp_path_factory):
        from repro.index.storage import DiskInvertedIndex, write_index

        family = HashFamily(k=3, seed=seed)
        memory = build_memory_index(corpus, family, t=2, vocab_size=12)
        directory = tmp_path_factory.mktemp("prop")
        write_index(memory, directory, zonemap_step=2, zonemap_min_list=3)
        disk = DiskInvertedIndex(directory)
        for func in range(family.k):
            for minhash, postings in memory.iter_lists(func):
                assert np.array_equal(disk.load_list(func, minhash), postings)

    @given(
        corpus=corpora,
        batch=st.integers(1, 4),
        partitions=st.integers(2, 5),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=15, deadline=None)
    def test_external_build_equivalence(
        self, corpus, batch, partitions, seed, tmp_path_factory
    ):
        from repro.index.external import ExternalBuildConfig, build_external_index
        from repro.index.storage import DiskInvertedIndex

        family = HashFamily(k=3, seed=seed)
        reference = build_memory_index(corpus, family, t=2, vocab_size=12)
        directory = tmp_path_factory.mktemp("ext")
        build_external_index(
            corpus,
            family,
            2,
            directory,
            vocab_size=12,
            config=ExternalBuildConfig(
                batch_texts=batch,
                num_partitions=partitions,
                memory_budget_bytes=256,  # force recursive partitioning paths
            ),
        )
        external = DiskInvertedIndex(directory).to_memory()
        assert external.num_postings == reference.num_postings
        for func in range(family.k):
            lists_a = dict(reference.iter_lists(func))
            lists_b = dict(external.iter_lists(func))
            assert lists_a.keys() == lists_b.keys()
            for key in lists_a:
                assert np.array_equal(lists_a[key], lists_b[key])


class TestTokenizerProperties:
    printable_texts = st.text(
        alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
        min_size=0,
        max_size=120,
    )

    @given(text=printable_texts)
    @settings(max_examples=80, deadline=None)
    def test_untrained_roundtrip(self, text):
        tokenizer = BPETokenizer()
        assert tokenizer.decode(tokenizer.encode(text)) == text

    @given(text=printable_texts, budget=st.integers(260, 330))
    @settings(max_examples=25, deadline=None)
    def test_trained_roundtrip(self, text, budget):
        corpus = [text, "common filler words appear here"]
        tokenizer = BPETokenizer.train(corpus, vocab_size=budget)
        assert tokenizer.decode(tokenizer.encode(text)) == text

    @given(text=printable_texts)
    @settings(max_examples=25, deadline=None)
    def test_save_load_identity(self, text, tmp_path_factory):
        tokenizer = BPETokenizer.train([text, "abc abc abc"], vocab_size=280)
        path = tmp_path_factory.mktemp("tok") / "model.json"
        tokenizer.save(path)
        loaded = BPETokenizer.load(path)
        assert loaded.encode(text).tolist() == tokenizer.encode(text).tolist()
