"""Systematic boundary-condition coverage across the whole engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import search_definition2
from repro.core.compact_windows import (
    generate_compact_windows,
    generate_compact_windows_stack,
)
from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index


def result_spans(result):
    return {
        (m.text_id, i, j)
        for m in result.matches
        for rect in m.rectangles
        for (i, j) in rect.iter_spans(result.t)
    }


def oracle_spans(corpus, query, theta, t, family):
    return {
        (s.text_id, s.start, s.end)
        for s in search_definition2(corpus, query, theta, t, family)
    }


class TestDegenerateCorpora:
    def test_single_token_texts(self):
        corpus = InMemoryCorpus([[3], [3], [7]])
        family = HashFamily(k=4, seed=1)
        index = build_memory_index(corpus, family, t=1, vocab_size=8)
        result = NearDuplicateSearcher(index).search(np.array([3]), 1.0)
        assert {m.text_id for m in result.matches} == {0, 1}

    def test_vocabulary_of_one(self):
        corpus = InMemoryCorpus([[0] * 20, [0] * 15])
        family = HashFamily(k=4, seed=2)
        index = build_memory_index(corpus, family, t=5, vocab_size=1)
        query = np.zeros(10, dtype=np.uint32)
        got = result_spans(NearDuplicateSearcher(index).search(query, 1.0))
        expected = oracle_spans(corpus, query, 1.0, 5, family)
        assert got == expected
        assert got  # every span matches: same single token everywhere

    def test_text_exactly_length_t(self):
        corpus = InMemoryCorpus([[1, 2, 3, 4, 5]])
        family = HashFamily(k=4, seed=3)
        index = build_memory_index(corpus, family, t=5, vocab_size=8)
        assert index.num_postings == 4  # exactly one window per function
        result = NearDuplicateSearcher(index).search(
            np.array([1, 2, 3, 4, 5], dtype=np.uint32), 1.0
        )
        assert (0, 0, 4) in result_spans(result)

    def test_text_one_shorter_than_t(self):
        corpus = InMemoryCorpus([[1, 2, 3, 4]])
        family = HashFamily(k=4, seed=3)
        index = build_memory_index(corpus, family, t=5, vocab_size=8)
        assert index.num_postings == 0

    def test_large_token_ids(self):
        top = 2**31
        corpus = InMemoryCorpus([np.arange(top - 30, top, dtype=np.uint32)])
        family = HashFamily(k=4, seed=4)
        index = build_memory_index(corpus, family, t=10, vocab_size=top)
        query = np.arange(top - 30, top - 10, dtype=np.uint32)
        result = NearDuplicateSearcher(index).search(query, 1.0)
        assert result.num_texts == 1


class TestDegenerateParameters:
    def test_k_equals_one(self):
        rng = np.random.default_rng(0)
        corpus = InMemoryCorpus(
            [rng.integers(0, 30, size=40).astype(np.uint32) for _ in range(5)]
        )
        family = HashFamily(k=1, seed=5)
        index = build_memory_index(corpus, family, t=5, vocab_size=30)
        query = rng.integers(0, 30, size=15).astype(np.uint32)
        for theta in (0.5, 1.0):
            got = result_spans(NearDuplicateSearcher(index).search(query, theta))
            assert got == oracle_spans(corpus, query, theta, 5, family)

    def test_t_equals_one(self):
        rng = np.random.default_rng(1)
        corpus = InMemoryCorpus(
            [rng.integers(0, 10, size=20).astype(np.uint32) for _ in range(3)]
        )
        family = HashFamily(k=4, seed=6)
        index = build_memory_index(corpus, family, t=1, vocab_size=10)
        query = rng.integers(0, 10, size=6).astype(np.uint32)
        got = result_spans(NearDuplicateSearcher(index).search(query, 1.0))
        assert got == oracle_spans(corpus, query, 1.0, 1, family)

    def test_tiny_theta(self):
        """theta just above zero -> beta = 1 -> one collision suffices."""
        rng = np.random.default_rng(2)
        corpus = InMemoryCorpus(
            [rng.integers(0, 40, size=30).astype(np.uint32) for _ in range(4)]
        )
        family = HashFamily(k=8, seed=7)
        index = build_memory_index(corpus, family, t=4, vocab_size=40)
        query = rng.integers(0, 40, size=10).astype(np.uint32)
        got = result_spans(NearDuplicateSearcher(index).search(query, 0.01))
        assert got == oracle_spans(corpus, query, 0.01, 4, family)

    def test_query_shorter_than_t(self):
        """Legal: the query can be short; only *results* must be >= t."""
        rng = np.random.default_rng(3)
        corpus = InMemoryCorpus(
            [rng.integers(0, 20, size=40).astype(np.uint32) for _ in range(3)]
        )
        family = HashFamily(k=6, seed=8)
        t = 10
        index = build_memory_index(corpus, family, t=t, vocab_size=20)
        query = rng.integers(0, 20, size=4).astype(np.uint32)  # shorter than t
        result = NearDuplicateSearcher(index).search(query, 0.3)
        got = result_spans(result)
        assert got == oracle_spans(corpus, query, 0.3, t, family)
        for _, i, j in got:
            assert j - i + 1 >= t

    def test_single_token_query(self):
        rng = np.random.default_rng(4)
        corpus = InMemoryCorpus(
            [rng.integers(0, 15, size=25).astype(np.uint32) for _ in range(3)]
        )
        family = HashFamily(k=4, seed=9)
        index = build_memory_index(corpus, family, t=3, vocab_size=15)
        query = np.array([7], dtype=np.uint32)
        got = result_spans(NearDuplicateSearcher(index).search(query, 0.25))
        assert got == oracle_spans(corpus, query, 0.25, 3, family)


class TestAdversarialHashPatterns:
    def test_sorted_token_text(self):
        """Monotone token ids produce a maximally skewed recursion tree."""
        corpus = InMemoryCorpus([np.arange(200, dtype=np.uint32)])
        family = HashFamily(k=4, seed=10)
        index = build_memory_index(corpus, family, t=50, vocab_size=200)
        query = np.arange(0, 60, dtype=np.uint32)
        got = result_spans(NearDuplicateSearcher(index).search(query, 0.8))
        assert got == oracle_spans(corpus, query, 0.8, 50, family)

    def test_alternating_two_tokens(self):
        corpus = InMemoryCorpus([np.tile([0, 1], 30).astype(np.uint32)])
        family = HashFamily(k=6, seed=11)
        index = build_memory_index(corpus, family, t=8, vocab_size=2)
        query = np.tile([0, 1], 10).astype(np.uint32)
        got = result_spans(NearDuplicateSearcher(index).search(query, 1.0))
        assert got == oracle_spans(corpus, query, 1.0, 8, family)

    def test_palindrome_text(self):
        half = np.arange(30, dtype=np.uint32)
        text = np.concatenate([half, half[::-1]])
        corpus = InMemoryCorpus([text])
        family = HashFamily(k=4, seed=12)
        index = build_memory_index(corpus, family, t=10, vocab_size=30)
        query = text[10:40]
        got = result_spans(NearDuplicateSearcher(index).search(query, 0.9))
        assert got == oracle_spans(corpus, query, 0.9, 10, family)


class TestWindowGeneratorBoundaries:
    def test_t_equals_text_length(self):
        hashes = np.array([5, 2, 8, 1, 9], dtype=np.uint32)
        windows = generate_compact_windows(hashes, 5)
        assert len(windows) == 1
        assert (windows[0].left, windows[0].right) == (0, 4)

    def test_t_larger_than_text(self):
        hashes = np.array([5, 2, 8], dtype=np.uint32)
        assert generate_compact_windows(hashes, 4) == []
        assert generate_compact_windows_stack(hashes, 4).size == 0

    def test_two_equal_minima_at_ends(self):
        hashes = np.array([0, 5, 5, 5, 0], dtype=np.uint32)
        windows = {
            (w.left, w.center, w.right) for w in generate_compact_windows(hashes, 1)
        }
        stack = {
            (int(r["left"]), int(r["center"]), int(r["right"]))
            for r in generate_compact_windows_stack(hashes, 1)
        }
        assert windows == stack
        assert (0, 0, 4) in windows  # leftmost minimum is the root
