"""Tests for the universal hash family and k-mins sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HASH_SPACE, HashFamily
from repro.core.verify import distinct_jaccard, estimate_jaccard
from repro.exceptions import InvalidParameterError


class TestConstruction:
    def test_k_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            HashFamily(k=0)

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            HashFamily(k=-3)

    def test_same_seed_same_family(self):
        assert HashFamily(k=4, seed=5) == HashFamily(k=4, seed=5)

    def test_different_seed_different_family(self):
        assert HashFamily(k=4, seed=5) != HashFamily(k=4, seed=6)

    def test_eq_against_other_type(self):
        assert HashFamily(k=2).__eq__(42) is NotImplemented


class TestHashing:
    def test_scalar_matches_vector(self, family: HashFamily):
        tokens = np.array([0, 1, 17, 4095], dtype=np.uint32)
        vector = family.hash_tokens(tokens, func=3)
        for token, expected in zip(tokens, vector):
            assert family.hash_token(int(token), func=3) == int(expected)

    def test_output_range(self, family: HashFamily):
        values = family.hash_tokens(np.arange(1000, dtype=np.uint32), func=0)
        assert values.dtype == np.uint32
        assert int(values.max()) < HASH_SPACE

    def test_deterministic(self, family: HashFamily):
        tokens = np.arange(100, dtype=np.uint32)
        assert np.array_equal(
            family.hash_tokens(tokens, 2), family.hash_tokens(tokens, 2)
        )

    def test_functions_differ(self, family: HashFamily):
        tokens = np.arange(200, dtype=np.uint32)
        a = family.hash_tokens(tokens, 0)
        b = family.hash_tokens(tokens, 1)
        assert not np.array_equal(a, b)

    def test_func_index_validated(self, family: HashFamily):
        with pytest.raises(InvalidParameterError):
            family.hash_tokens(np.arange(3), func=family.k)
        with pytest.raises(InvalidParameterError):
            family.hash_token(1, func=-1)

    def test_vocabulary_table_matches_direct_hash(self, family: HashFamily):
        table = family.hash_vocabulary(500)
        assert table.shape == (family.k, 500)
        for func in range(family.k):
            direct = family.hash_tokens(np.arange(500, dtype=np.uint32), func)
            assert np.array_equal(table[func], direct)

    def test_vocabulary_size_validated(self, family: HashFamily):
        with pytest.raises(InvalidParameterError):
            family.hash_vocabulary(0)

    def test_hashes_spread(self, family: HashFamily):
        """A universal family should not collide a small vocabulary."""
        values = family.hash_tokens(np.arange(1000, dtype=np.uint32), func=0)
        assert len(set(values.tolist())) > 990


class TestMinHashAndSketch:
    def test_minhash_is_min_over_tokens(self, family: HashFamily):
        tokens = np.array([3, 9, 27, 81], dtype=np.uint32)
        expected = min(family.hash_token(int(t), 1) for t in tokens)
        assert family.minhash(tokens, 1) == expected

    def test_minhash_ignores_duplicates(self, family: HashFamily):
        a = np.array([5, 5, 5, 7], dtype=np.uint32)
        b = np.array([5, 7], dtype=np.uint32)
        assert family.minhash(a, 0) == family.minhash(b, 0)

    def test_minhash_empty_rejected(self, family: HashFamily):
        with pytest.raises(InvalidParameterError):
            family.minhash(np.array([], dtype=np.uint32), 0)

    def test_sketch_shape_and_consistency(self, family: HashFamily):
        tokens = np.array([1, 2, 3, 4, 5], dtype=np.uint32)
        sketch = family.sketch(tokens)
        assert sketch.shape == (family.k,)
        for func in range(family.k):
            assert int(sketch[func]) == family.minhash(tokens, func)

    def test_sketch_empty_rejected(self, family: HashFamily):
        with pytest.raises(InvalidParameterError):
            family.sketch(np.array([], dtype=np.uint32))

    def test_sketch_order_invariant(self, family: HashFamily):
        tokens = np.array([9, 1, 4, 4, 2], dtype=np.uint32)
        shuffled = np.array([4, 2, 9, 1, 4], dtype=np.uint32)
        assert np.array_equal(family.sketch(tokens), family.sketch(shuffled))

    def test_collision_fraction_estimates_jaccard(self):
        """Unbiasedness check: mean estimate ~ true Jaccard (Section 3.2)."""
        rng = np.random.default_rng(0)
        a = np.arange(0, 60, dtype=np.uint32)
        b = np.arange(30, 90, dtype=np.uint32)  # Jaccard = 30/90
        truth = distinct_jaccard(a, b)
        estimates = []
        for seed in range(60):
            fam = HashFamily(k=64, seed=seed)
            estimates.append(estimate_jaccard(fam.sketch(a), fam.sketch(b)))
        assert abs(float(np.mean(estimates)) - truth) < 0.02

    def test_estimator_variance_within_bound(self):
        """Empirical variance stays below the 1/(4k) bound."""
        a = np.arange(0, 40, dtype=np.uint32)
        b = np.arange(20, 60, dtype=np.uint32)
        k = 32
        estimates = [
            estimate_jaccard(
                HashFamily(k=k, seed=seed).sketch(a),
                HashFamily(k=k, seed=seed).sketch(b),
            )
            for seed in range(200)
        ]
        assert float(np.var(estimates)) < 1.5 / (4 * k)


class TestPersistence:
    def test_dict_roundtrip(self, family: HashFamily):
        clone = HashFamily.from_dict(family.to_dict())
        assert clone == family

    def test_file_roundtrip(self, family: HashFamily, tmp_path):
        path = tmp_path / "family.json"
        family.save(path)
        assert HashFamily.load(path) == family

    def test_from_dict_validates_shapes(self):
        payload = HashFamily(k=4, seed=0).to_dict()
        payload["k"] = 5
        with pytest.raises(InvalidParameterError):
            HashFamily.from_dict(payload)

    def test_roundtrip_preserves_hashes(self, family: HashFamily, tmp_path):
        path = tmp_path / "family.json"
        family.save(path)
        loaded = HashFamily.load(path)
        tokens = np.arange(64, dtype=np.uint32)
        for func in range(family.k):
            assert np.array_equal(
                family.hash_tokens(tokens, func), loaded.hash_tokens(tokens, func)
            )
