"""Tests for multiset Jaccard sketching and verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.multiset import (
    MultisetVerifier,
    estimate_multiset_jaccard,
    expand_multiset,
    multiset_sketch,
    search_definition2_multiset,
)
from repro.core.verify import Span, multiset_jaccard
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError


class TestExpandMultiset:
    def test_ranks_assigned_in_order(self):
        codes = expand_multiset(np.array([7, 7, 3, 7], dtype=np.uint32))
        tokens = (codes >> np.uint64(32)).astype(np.int64)
        ranks = (codes & np.uint64(0xFFFFFFFF)).astype(np.int64)
        assert tokens.tolist() == [7, 7, 3, 7]
        assert ranks.tolist() == [0, 1, 0, 2]

    def test_bag_equality_is_set_equality(self):
        a = expand_multiset(np.array([1, 2, 2, 3], dtype=np.uint32))
        b = expand_multiset(np.array([2, 3, 1, 2], dtype=np.uint32))
        assert set(a.tolist()) == set(b.tolist())

    def test_extra_copy_changes_set(self):
        a = expand_multiset(np.array([1, 1], dtype=np.uint32))
        b = expand_multiset(np.array([1], dtype=np.uint32))
        assert set(a.tolist()) != set(b.tolist())


class TestMultisetSketch:
    def test_empty_rejected(self, family):
        with pytest.raises(InvalidParameterError):
            multiset_sketch(family, np.array([], dtype=np.uint32))

    def test_bag_permutation_invariant(self, family):
        a = np.array([5, 5, 9, 2, 2, 2], dtype=np.uint32)
        b = np.array([2, 9, 2, 5, 2, 5], dtype=np.uint32)
        assert np.array_equal(multiset_sketch(family, a), multiset_sketch(family, b))

    def test_multiplicity_sensitive(self, family):
        a = np.array([5] * 10, dtype=np.uint32)
        b = np.array([5], dtype=np.uint32)
        assert not np.array_equal(
            multiset_sketch(family, a), multiset_sketch(family, b)
        )

    def test_estimator_unbiased(self):
        """Mean collision fraction tracks the true multiset Jaccard."""
        a = np.array([1, 1, 1, 2, 2], dtype=np.uint32)  # paper's example bags
        b = np.array([1, 2, 2, 2, 3], dtype=np.uint32)
        truth = multiset_jaccard(a, b)  # 3/7
        estimates = [
            estimate_multiset_jaccard(HashFamily(k=64, seed=seed), a, b)
            for seed in range(80)
        ]
        assert abs(float(np.mean(estimates)) - truth) < 0.04


class TestMultisetOracle:
    def test_finds_exact_bag_copy(self):
        rng = np.random.default_rng(4)
        texts = [rng.integers(0, 20, size=30).astype(np.uint32) for _ in range(4)]
        query = np.array(texts[2][5:20])
        family = HashFamily(k=12, seed=3)
        spans = search_definition2_multiset(
            InMemoryCorpus(texts), query, theta=1.0, t=10, family=family
        )
        assert Span(2, 5, 19) in spans

    def test_matches_per_span_sketching(self):
        """Incremental sketch == from-scratch sketch for every span."""
        rng = np.random.default_rng(9)
        texts = [rng.integers(0, 8, size=15).astype(np.uint32)]
        corpus = InMemoryCorpus(texts)
        family = HashFamily(k=6, seed=5)
        query = rng.integers(0, 8, size=8).astype(np.uint32)
        theta, t = 0.5, 3
        fast = {
            (s.text_id, s.start, s.end)
            for s in search_definition2_multiset(corpus, query, theta, t, family)
        }
        from repro.core.theory import collision_threshold

        beta = collision_threshold(family.k, theta)
        qsk = multiset_sketch(family, query)
        slow = set()
        text = texts[0]
        for i in range(text.size):
            for j in range(i + t - 1, text.size):
                sk = multiset_sketch(family, text[i : j + 1])
                if int(np.count_nonzero(sk == qsk)) >= beta:
                    slow.add((0, i, j))
        assert fast == slow

    def test_validation(self):
        corpus = InMemoryCorpus([[1, 2, 3]])
        family = HashFamily(k=4, seed=0)
        with pytest.raises(InvalidParameterError):
            search_definition2_multiset(corpus, np.array([1]), 0.0, 2, family)
        with pytest.raises(InvalidParameterError):
            search_definition2_multiset(corpus, np.array([1]), 0.5, 0, family)


class TestMultisetVerifier:
    def test_filters_by_bag_similarity(self):
        # Distinct Jaccard of ([1,1,1,2], [1,2]) is 1.0; multiset is 0.5.
        texts = [np.array([1, 1, 1, 2], dtype=np.uint32)]
        corpus = InMemoryCorpus(texts)
        verifier = MultisetVerifier(corpus)
        query = np.array([1, 2], dtype=np.uint32)
        spans = [Span(0, 0, 3)]
        assert verifier.verify(query, spans, theta=0.9) == []
        kept = verifier.verify(query, spans, theta=0.4)
        assert len(kept) == 1
        assert kept[0][1] == pytest.approx(0.5)

    def test_sorted_by_similarity(self):
        texts = [
            np.array([1, 2, 3, 4], dtype=np.uint32),
            np.array([1, 2, 9, 9], dtype=np.uint32),
        ]
        corpus = InMemoryCorpus(texts)
        verifier = MultisetVerifier(corpus)
        query = np.array([1, 2, 3, 4], dtype=np.uint32)
        kept = verifier.verify(
            query, [Span(1, 0, 3), Span(0, 0, 3)], theta=0.1
        )
        similarities = [sim for _, sim in kept]
        assert similarities == sorted(similarities, reverse=True)

    def test_theta_validated(self):
        verifier = MultisetVerifier(InMemoryCorpus([[1]]))
        with pytest.raises(InvalidParameterError):
            verifier.verify(np.array([1]), [], theta=0.0)
