"""Tests for the decoding strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import InMemoryCorpus, TOKEN_DTYPE
from repro.exceptions import InvalidParameterError
from repro.lm.generation import GenerationConfig, generate
from repro.lm.ngram import NGramConfig, NGramLM


@pytest.fixture(scope="module")
def model():
    phrase = [1, 2, 3, 4, 5]
    corpus = InMemoryCorpus([np.array(phrase * 10, dtype=np.uint32)] * 10)
    return NGramLM(NGramConfig(order=3, interpolation=0.95), 10).fit(corpus)


class TestConfig:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GenerationConfig(strategy="magic")
        with pytest.raises(InvalidParameterError):
            GenerationConfig(top_k=0)
        with pytest.raises(InvalidParameterError):
            GenerationConfig(top_p=0.0)
        with pytest.raises(InvalidParameterError):
            GenerationConfig(beam_width=0)


class TestGenerate:
    @pytest.mark.parametrize(
        "strategy", ["random", "greedy", "top_k", "top_p", "beam"]
    )
    def test_length_and_dtype(self, model, strategy):
        config = GenerationConfig(strategy=strategy, top_k=3, beam_width=2)
        out = generate(model, 20, config=config, seed=1)
        assert out.shape == (20,)
        assert out.dtype == TOKEN_DTYPE
        assert int(out.max()) < 10

    def test_length_validated(self, model):
        with pytest.raises(InvalidParameterError):
            generate(model, 0)

    def test_greedy_deterministic(self, model):
        config = GenerationConfig(strategy="greedy")
        a = generate(model, 15, config=config, seed=1)
        b = generate(model, 15, config=config, seed=999)
        assert np.array_equal(a, b)

    def test_sampling_seeded(self):
        # A weakly-interpolated model keeps the distribution flat, so
        # different seeds diverge almost surely over 30 random draws.
        corpus = InMemoryCorpus([np.arange(10, dtype=np.uint32)] * 3)
        flat = NGramLM(NGramConfig(order=2, interpolation=0.1), 10).fit(corpus)
        config = GenerationConfig(strategy="random")
        a = generate(flat, 30, config=config, seed=4)
        b = generate(flat, 30, config=config, seed=4)
        c = generate(flat, 30, config=config, seed=5)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_greedy_reproduces_training_cycle(self, model):
        """On a corpus of one repeating phrase, greedy decoding locks on."""
        prompt = np.array([1, 2], dtype=TOKEN_DTYPE)
        out = generate(model, 9, config=GenerationConfig(strategy="greedy"), prompt=prompt)
        assert out.tolist()[:3] == [3, 4, 5]

    def test_prompt_not_echoed(self, model):
        prompt = np.array([1, 2, 3], dtype=TOKEN_DTYPE)
        out = generate(model, 5, config=GenerationConfig(strategy="greedy"), prompt=prompt)
        assert out.size == 5

    def test_beam_matches_greedy_with_width_one(self, model):
        greedy = generate(model, 10, config=GenerationConfig(strategy="greedy"))
        beam = generate(model, 10, config=GenerationConfig(strategy="beam", beam_width=1))
        assert np.array_equal(greedy, beam)

    def test_top_p_restricts_support(self, model):
        """With tiny p, top-p behaves like greedy on a peaked model."""
        config = GenerationConfig(strategy="top_p", top_p=0.01)
        greedy = generate(model, 10, config=GenerationConfig(strategy="greedy"))
        out = generate(model, 10, config=config, seed=3)
        assert np.array_equal(out, greedy)

    def test_top_k_one_is_greedy(self, model):
        config = GenerationConfig(strategy="top_k", top_k=1)
        greedy = generate(model, 10, config=GenerationConfig(strategy="greedy"))
        out = generate(model, 10, config=config, seed=3)
        assert np.array_equal(out, greedy)

    def test_default_config_is_paper_setting(self, model):
        """Defaults mirror the paper's top-50 sampling."""
        config = GenerationConfig()
        assert config.strategy == "top_k"
        assert config.top_k == 50
        out = generate(model, 8)
        assert out.size == 8
