"""Unit tests for the query processor (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.theory import collision_threshold
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError, QueryError
from repro.index.builder import build_memory_index


@pytest.fixture(scope="module")
def engine():
    """Corpus where text 5 contains an exact copy of the query span."""
    rng = np.random.default_rng(77)
    vocab = 300
    texts = [rng.integers(0, vocab, size=120).astype(np.uint32) for _ in range(10)]
    query = np.array(texts[0][10:74])
    texts[5][20:84] = query  # exact planted copy
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=16, seed=13)
    index = build_memory_index(corpus, family, t=25, vocab_size=vocab)
    return corpus, index, query


class TestBasicSearch:
    def test_finds_planted_copy(self, engine):
        corpus, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.9)
        matched = {m.text_id for m in result.matches}
        assert {0, 5} <= matched

    def test_exact_duplicate_at_theta_one(self, engine):
        corpus, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 1.0)
        assert {m.text_id for m in result.matches} >= {0, 5}
        assert result.beta == index.family.k

    def test_result_metadata(self, engine):
        _, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.8)
        assert result.k == index.family.k
        assert result.theta == 0.8
        assert result.beta == collision_threshold(index.family.k, 0.8)
        assert result.t == index.t
        assert bool(result) == (result.num_texts > 0)

    def test_all_spans_long_enough(self, engine):
        _, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.8)
        for match in result.matches:
            for span in match.spans(index.t):
                assert span.length >= index.t

    def test_lower_theta_finds_no_fewer(self, engine):
        _, index, query = engine
        high = NearDuplicateSearcher(index).search(query, 0.95)
        low = NearDuplicateSearcher(index).search(query, 0.6)
        assert low.count_spans() >= high.count_spans()
        high_texts = {m.text_id for m in high.matches}
        low_texts = {m.text_id for m in low.matches}
        assert high_texts <= low_texts

    def test_empty_query_rejected(self, engine):
        _, index, _ = engine
        with pytest.raises(QueryError):
            NearDuplicateSearcher(index).search(np.array([], dtype=np.uint32), 0.8)

    def test_invalid_theta_rejected(self, engine):
        _, index, query = engine
        with pytest.raises(InvalidParameterError):
            NearDuplicateSearcher(index).search(query, 0.0)
        with pytest.raises(InvalidParameterError):
            NearDuplicateSearcher(index).search(query, 1.0001)

    def test_negative_cutoff_rejected(self, engine):
        _, index, _ = engine
        with pytest.raises(InvalidParameterError):
            NearDuplicateSearcher(index, long_list_cutoff=-1)

    def test_unrelated_query_finds_nothing(self, engine):
        _, index, _ = engine
        # Tokens far outside the corpus vocabulary cannot collide often.
        query = np.arange(10_000, 10_064, dtype=np.uint32)
        result = NearDuplicateSearcher(index).search(query, 0.9)
        assert result.num_texts == 0

    def test_first_match_only_stops_early(self, engine):
        _, index, query = engine
        full = NearDuplicateSearcher(index).search(query, 0.8)
        first = NearDuplicateSearcher(index).search(query, 0.8, first_match_only=True)
        assert first.num_texts == 1
        assert full.num_texts >= 1


class TestPrefixFiltering:
    def test_same_results_for_all_cutoffs(self, engine):
        """Prefix filtering must not change the answer (Theorem 2)."""
        _, index, query = engine
        baseline = None
        for cutoff in (0, 1, 16, 1 << 30, None):
            result = NearDuplicateSearcher(index, long_list_cutoff=cutoff).search(
                query, 0.7
            )
            spans = {
                (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                for m in result.matches
                for r in m.rectangles
            }
            if baseline is None:
                baseline = spans
            else:
                assert spans == baseline

    def test_long_list_cap_respects_beta(self, engine):
        """At most beta - 1 lists may be filtered (else completeness breaks)."""
        _, index, query = engine
        searcher = NearDuplicateSearcher(index, long_list_cutoff=0)
        result = searcher.search(query, 0.8)
        assert result.stats.long_lists == 0
        aggressive = NearDuplicateSearcher(index, long_list_cutoff=1)
        result = aggressive.search(query, 0.8)
        assert result.stats.long_lists <= result.beta - 1

    def test_aggressive_cutoff_reduces_io(self, engine):
        _, index, query = engine
        index.io_stats.reset()
        full = NearDuplicateSearcher(index, long_list_cutoff=0).search(query, 0.7)
        filtered = NearDuplicateSearcher(index, long_list_cutoff=16).search(query, 0.7)
        assert filtered.stats.io_bytes <= full.stats.io_bytes


class TestStats:
    def test_stats_accounting(self, engine):
        _, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.8)
        stats = result.stats
        assert stats.total_seconds > 0
        assert stats.cpu_seconds >= 0
        assert stats.lists_loaded <= index.family.k
        assert stats.texts_matched == result.num_texts
        assert stats.io_bytes > 0

    def test_groups_scanned_counts_candidate_texts(self, engine):
        _, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.8)
        assert result.stats.groups_scanned >= result.stats.candidates
        assert result.stats.candidates >= result.num_texts


class TestResultShaping:
    def test_merged_spans_disjoint(self, engine):
        _, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.7)
        spans = result.merged_spans()
        by_text: dict[int, list] = {}
        for span in spans:
            by_text.setdefault(span.text_id, []).append(span)
        for group in by_text.values():
            ordered = sorted(group, key=lambda s: s.start)
            for a, b in zip(ordered, ordered[1:]):
                assert a.end < b.start

    def test_widest_spans_subset_of_spans(self, engine):
        _, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.8)
        for match in result.matches:
            all_spans = set(
                (s.start, s.end) for s in match.spans(index.t)
            )
            for widest in match.widest_spans(index.t):
                assert (widest.start, widest.end) in all_spans

    def test_best_count_within_range(self, engine):
        _, index, query = engine
        result = NearDuplicateSearcher(index).search(query, 0.8)
        for match in result.matches:
            assert result.beta <= match.best_count() <= result.k
