"""Tests for corpus statistics (Zipf profile, duplication probe)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import InMemoryCorpus
from repro.corpus.stats import (
    LengthProfile,
    fit_zipf_exponent,
    frequency_profile,
    ngram_duplication_rate,
    token_frequencies,
)
from repro.corpus.synthetic import zipf_corpus
from repro.exceptions import InvalidParameterError


class TestTokenFrequencies:
    def test_counts(self):
        corpus = InMemoryCorpus([[0, 0, 1], [1, 2]])
        counts = token_frequencies(corpus)
        assert counts.tolist() == [2, 2, 1]

    def test_explicit_vocab(self):
        corpus = InMemoryCorpus([[0]])
        counts = token_frequencies(corpus, vocab_size=5)
        assert counts.tolist() == [1, 0, 0, 0, 0]

    def test_empty_corpus(self):
        assert token_frequencies(InMemoryCorpus([]), vocab_size=3).tolist() == [0, 0, 0]


class TestZipfFit:
    def test_perfect_zipf(self):
        ranks = np.arange(1, 501, dtype=np.float64)
        counts = np.round(1e6 / ranks**1.2).astype(np.int64)
        assert fit_zipf_exponent(counts) == pytest.approx(1.2, abs=0.05)

    def test_uniform_has_low_exponent(self):
        counts = np.full(100, 50, dtype=np.int64)
        assert fit_zipf_exponent(counts) == pytest.approx(0.0, abs=0.05)

    def test_too_few_tokens(self):
        with pytest.raises(InvalidParameterError):
            fit_zipf_exponent(np.array([5, 3]))


class TestFrequencyProfile:
    def test_synthetic_corpus_is_skewed(self):
        corpus = zipf_corpus(150, mean_length=150, vocab_size=2000, seed=5)
        profile = frequency_profile(corpus, vocab_size=2000)
        assert profile.is_skewed
        assert profile.zipf_exponent > 0.6
        assert profile.top1_share > 0.01
        assert profile.total_tokens == corpus.total_tokens

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            frequency_profile(InMemoryCorpus([[]]), vocab_size=4)


class TestLengthProfile:
    def test_fields(self):
        corpus = InMemoryCorpus([[1] * 10, [1] * 20, [1] * 100])
        profile = LengthProfile.from_corpus(corpus, t=25)
        assert profile.num_texts == 3
        assert profile.maximum == 100
        assert profile.below_t == 2
        assert profile.median == 20

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            LengthProfile.from_corpus(InMemoryCorpus([]))


class TestDuplicationRate:
    def test_no_duplicates(self, rng):
        texts = [
            np.arange(i * 1000, i * 1000 + 100, dtype=np.uint32) for i in range(5)
        ]
        assert ngram_duplication_rate(InMemoryCorpus(texts), n=20) == 0.0

    def test_planted_exact_duplicates_detected(self, rng):
        texts = [rng.integers(0, 10**6, size=100).astype(np.uint32) for _ in range(5)]
        texts[3][0:40] = texts[0][0:40]
        rate = ngram_duplication_rate(InMemoryCorpus(texts), n=20)
        assert rate > 0.0

    def test_within_text_repeats_not_counted(self):
        """The probe counts cross-text duplication only."""
        text = np.tile(np.arange(20, dtype=np.uint32), 5)
        assert ngram_duplication_rate(InMemoryCorpus([text]), n=20) == 0.0

    def test_sampling(self, rng):
        texts = [rng.integers(0, 100, size=60).astype(np.uint32) for _ in range(20)]
        rate = ngram_duplication_rate(
            InMemoryCorpus(texts), n=10, sample_texts=5, seed=1
        )
        assert 0.0 <= rate <= 1.0

    def test_n_validated(self):
        with pytest.raises(InvalidParameterError):
            ngram_duplication_rate(InMemoryCorpus([[1]]), n=0)
