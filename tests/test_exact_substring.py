"""Tests for the suffix-array exact-substring baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact_substring import SuffixArrayIndex
from repro.core.verify import Span
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError


def brute_force_occurrences(corpus, query):
    query = np.asarray(query, dtype=np.int64)
    spans = []
    for text_id in range(len(corpus)):
        text = np.asarray(corpus[text_id], dtype=np.int64)
        for start in range(0, text.size - query.size + 1):
            if np.array_equal(text[start : start + query.size], query):
                spans.append(Span(text_id, start, start + query.size - 1))
    return spans


class TestSuffixSort:
    def test_sorted_order(self, rng):
        sequence = rng.integers(0, 5, size=60).astype(np.int64)
        suffixes = SuffixArrayIndex._sort_suffixes(sequence)
        assert sorted(suffixes.tolist()) == list(range(60))
        for a, b in zip(suffixes, suffixes[1:]):
            assert tuple(sequence[a:].tolist()) < tuple(sequence[b:].tolist())

    def test_empty(self):
        assert SuffixArrayIndex._sort_suffixes(np.empty(0, dtype=np.int64)).size == 0

    def test_all_equal_tokens(self):
        sequence = np.zeros(10, dtype=np.int64)
        suffixes = SuffixArrayIndex._sort_suffixes(sequence)
        # Shorter suffixes of a constant string sort first.
        assert suffixes.tolist() == list(range(9, -1, -1))


class TestFindOccurrences:
    @pytest.fixture(scope="class")
    def corpus(self):
        rng = np.random.default_rng(77)
        texts = [rng.integers(0, 6, size=40).astype(np.uint32) for _ in range(6)]
        texts[4][7:19] = texts[1][3:15]  # planted exact copy
        return InMemoryCorpus(texts)

    @pytest.fixture(scope="class")
    def index(self, corpus):
        return SuffixArrayIndex().build(corpus)

    def test_matches_brute_force(self, corpus, index, rng):
        for _ in range(25):
            text_id = int(rng.integers(0, len(corpus)))
            text = np.asarray(corpus[text_id])
            start = int(rng.integers(0, text.size - 5))
            length = int(rng.integers(1, min(12, text.size - start)))
            query = text[start : start + length]
            got = index.find_occurrences(query)
            assert got == brute_force_occurrences(corpus, query)

    def test_planted_copy_found_in_both_texts(self, corpus, index):
        query = np.asarray(corpus[1])[3:15]
        spans = index.find_occurrences(query)
        texts = {s.text_id for s in spans}
        assert {1, 4} <= texts

    def test_absent_query(self, index):
        query = np.array([99, 98, 97], dtype=np.uint32)
        assert index.find_occurrences(query) == []
        assert not index.contains(query)

    def test_count(self, corpus, index):
        query = np.asarray(corpus[1])[3:15]
        assert index.count(query) == len(brute_force_occurrences(corpus, query))

    def test_match_never_spans_texts(self, corpus, index):
        """A query formed by the end of one text + start of the next
        must not match (the sentinel separates them)."""
        tail = np.asarray(corpus[0])[-3:]
        head = np.asarray(corpus[1])[:3]
        query = np.concatenate([tail, head])
        assert index.find_occurrences(query) == brute_force_occurrences(corpus, query)

    def test_empty_query_rejected(self, index):
        with pytest.raises(InvalidParameterError):
            index.find_occurrences(np.array([], dtype=np.uint32))

    def test_unbuilt_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            SuffixArrayIndex().find_occurrences(np.array([1]))

    def test_full_text_query(self, corpus, index):
        text = np.asarray(corpus[2])
        spans = index.find_occurrences(text)
        assert Span(2, 0, text.size - 1) in spans

    def test_stats(self, corpus):
        index = SuffixArrayIndex().build(corpus)
        assert index.stats.total_positions == corpus.total_tokens + len(corpus)
        assert index.stats.build_seconds > 0
        index.find_occurrences(np.asarray(corpus[0])[:5])
        assert index.stats.queries == 1


class TestExactVsNearGap:
    def test_near_duplicates_more_pervasive_than_exact(self):
        """The paper's headline: a mutated copy is invisible to exact
        matching but found by near-duplicate search."""
        rng = np.random.default_rng(5)
        vocab = 300
        texts = [rng.integers(0, vocab, size=80).astype(np.uint32) for _ in range(8)]
        query = np.array(texts[0][10:50])
        mutated = np.array(query)
        mutated[::8] = rng.integers(0, vocab, size=mutated[::8].size)
        texts[5][20:60] = mutated
        corpus = InMemoryCorpus(texts)

        exact = SuffixArrayIndex().build(corpus)
        exact_texts = {s.text_id for s in exact.find_occurrences(query)}
        assert exact_texts == {0}  # only the verbatim original

        from repro.core.hashing import HashFamily
        from repro.core.search import NearDuplicateSearcher
        from repro.index.builder import build_memory_index

        family = HashFamily(k=16, seed=1)
        index = build_memory_index(corpus, family, t=20, vocab_size=vocab)
        near = NearDuplicateSearcher(index).search(query, 0.7)
        near_texts = {m.text_id for m in near.matches}
        assert {0, 5} <= near_texts  # the near-duplicate copy too
