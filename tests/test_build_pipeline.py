"""Tests for the vectorized, pipelined build pipeline (ISSUE 2).

Covers the k-wide window generator against the per-function oracles,
equivalence of every build driver with the sequential reference, the
bounded-memory streaming property, and the out-of-core aggregation
fixes (empty sub-partitions, scratch cleanup on failure).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact_windows import (
    generate_compact_windows_kwide,
    generate_compact_windows_recursive,
    generate_compact_windows_stack,
)
from repro.core.hashing import HashFamily
from repro.corpus.corpus import (
    InMemoryCorpus,
    corpus_nbytes,
    infer_vocab_size,
    iter_corpus_batches,
)
from repro.corpus.store import DiskCorpus, write_corpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import BuildStats, build_memory_index
from repro.index.external import (
    SPILL_DTYPE,
    ExternalBuildConfig,
    _flush_partition,
    build_external_index,
)
from repro.index.parallel import build_memory_index_parallel
from repro.index.sharded import ShardedIndex
from repro.index.storage import _PAYLOAD_FILE, DiskInvertedIndex

hash_matrices = st.integers(1, 6).flatmap(
    lambda k: st.lists(
        st.lists(st.integers(0, 9), min_size=1, max_size=40),
        min_size=k,
        max_size=k,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)
).map(lambda rows: np.asarray(rows, dtype=np.uint32))


def indexes_equal(a, b) -> bool:
    if a.family != b.family or a.t != b.t or a.num_postings != b.num_postings:
        return False
    for func in range(a.family.k):
        lists_a = dict(a.iter_lists(func))
        lists_b = dict(b.iter_lists(func))
        if lists_a.keys() != lists_b.keys():
            return False
        for key in lists_a:
            if not np.array_equal(lists_a[key], lists_b[key]):
                return False
    return True


class TestKWideGenerator:
    @given(matrix=hash_matrices, t=st.integers(1, 10))
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_stack_and_recursive_oracles(self, matrix, t):
        """The k-wide generator must reproduce, row for row, both the
        monotone-stack generator and the recursive Algorithm-2 oracle —
        including on heavy ties (hash values drawn from [0, 9])."""
        kwide = generate_compact_windows_kwide(matrix, t)
        assert len(kwide) == matrix.shape[0]
        for func in range(matrix.shape[0]):
            stack = generate_compact_windows_stack(matrix[func], t)
            assert np.array_equal(kwide[func], stack)
            oracle = {
                (w.left, w.center, w.right)
                for w in generate_compact_windows_recursive(matrix[func], t)
            }
            got = {
                (int(r["left"]), int(r["center"]), int(r["right"]))
                for r in kwide[func]
            }
            assert got == oracle

    def test_short_rows_yield_empty(self):
        matrix = np.asarray([[1, 2], [3, 4]], dtype=np.uint32)
        out = generate_compact_windows_kwide(matrix, t=5)
        assert len(out) == 2 and all(w.size == 0 for w in out)

    def test_rejects_non_matrix(self):
        with pytest.raises(InvalidParameterError):
            generate_compact_windows_kwide(np.arange(5, dtype=np.uint32), t=2)

    def test_rows_independent(self, rng):
        """A row's windows must not be affected by its neighbours."""
        matrix = rng.integers(0, 50, size=(8, 120)).astype(np.uint32)
        kwide = generate_compact_windows_kwide(matrix, t=4)
        for func in range(8):
            alone = generate_compact_windows_kwide(matrix[func : func + 1], t=4)
            assert np.array_equal(kwide[func], alone[0])


class TestBuildEquivalence:
    @pytest.fixture(scope="class")
    def corpus(self):
        rng = np.random.default_rng(41)
        texts = [
            rng.integers(0, 300, size=rng.integers(5, 200)).astype(np.uint32)
            for _ in range(60)
        ]
        texts.append(np.empty(0, dtype=np.uint32))  # empty text edge case
        return InMemoryCorpus(texts)

    @pytest.fixture(scope="class")
    def reference(self, corpus):
        return build_memory_index(corpus, HashFamily(k=4, seed=11), 10)

    def test_batch_size_invariant(self, corpus, reference):
        """Streaming in any batch size yields the identical index."""
        family = HashFamily(k=4, seed=11)
        for batch_texts in (1, 7, 1000):
            index = build_memory_index(corpus, family, 10, batch_texts=batch_texts)
            assert indexes_equal(reference, index)

    def test_parallel_any_geometry(self, corpus, reference):
        family = HashFamily(k=4, seed=11)
        for workers, batch_texts, max_inflight in ((2, 5, 2), (3, 17, None)):
            index = build_memory_index_parallel(
                corpus,
                family,
                10,
                workers=workers,
                batch_texts=batch_texts,
                max_inflight=max_inflight,
            )
            assert indexes_equal(reference, index)

    def test_sharded_with_workers(self, corpus, reference):
        family = HashFamily(k=4, seed=11)
        plain = ShardedIndex.build(corpus, family, 10, num_shards=3)
        pooled = ShardedIndex.build(
            corpus, family, 10, num_shards=3, workers=2, batch_texts=9
        )
        assert plain.num_postings == pooled.num_postings == reference.num_postings
        for a, b in zip(plain.shards, pooled.shards):
            assert indexes_equal(a.index, b.index)

    def test_external_variants_byte_identical(self, corpus, reference, tmp_path):
        """Pipelined spill and pass-2 workers must not change a single
        payload byte relative to the plain sequential aggregation."""
        family = HashFamily(k=4, seed=11)
        payloads = []
        for name, config in (
            ("plain", ExternalBuildConfig(batch_texts=9, pipeline_spill=False)),
            ("piped", ExternalBuildConfig(batch_texts=9, pipeline_spill=True)),
            (
                "pooled",
                ExternalBuildConfig(batch_texts=9, pipeline_spill=True, workers=2),
            ),
        ):
            directory = tmp_path / name
            build_external_index(corpus, family, 10, directory, config=config)
            assert indexes_equal(
                reference, DiskInvertedIndex(directory).to_memory()
            )
            payloads.append((directory / _PAYLOAD_FILE).read_bytes())
        assert payloads[0] == payloads[1] == payloads[2]

    def test_stats_phases_populated(self, corpus, tmp_path):
        family = HashFamily(k=4, seed=11)
        mem_stats = BuildStats()
        build_memory_index_parallel(
            corpus, family, 10, workers=2, batch_texts=16, stats=mem_stats
        )
        assert mem_stats.texts_indexed == len(corpus)
        assert mem_stats.batches == 4
        assert mem_stats.generation_seconds > 0
        assert mem_stats.merge_seconds > 0
        ext_stats = build_external_index(
            corpus,
            family,
            10,
            tmp_path / "stats",
            config=ExternalBuildConfig(batch_texts=16),
        )
        assert ext_stats.texts_indexed == len(corpus)
        assert ext_stats.batches == 4
        assert ext_stats.aggregation_seconds > 0
        assert ext_stats.io_seconds > 0


class TestBoundedMemory:
    def test_streaming_peak_below_corpus_size(self, tmp_path):
        """The streamed build must never materialize the corpus: peak
        allocations during the build stay below one corpus copy (the
        index itself is small at this t, so a non-streaming build that
        holds the tokens of every batch at once would blow through the
        bound)."""
        rng = np.random.default_rng(7)
        directory = write_corpus(
            (rng.integers(0, 200, size=2000).astype(np.uint32) for _ in range(256)),
            tmp_path / "corpus",
        )
        corpus = DiskCorpus(directory)
        total_bytes = corpus_nbytes(corpus)  # 2 MiB of tokens
        family = HashFamily(k=2, seed=1)
        tracemalloc.start()
        tracemalloc.reset_peak()
        build_memory_index(corpus, family, 200, batch_texts=8)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < total_bytes, (
            f"peak {peak} bytes vs corpus {total_bytes} bytes: "
            "build is not streaming"
        )


class TestCorpusHelpers:
    def test_infer_vocab_size_uses_corpus_stat(self):
        class Tracked(InMemoryCorpus):
            calls = 0

            def vocabulary_size(self) -> int:
                Tracked.calls += 1
                return super().vocabulary_size()

        corpus = Tracked([np.asarray([3, 9, 1], dtype=np.uint32)])
        assert infer_vocab_size(corpus) == 10
        assert Tracked.calls == 1

    def test_infer_vocab_size_scan_fallback(self):
        class Bare:
            def __init__(self, texts):
                self._texts = texts

            def __len__(self):
                return len(self._texts)

            def __getitem__(self, i):
                return self._texts[i]

            def __iter__(self):
                return iter(self._texts)

            @property
            def total_tokens(self):
                return sum(t.size for t in self._texts)

        corpus = Bare([np.asarray([5, 2], dtype=np.uint32)])
        assert infer_vocab_size(corpus) == 6
        assert infer_vocab_size(Bare([])) == 1

    def test_iter_corpus_batches_fallback(self):
        class Bare:
            def __len__(self):
                return 5

            def __getitem__(self, i):
                return np.asarray([i], dtype=np.uint32)

            def __iter__(self):
                return (self[i] for i in range(5))

            @property
            def total_tokens(self):
                return 5

        batches = list(iter_corpus_batches(Bare(), 2))
        assert [len(b) for b in batches] == [2, 2, 1]
        assert batches[2][0][0] == 4
        with pytest.raises(InvalidParameterError):
            list(iter_corpus_batches(Bare(), 0))

    def test_disk_corpus_vocab_cached(self, tmp_path):
        directory = write_corpus(
            [np.asarray([7, 3], dtype=np.uint32)], tmp_path / "c"
        )
        corpus = DiskCorpus(directory)
        assert corpus.vocabulary_size() == 8
        assert corpus._vocab_size == 8  # second call hits the cache
        assert infer_vocab_size(corpus) == 8


class TestFlushPartitionFixes:
    def _records(self, n: int, num_keys: int) -> np.ndarray:
        rng = np.random.default_rng(3)
        records = np.zeros(n, dtype=SPILL_DTYPE)
        records["func"] = 0
        records["minhash"] = rng.integers(0, num_keys, size=n)
        records["text"] = rng.integers(0, 50, size=n)
        return records

    def test_recursion_with_skewed_keys(self, tmp_path):
        """One dominant key leaves most sub-partitions empty; the flush
        must still emit every group exactly once."""
        records = self._records(400, num_keys=2)
        config = ExternalBuildConfig(
            num_partitions=8, memory_budget_bytes=256, max_recursion=3
        )
        emitted = []
        _flush_partition(
            records,
            lambda func, minhash, postings: emitted.append((minhash, postings.size)),
            config,
            tmp_path,
            depth=0,
        )
        assert sum(size for _, size in emitted) == 400
        assert not list(tmp_path.glob("depth*"))

    def test_scratch_cleaned_on_emit_failure(self, tmp_path):
        records = self._records(400, num_keys=64)
        config = ExternalBuildConfig(
            num_partitions=4, memory_budget_bytes=256, max_recursion=3
        )

        def failing_emit(func, minhash, postings):
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError, match="disk full"):
            _flush_partition(records, failing_emit, config, tmp_path, depth=0)
        assert not list(tmp_path.glob("depth*"))
