"""Format v2 posting codec: kernels, round-trips, reader equivalence.

Three layers of assurance:

* the vectorized pack/unpack kernels and the list encoder are checked
  byte-for-byte against the scalar ``reference_*`` oracle (hypothesis
  property tests plus adversarial fixed cases);
* every reader backend — memory, disk v1, disk v2, cached disk v2,
  incremental over disk v2 — must return identical search results;
* corrupt-block, truncated-payload and partial-build directories must
  fail loudly, never decode garbage.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher, QueryStats
from repro.corpus.synthetic import synthweb
from repro.exceptions import IndexFormatError, InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.cache import CachedIndexReader
from repro.index.codec import (
    BLOCK_POSTINGS,
    EncodedList,
    block_byte_sizes,
    block_counts,
    check_codec,
    decode_blocks,
    encode_list,
    list_columns,
    pack_bits,
    reference_decode_list,
    reference_encode_list,
    reference_pack_bits,
    reference_unpack_bits,
    unpack_bits_at,
)
from repro.index.incremental import IncrementalIndex
from repro.index.inverted import POSTING_BYTES, POSTING_DTYPE
from repro.index.storage import DiskInvertedIndex, convert_directory, write_index
from repro.index.validate import validate_index
from repro.query.results import BatchStats


def make_postings(
    n: int,
    *,
    seed: int = 0,
    text_range: int = 5000,
    position_scale: int = 100_000,
    equal_texts: bool = False,
) -> np.ndarray:
    """A synthetic text-sorted posting list with plausible geometry."""
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=POSTING_DTYPE)
    if equal_texts:
        out["text"] = rng.integers(0, text_range)
    else:
        out["text"] = np.sort(rng.integers(0, text_range, n)).astype(np.uint32)
    centers = rng.integers(0, position_scale, n).astype(np.uint32)
    out["center"] = centers
    out["left"] = centers - np.minimum(
        rng.integers(0, 64, n).astype(np.uint32), centers
    )
    out["right"] = centers + np.minimum(
        rng.integers(0, 64, n).astype(np.uint32),
        (2**32 - 1) - centers.astype(np.int64),
    ).astype(np.uint32)
    return out


def roundtrip(postings: np.ndarray) -> np.ndarray:
    """Encode then decode all blocks of one list."""
    encoded = encode_list(postings)
    counts = block_counts(encoded.count)
    sizes = block_byte_sizes(counts, encoded.widths)
    offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]
    return decode_blocks(
        encoded.data, offsets, counts, encoded.widths, encoded.first_texts
    )


# ---------------------------------------------------------------------------
# Bit-slab kernels vs. the scalar oracle
# ---------------------------------------------------------------------------
class TestPackKernels:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(0, 32),
        values=st.lists(st.integers(0, 2**32 - 1), max_size=200),
    )
    def test_pack_matches_reference(self, width, values):
        mask = (1 << width) - 1 if width else 0
        vals = np.asarray([v & mask for v in values], dtype=np.uint32)
        assert np.array_equal(pack_bits(vals, width), reference_pack_bits(vals, width))

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(1, 32),
        values=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=200),
        seed=st.integers(0, 2**16),
    )
    def test_unpack_inverts_pack_at_any_offset_order(self, width, values, seed):
        mask = (1 << width) - 1
        vals = np.asarray([v & mask for v in values], dtype=np.uint32)
        slab = pack_bits(vals, width)
        starts = np.arange(vals.size, dtype=np.int64) * width
        perm = np.random.default_rng(seed).permutation(vals.size)
        assert np.array_equal(unpack_bits_at(slab, starts[perm], width), vals[perm])
        assert np.array_equal(
            reference_unpack_bits(slab, vals.size, width), vals
        )

    def test_width_zero_and_empty(self):
        assert pack_bits(np.arange(5, dtype=np.uint32) * 0, 0).size == 0
        assert pack_bits(np.empty(0, dtype=np.uint32), 7).size == 0
        assert np.array_equal(
            unpack_bits_at(np.ones(4, np.uint8), np.arange(3), 0),
            np.zeros(3, np.uint32),
        )

    def test_rejects_bad_width(self):
        with pytest.raises(InvalidParameterError):
            pack_bits(np.zeros(1, np.uint32), 33)
        with pytest.raises(InvalidParameterError):
            unpack_bits_at(np.zeros(1, np.uint8), np.zeros(1, np.int64), -1)

    def test_check_codec(self):
        assert check_codec("raw") == "raw"
        assert check_codec("packed") == "packed"
        with pytest.raises(InvalidParameterError):
            check_codec("zstd")


# ---------------------------------------------------------------------------
# List encode/decode vs. the scalar oracle
# ---------------------------------------------------------------------------
class TestEncodeList:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 500),
        seed=st.integers(0, 2**16),
        text_range=st.sampled_from([1, 40, 5000]),
        position_scale=st.sampled_from([1, 1000, 2**32 - 1]),
        equal_texts=st.booleans(),
    )
    def test_matches_reference_and_roundtrips(
        self, n, seed, text_range, position_scale, equal_texts
    ):
        postings = make_postings(
            n,
            seed=seed,
            text_range=text_range,
            position_scale=position_scale,
            equal_texts=equal_texts,
        )
        encoded = encode_list(postings)
        oracle = reference_encode_list(postings)
        assert np.array_equal(encoded.data, oracle.data)
        assert np.array_equal(encoded.first_texts, oracle.first_texts)
        assert np.array_equal(encoded.widths, oracle.widths)
        assert encoded.count == oracle.count == n
        assert np.array_equal(roundtrip(postings), postings)
        assert np.array_equal(reference_decode_list(encoded), postings)

    @pytest.mark.parametrize(
        "n", [1, 2, BLOCK_POSTINGS - 1, BLOCK_POSTINGS, BLOCK_POSTINGS + 1, 3 * BLOCK_POSTINGS]
    )
    def test_block_boundaries(self, n):
        postings = make_postings(n, seed=n)
        assert np.array_equal(roundtrip(postings), postings)

    def test_single_posting(self):
        postings = make_postings(1, seed=9)
        encoded = encode_list(postings)
        assert encoded.num_blocks == 1
        assert int(encoded.first_texts[0]) == int(postings["text"][0])
        assert np.array_equal(roundtrip(postings), postings)

    def test_all_equal_texts_gets_width_zero_delta(self):
        postings = make_postings(300, seed=4, equal_texts=True)
        encoded = encode_list(postings)
        assert np.all(encoded.widths[:, 0] == 0)  # all deltas are zero
        assert np.array_equal(roundtrip(postings), postings)

    def test_max_uint32_values(self):
        top = 2**32 - 1
        postings = np.zeros(200, dtype=POSTING_DTYPE)
        postings["text"] = top
        postings["left"] = 0
        postings["center"] = top
        postings["right"] = top
        encoded = encode_list(postings)
        assert np.all(encoded.widths[:, 1] == 32)  # center - left residual
        assert np.array_equal(roundtrip(postings), postings)
        assert np.array_equal(
            encoded.data, reference_encode_list(postings).data
        )

    def test_width_zero_columns_all_zero_postings(self):
        postings = np.zeros(150, dtype=POSTING_DTYPE)
        encoded = encode_list(postings)
        assert np.all(encoded.widths == 0)
        assert encoded.data.size == 0
        assert np.array_equal(roundtrip(postings), postings)

    def test_empty_list(self):
        empty = np.empty(0, dtype=POSTING_DTYPE)
        encoded = encode_list(empty)
        assert encoded.count == 0 and encoded.num_blocks == 0
        assert roundtrip(empty).size == 0

    def test_compresses_typical_lists(self):
        postings = make_postings(2000, seed=11, position_scale=5000)
        encoded = encode_list(postings)
        assert encoded.data.size * 2 < postings.size * POSTING_BYTES

    def test_rejects_unsorted(self):
        postings = make_postings(10, seed=3)
        postings["text"] = postings["text"][::-1].copy()
        if postings["text"][0] > postings["text"][-1]:
            with pytest.raises(InvalidParameterError):
                encode_list(postings)

    def test_list_columns_block_leading_delta_is_zero(self):
        postings = make_postings(400, seed=6)
        delta = list_columns(postings)[0]
        assert np.all(delta[::BLOCK_POSTINGS] == 0)


# ---------------------------------------------------------------------------
# v1 <-> v2 search equivalence across every reader backend
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus_setup(tmp_path_factory):
    data = synthweb(
        num_texts=130,
        mean_length=150,
        vocab_size=512,
        duplicate_rate=0.3,
        span_length=48,
        mutation_rate=0.03,
        seed=23,
    )
    family = HashFamily(k=8, seed=5)
    memory = build_memory_index(data.corpus, family, t=25, vocab_size=512)
    v1_dir = tmp_path_factory.mktemp("codec-v1")
    v2_dir = tmp_path_factory.mktemp("codec-v2")
    write_index(memory, v1_dir, zonemap_step=8, zonemap_min_list=16)
    write_index(memory, v2_dir, zonemap_step=8, zonemap_min_list=16, codec="packed")
    return data, family, memory, v1_dir, v2_dir


def reader_backends(memory, v1_dir, v2_dir):
    disk_v2 = DiskInvertedIndex(v2_dir)
    return {
        "memory": memory,
        "disk-v1": DiskInvertedIndex(v1_dir),
        "disk-v2": disk_v2,
        "cached-v2": CachedIndexReader(DiskInvertedIndex(v2_dir)),
        "incremental-v2": IncrementalIndex(disk_v2, vocab_size=512),
    }


class TestBackendEquivalence:
    def test_payload_actually_smaller(self, corpus_setup):
        _, _, memory, v1_dir, v2_dir = corpus_setup
        v1, v2 = DiskInvertedIndex(v1_dir), DiskInvertedIndex(v2_dir)
        assert v1.nbytes == memory.nbytes
        assert v2.nbytes * 2 < v1.nbytes
        assert v1.codec == "raw" and v2.codec == "packed"

    def test_every_list_identical(self, corpus_setup):
        _, family, memory, v1_dir, v2_dir = corpus_setup
        backends = reader_backends(memory, v1_dir, v2_dir)
        for func in range(family.k):
            for minhash, postings in memory.iter_lists(func):
                for name, reader in backends.items():
                    assert np.array_equal(
                        reader.load_list(func, minhash), postings
                    ), (name, func, minhash)

    def test_point_reads_identical(self, corpus_setup):
        _, family, memory, v1_dir, v2_dir = corpus_setup
        backends = reader_backends(memory, v1_dir, v2_dir)
        rng = np.random.default_rng(1)
        for func in range(family.k):
            lists = list(memory.iter_lists(func))
            minhash, postings = max(lists, key=lambda item: item[1].size)
            probe = int(rng.choice(postings["text"]))
            expected_one = postings[postings["text"] == probe]
            wanted = np.unique(
                rng.choice(postings["text"], size=min(6, postings.size))
            ).astype(np.int64)
            expected_many = postings[np.isin(postings["text"], wanted)]
            for name, reader in backends.items():
                assert np.array_equal(
                    reader.load_text_windows(func, minhash, probe), expected_one
                ), name
                assert np.array_equal(
                    reader.load_texts_windows(func, minhash, wanted), expected_many
                ), name

    @pytest.mark.parametrize("theta", [0.6, 0.8])
    def test_search_results_identical(self, corpus_setup, theta):
        data, family, memory, v1_dir, v2_dir = corpus_setup
        backends = reader_backends(memory, v1_dir, v2_dir)
        queries = [
            np.asarray(data.corpus[i])[:64] for i in range(0, 120, 7)
        ]
        searchers = {
            name: NearDuplicateSearcher(reader, long_list_cutoff=64)
            for name, reader in backends.items()
        }
        for query in queries:
            reference = searchers["memory"].search(query, theta)
            for name, searcher in searchers.items():
                result = searcher.search(query, theta)
                assert result.matches == reference.matches, name

    def test_to_memory_identical_across_codecs(self, corpus_setup):
        _, family, memory, v1_dir, v2_dir = corpus_setup
        m1 = DiskInvertedIndex(v1_dir).to_memory()
        m2 = DiskInvertedIndex(v2_dir).to_memory()
        for func in range(family.k):
            for (k0, p0), (k1, p1), (k2, p2) in zip(
                memory.iter_lists(func), m1.iter_lists(func), m2.iter_lists(func)
            ):
                assert k0 == k1 == k2
                assert np.array_equal(p0, p1) and np.array_equal(p0, p2)

    def test_v2_reader_reports_compression_in_io_stats(self, corpus_setup):
        _, family, memory, _, v2_dir = corpus_setup
        disk = DiskInvertedIndex(v2_dir)
        func = 0
        minhash, postings = max(
            memory.iter_lists(func), key=lambda item: item[1].size
        )
        disk.io_stats.reset()
        disk.load_list(func, minhash)
        assert disk.io_stats.decoded_bytes == postings.size * POSTING_BYTES
        assert disk.io_stats.bytes_read < disk.io_stats.decoded_bytes

    def test_validate_passes_on_packed_index(self, corpus_setup):
        data, _, _, _, v2_dir = corpus_setup
        report = validate_index(DiskInvertedIndex(v2_dir), data.corpus)
        assert report.ok, report.errors


# ---------------------------------------------------------------------------
# Error paths: corruption, truncation, partial builds
# ---------------------------------------------------------------------------
def clone_index(source, destination):
    destination.mkdir()
    for path in source.iterdir():
        (destination / path.name).write_bytes(path.read_bytes())
    return destination


class TestErrorPaths:
    def test_truncated_v2_payload_rejected_at_open(self, corpus_setup, tmp_path):
        *_, v2_dir = corpus_setup
        clone = clone_index(v2_dir, tmp_path / "trunc")
        payload = clone / "index.postings.bin"
        payload.write_bytes(payload.read_bytes()[:-7])
        with pytest.raises(IndexFormatError, match="truncated|expected"):
            DiskInvertedIndex(clone)

    def test_partial_build_without_meta_is_explained(self, corpus_setup, tmp_path):
        *_, v2_dir = corpus_setup
        clone = clone_index(v2_dir, tmp_path / "partial")
        (clone / "index.meta.json").unlink()
        with pytest.raises(IndexFormatError, match="partial build"):
            DiskInvertedIndex(clone)

    def test_empty_directory_still_plain_missing_meta(self, tmp_path):
        with pytest.raises(IndexFormatError, match="missing"):
            DiskInvertedIndex(tmp_path)

    def test_version_codec_mismatch_rejected(self, corpus_setup, tmp_path):
        *_, v2_dir = corpus_setup
        clone = clone_index(v2_dir, tmp_path / "vmix")
        meta_path = clone / "index.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 1  # packed codec claims to be v1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexFormatError, match="codec"):
            DiskInvertedIndex(clone)

    def test_unknown_codec_rejected(self, corpus_setup, tmp_path):
        *_, v2_dir = corpus_setup
        clone = clone_index(v2_dir, tmp_path / "badcodec")
        meta_path = clone / "index.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["codec"] = "zstd"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexFormatError, match="codec"):
            DiskInvertedIndex(clone)

    def test_corrupt_block_detected_by_validation(self, corpus_setup, tmp_path):
        *_, v2_dir = corpus_setup
        clone = clone_index(v2_dir, tmp_path / "corrupt")
        payload_path = clone / "index.postings.bin"
        payload = bytearray(payload_path.read_bytes())
        # Flip every byte of a payload stretch: decoded columns no longer
        # match the stored minimal widths / first_text entries.
        lo, hi = len(payload) // 4, len(payload) // 4 + 256
        for position in range(lo, min(hi, len(payload))):
            payload[position] ^= 0xFF
        payload_path.write_bytes(bytes(payload))
        report = validate_index(DiskInvertedIndex(clone))
        assert not report.ok

    def test_meta_commit_leaves_no_temp_file(self, corpus_setup):
        *_, v2_dir = corpus_setup
        assert not (v2_dir / "index.meta.json.tmp").exists()
        assert (v2_dir / "index.meta.json").exists()

    def test_block_count_mismatch_rejected(self, corpus_setup, tmp_path):
        *_, v2_dir = corpus_setup
        clone = clone_index(v2_dir, tmp_path / "blkmiss")
        convert_directory(clone, "npz")
        with np.load(clone / "index.dir.npz") as archive:
            arrays = {name: archive[name] for name in archive.files}
        name = "blk_first_0"
        if arrays[name].size:
            arrays[name] = arrays[name][:-1]
            np.savez(clone / "index.dir.npz", **arrays)
            with pytest.raises(IndexFormatError, match="block"):
                DiskInvertedIndex(clone)


# ---------------------------------------------------------------------------
# QueryStats.merge and its consumers (satellite bugfix)
# ---------------------------------------------------------------------------
class TestQueryStatsMerge:
    def test_merge_covers_every_field(self):
        import dataclasses

        left = QueryStats()
        right = QueryStats(
            **{
                spec.name: index + 1
                for index, spec in enumerate(dataclasses.fields(QueryStats()))
            }
        )
        left.merge(right)
        for spec in dataclasses.fields(left):
            assert getattr(left, spec.name) == getattr(right, spec.name), spec.name
        left.merge(right)
        assert left.point_reads == 2 * right.point_reads

    def test_batch_stats_add_query_keeps_point_reads(self):
        stats = BatchStats()
        stats.add_query(
            QueryStats(
                total_seconds=9.0,
                io_seconds=1.0,
                io_bytes=64,
                io_calls=2,
                lists_loaded=3,
                candidates=5,
                texts_matched=1,
                point_reads=7,
            )
        )
        assert stats.point_reads == 7
        assert stats.io_bytes == 64
        assert stats.io_calls == 2
        assert stats.lists_loaded == 3
        assert stats.candidates == 5
        assert stats.texts_matched == 1
        # Wall time is tracked separately; the per-query total must not
        # leak into it, while the derived cpu share must.
        assert stats.total_seconds == 0.0
        assert stats.cpu_seconds == pytest.approx(8.0)

    def test_sharded_search_propagates_point_reads(self, corpus_setup):
        from repro.index.sharded import ShardedIndex, ShardedSearcher

        data, family, *_ = corpus_setup
        sharded = ShardedIndex.build(
            data.corpus, family, 25, num_shards=3, vocab_size=512
        )
        searcher = ShardedSearcher(sharded, long_list_cutoff=8)
        probe = None
        for i in range(40):
            result = searcher.search(np.asarray(data.corpus[i])[:64], 0.6)
            if result.stats.point_reads:
                probe = result
                break
        assert probe is not None, "workload produced no long-list point reads"
        assert probe.stats.lists_loaded > 0


# ---------------------------------------------------------------------------
# Writer integration: sharded disk shards, merge recompression, engine
# ---------------------------------------------------------------------------
class TestPackedIntegration:
    def test_sharded_build_to_disk_packed(self, corpus_setup, tmp_path):
        from repro.index.sharded import ShardedIndex, ShardedSearcher

        data, family, *_ = corpus_setup
        in_memory = ShardedIndex.build(
            data.corpus, family, 25, num_shards=2, vocab_size=512
        )
        on_disk = ShardedIndex.build(
            data.corpus,
            family,
            25,
            num_shards=2,
            vocab_size=512,
            directory=str(tmp_path / "shards"),
            codec="packed",
        )
        assert (tmp_path / "shards" / "shard0" / "index.meta.json").exists()
        for shard in on_disk.shards:
            assert shard.index.codec == "packed"
        a, b = ShardedSearcher(in_memory), ShardedSearcher(on_disk)
        for i in range(0, 30, 5):
            query = np.asarray(data.corpus[i])[:64]
            assert a.search(query, 0.7).matches == b.search(query, 0.7).matches

    def test_merge_recompresses_v1_sources_to_v2(self, corpus_setup, tmp_path):
        from repro.index.merge import merge_disk_indexes

        _, family, memory, v1_dir, _ = corpus_setup
        merged_dir = merge_disk_indexes(
            [v1_dir], tmp_path / "merged-v2", text_offsets=[0], codec="packed"
        )
        merged = DiskInvertedIndex(merged_dir)
        assert merged.codec == "packed"
        for func in range(family.k):
            for minhash, postings in memory.iter_lists(func):
                assert np.array_equal(merged.load_list(func, minhash), postings)

    def test_engine_save_load_packed(self, tmp_path):
        from repro.engine import NearDupEngine

        texts = [
            f"the quick brown fox jumps over the lazy dog variant {i} "
            "with some shared boilerplate text repeated across documents"
            for i in range(30)
        ]
        engine = NearDupEngine.from_texts(
            texts, k=8, t=10, vocab_size=300, codec="packed"
        )
        assert engine.codec == "packed"
        saved = engine.save(tmp_path / "engine")
        reloaded = NearDupEngine.load(saved)
        assert reloaded.index.codec == "packed"
        assert reloaded.codec == "packed"
        for query in texts[:5]:
            assert [
                (hit.text_id, hit.start, hit.end)
                for hit in engine.search(query, 0.8)
            ] == [
                (hit.text_id, hit.start, hit.end)
                for hit in reloaded.search(query, 0.8)
            ]

    def test_external_build_packed_matches_memory(self, tmp_path):
        from repro.index.external import ExternalBuildConfig, build_external_index

        data = synthweb(
            num_texts=60, mean_length=120, vocab_size=256, seed=31
        )
        family = HashFamily(k=4, seed=7)
        memory = build_memory_index(data.corpus, family, t=20, vocab_size=256)
        config = ExternalBuildConfig(
            batch_texts=16, num_partitions=4, codec="packed"
        )
        build_external_index(
            data.corpus, family, 20, tmp_path / "ext", vocab_size=256, config=config
        )
        disk = DiskInvertedIndex(tmp_path / "ext")
        assert disk.codec == "packed"
        for func in range(family.k):
            for minhash, postings in memory.iter_lists(func):
                assert np.array_equal(disk.load_list(func, minhash), postings)

    def test_cli_build_packed(self, tmp_path):
        from repro.cli import main
        from repro.corpus.store import write_corpus

        data = synthweb(num_texts=40, mean_length=100, vocab_size=256, seed=13)
        corpus_dir = tmp_path / "corpus"
        write_corpus(data.corpus, corpus_dir)
        index_dir = tmp_path / "index"
        code = main(
            [
                "build",
                str(corpus_dir),
                str(index_dir),
                "-k",
                "4",
                "-t",
                "20",
                "--codec",
                "packed",
            ]
        )
        assert code == 0
        assert DiskInvertedIndex(index_dir).codec == "packed"
