"""Tests for language-model quality evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import InMemoryCorpus
from repro.corpus.synthetic import zipf_corpus
from repro.exceptions import InvalidParameterError
from repro.lm.evaluation import (
    corpus_perplexity,
    distinct_n,
    evaluate_lm,
)
from repro.lm.models import train_model
from repro.lm.ngram import NGramConfig, NGramLM


@pytest.fixture(scope="module")
def split_corpus():
    full = zipf_corpus(80, mean_length=120, vocab_size=512, seed=31)
    train = InMemoryCorpus([np.array(full[i]) for i in range(60)])
    heldout = InMemoryCorpus([np.array(full[i]) for i in range(60, 80)])
    return train, heldout


class TestCorpusPerplexity:
    def test_finite_positive(self, split_corpus):
        train, heldout = split_corpus
        model = NGramLM(NGramConfig(order=3), 512).fit(train)
        ppl = corpus_perplexity(model, heldout, max_texts=5)
        assert 1.0 < ppl < 10_000.0

    def test_train_lower_than_heldout(self, split_corpus):
        """A fitted model scores its own training data better."""
        train, heldout = split_corpus
        model = NGramLM(NGramConfig(order=4, interpolation=0.9), 512).fit(train)
        assert corpus_perplexity(model, train, max_texts=8) < corpus_perplexity(
            model, heldout, max_texts=8
        )

    def test_validation(self, split_corpus):
        train, _ = split_corpus
        model = NGramLM(NGramConfig(order=2), 512).fit(train)
        with pytest.raises(InvalidParameterError):
            corpus_perplexity(model, train, max_texts=0)
        with pytest.raises(InvalidParameterError):
            corpus_perplexity(model, InMemoryCorpus([]))


class TestDistinctN:
    def test_all_unique(self):
        samples = [np.arange(10, dtype=np.uint32)]
        assert distinct_n(samples, 2) == 1.0

    def test_repetitive(self):
        samples = [np.zeros(10, dtype=np.uint32)]
        assert distinct_n(samples, 2) == pytest.approx(1 / 9)

    def test_across_samples(self):
        samples = [np.arange(5, dtype=np.uint32)] * 3  # same 4 bigrams x3
        assert distinct_n(samples, 2) == pytest.approx(4 / 12)

    def test_empty(self):
        assert distinct_n([], 2) == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            distinct_n([np.arange(5)], 0)


class TestEvaluateLM:
    def test_report_fields(self, split_corpus):
        train, heldout = split_corpus
        tier = train_model("medium", train, vocab_size=512)
        report = evaluate_lm(
            tier.model, train, heldout, model_name="medium", max_texts=5
        )
        assert report.model_name == "medium"
        assert report.num_parameters == tier.num_parameters
        assert report.heldout_perplexity > 0
        assert 0.0 <= report.distinct_2 <= 1.0
        assert report.generalization_gap == pytest.approx(
            report.heldout_perplexity - report.train_perplexity
        )

    def test_capacity_lowers_train_perplexity(self, split_corpus):
        """More capacity fits the training data better — the mechanism
        behind Figure 4's capacity -> memorization trend.  (On random
        synthetic text there is no transferable structure, so held-out
        perplexity does NOT improve — the gap widens instead, which is
        precisely the memorization signature.)"""
        train, heldout = split_corpus
        small = train_model("small", train, vocab_size=512)
        large = train_model("large", train, vocab_size=512)
        train_small = corpus_perplexity(small.model, train, max_texts=8)
        train_large = corpus_perplexity(large.model, train, max_texts=8)
        assert train_large < train_small
        gap_small = corpus_perplexity(small.model, heldout, max_texts=8) - train_small
        gap_large = corpus_perplexity(large.model, heldout, max_texts=8) - train_large
        assert gap_large > gap_small
