"""Stateful property test: IncrementalIndex vs a rebuild-from-scratch model.

A hypothesis rule-based state machine drives an
:class:`~repro.index.incremental.IncrementalIndex` through arbitrary
interleavings of appends, consolidations, and queries, checking after
every step that it answers exactly like an index rebuilt offline over
the same accumulated corpus.

Initial texts are forced to length ``>= t`` so every initial text owns
postings and the incremental id assignment coincides with positional
ids (an initial text shorter than ``t`` would leave no trace in the
main index, shifting ``_next_text_id`` — a documented property of the
constructor, exercised separately in ``tests/test_incremental.py``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.index.incremental import IncrementalIndex

VOCAB = 24
T = 4
FAMILY = HashFamily(k=5, seed=77)

long_text = st.lists(st.integers(0, VOCAB - 1), min_size=T + 1, max_size=20).map(
    lambda xs: np.asarray(xs, dtype=np.uint32)
)
any_text = st.lists(st.integers(0, VOCAB - 1), min_size=1, max_size=20).map(
    lambda xs: np.asarray(xs, dtype=np.uint32)
)


def result_set(index, query, theta):
    result = NearDuplicateSearcher(index).search(query, theta)
    return {
        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
        for m in result.matches
        for r in m.rectangles
    }


class IncrementalIndexMachine(RuleBasedStateMachine):
    @initialize(initial=st.lists(long_text, min_size=1, max_size=3))
    def start(self, initial):
        self.texts = list(initial)
        main = build_memory_index(
            InMemoryCorpus(self.texts), FAMILY, T, vocab_size=VOCAB
        )
        self.incremental = IncrementalIndex(main, VOCAB, merge_threshold=10**9)
        assert self.incremental._next_text_id == len(self.texts)

    @rule(text=any_text)
    def append(self, text):
        new_id = self.incremental.append_text(text)
        assert new_id == len(self.texts)
        self.texts.append(text)

    @rule()
    def consolidate(self):
        self.incremental.consolidate()

    @rule(probe=st.integers(0, 10**6), theta=st.sampled_from([0.4, 0.8, 1.0]))
    def query_matches_rebuild(self, probe, theta):
        text = self.texts[probe % len(self.texts)]
        query = text[: max(1, text.size // 2)]
        rebuilt = build_memory_index(
            InMemoryCorpus(self.texts), FAMILY, T, vocab_size=VOCAB
        )
        assert result_set(self.incremental, query, theta) == result_set(
            rebuilt, query, theta
        )

    @invariant()
    def posting_count_consistent(self):
        rebuilt = build_memory_index(
            InMemoryCorpus(self.texts), FAMILY, T, vocab_size=VOCAB
        )
        assert self.incremental.num_postings == rebuilt.num_postings


IncrementalIndexMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=8, deadline=None
)
TestIncrementalIndexStateful = IncrementalIndexMachine.TestCase
