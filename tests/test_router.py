"""Scatter-gather router tests (ISSUE 7).

The identity tests run a real fleet inside one process: three shard
engines cut from the planted corpus by :func:`build_shard_fleet`, each
served by a :class:`SearchService` on an ephemeral port, fronted by a
:class:`RouterService` — and every routed answer is compared byte for
byte against an in-process :class:`ShardedSearcher` over the same
partition (matches, spans, re-numbered text ids, and the deterministic
counters of the merged ``QueryStats``).

Partial-result behavior is exercised deterministically: a stopped
shard (connection refused) and a shard whose batcher is held at the
pause gate (deadline exceeded) both yield ``"partial": true`` plus the
failing shard's name, without sleeping on races.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.engine import NearDupEngine
from repro.exceptions import InvalidParameterError
from repro.index.sharded import ShardedIndex, ShardedSearcher, shard_ranges
from repro.service import (
    AsyncServiceClient,
    HashRing,
    RemoteError,
    RouterConfig,
    RouterService,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    ShardEntry,
    ShardMap,
    build_shard_fleet,
    result_to_wire,
)
from repro.service.router import discover_shard_fleet
from repro.service.server import load_served_engine

NUM_SHARDS = 3

#: QueryStats fields that are pure functions of (index, query, theta) —
#: timing and io fields vary with cache temperature, these never do.
DETERMINISTIC_STATS = (
    "lists_loaded",
    "long_lists",
    "groups_scanned",
    "candidates",
    "texts_matched",
    "point_reads",
)


def canonical(wire) -> str:
    return json.dumps(wire, sort_keys=True)


# ----------------------------------------------------------------------
# Shard map + consistent-hash ring (no server)
# ----------------------------------------------------------------------
names_strategy = st.lists(
    st.text(alphabet="abcdefghijklmnop0123456789", min_size=1, max_size=8),
    min_size=1,
    max_size=8,
    unique=True,
)
keys_strategy = st.lists(
    st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=50
)


class TestHashRing:
    @given(names=names_strategy, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_total_and_deterministic(self, names, keys):
        """Every key maps to a member, identically on a rebuilt ring."""
        first = HashRing(names)
        second = HashRing(list(names))
        for key in keys:
            owner = first.assign(key)
            assert owner in names
            assert second.assign(key) == owner

    @given(names=names_strategy, keys=keys_strategy)
    @settings(max_examples=50, deadline=None)
    def test_adding_a_shard_never_moves_keys_between_survivors(
        self, names, keys
    ):
        """The consistent-hash contract: growth only steals for the
        newcomer; no key is shuffled between two pre-existing shards."""
        newcomer = "zz-new-shard"
        assert newcomer not in names
        before = HashRing(names)
        after = HashRing(list(names) + [newcomer])
        for key in keys:
            old, new = before.assign(key), after.assign(key)
            assert new == old or new == newcomer

    def test_remap_fraction_is_about_one_over_n(self):
        """Adding the 9th shard should move ~1/9 of keys (blake2b is
        unsalted, so this is exact and reproducible)."""
        names = [f"s{i}" for i in range(8)]
        before = HashRing(names)
        after = HashRing(names + ["s8"])
        keys = range(4000)
        moved = sum(before.assign(k) != after.assign(k) for k in keys)
        fraction = moved / len(range(4000))
        assert 0.03 < fraction < 0.30

    def test_assignments_identical_across_processes(self):
        """The ring must not depend on the per-process hash salt."""
        ring = HashRing(["alpha", "beta", "gamma"])
        local = [ring.assign(key) for key in range(100)]
        code = (
            "from repro.service.shardmap import HashRing;"
            "ring = HashRing(['alpha', 'beta', 'gamma']);"
            "print([ring.assign(key) for key in range(100)])"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        env["PYTHONHASHSEED"] = "12345"  # a salt the builtin hash would see
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert eval(out.stdout.strip()) == local

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidParameterError):
            HashRing([])
        with pytest.raises(InvalidParameterError):
            HashRing(["a", "a"])
        with pytest.raises(InvalidParameterError):
            HashRing(["a"], replicas=0)


class TestShardMap:
    def entries(self):
        return [
            ShardEntry("s0", "127.0.0.1", 9000, 0, 10),
            ShardEntry("s1", "127.0.0.1", 9001, 10, 7),
            ShardEntry("s2", "127.0.0.1", 9002, 17, 5),
        ]

    def test_locate_translates_global_to_local(self):
        shard_map = ShardMap(self.entries())
        assert shard_map.num_texts == 22
        entry, local = shard_map.locate(0)
        assert (entry.name, local) == ("s0", 0)
        entry, local = shard_map.locate(12)
        assert (entry.name, local) == ("s1", 2)
        entry, local = shard_map.locate(21)
        assert (entry.name, local) == ("s2", 4)
        with pytest.raises(InvalidParameterError):
            shard_map.locate(22)
        with pytest.raises(InvalidParameterError):
            shard_map.locate(-1)

    def test_rejects_gaps_and_overlaps(self):
        broken = [
            ShardEntry("s0", "h", 1, 0, 10),
            ShardEntry("s1", "h", 2, 11, 5),  # gap at 10
        ]
        with pytest.raises(InvalidParameterError):
            ShardMap(broken)
        overlapping = [
            ShardEntry("s0", "h", 1, 0, 10),
            ShardEntry("s1", "h", 2, 9, 5),
        ]
        with pytest.raises(InvalidParameterError):
            ShardMap(overlapping)

    def test_json_round_trip(self, tmp_path):
        shard_map = ShardMap(self.entries(), replicas=32)
        path = shard_map.save(tmp_path / "shardmap.json")
        loaded = ShardMap.load(path)
        assert loaded.to_dict() == shard_map.to_dict()
        assert [entry.name for entry in loaded] == ["s0", "s1", "s2"]
        assert loaded.replicas == 32
        # and the ring agrees too
        for key in range(50):
            assert loaded.shard_for_key(key).name == shard_map.shard_for_key(key).name

    def test_load_rejects_bad_documents(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            ShardMap.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(InvalidParameterError):
            ShardMap.load(bad)
        bad.write_text(json.dumps({"format": 999, "shards": []}))
        with pytest.raises(InvalidParameterError):
            ShardMap.load(bad)

    @given(total=st.integers(0, 500), num_shards=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_shard_ranges_partition_exactly(self, total, num_shards):
        ranges = shard_ranges(total, num_shards)
        assert ranges[0][0] == 0
        expected = 0
        for start, count in ranges:
            assert start == expected
            expected += count
        assert expected == total
        assert len(ranges) <= max(1, num_shards)


# ----------------------------------------------------------------------
# A live fleet: shard servers + router, all on ephemeral ports
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine(planted_data, planted_index) -> NearDupEngine:
    return NearDupEngine(planted_data.corpus, planted_index)


@pytest.fixture(scope="module")
def queries(planted_data) -> list[np.ndarray]:
    corpus = planted_data.corpus
    return [np.asarray(corpus[text_id])[:40] for text_id in range(6)]


@pytest.fixture(scope="module")
def fleet_dir(engine, tmp_path_factory) -> Path:
    root = tmp_path_factory.mktemp("fleet")
    build_shard_fleet(engine, root, num_shards=NUM_SHARDS, base_port=8101)
    return root


@pytest.fixture(scope="module")
def fleet(fleet_dir):
    """Shard servers over the saved fleet + a router, ready to query."""
    saved_map = ShardMap.load(fleet_dir / "shardmap.json")
    runners = []
    live_entries = []
    for entry in saved_map:
        shard_engine = load_served_engine(str(fleet_dir / entry.name))
        runner = ServiceRunner(
            shard_engine, ServiceConfig(port=0, warmup_lists=0, workers=1)
        ).start()
        runners.append(runner)
        live_entries.append(
            ShardEntry(entry.name, runner.host, runner.port, entry.first_text, entry.count)
        )
    live_map = ShardMap(live_entries)
    router = RouterService(live_map, RouterConfig(port=0))
    router_runner = ServiceRunner(service=router).start()
    yield {
        "router": router,
        "runner": router_runner,
        "shards": runners,
        "map": live_map,
    }
    router_runner.stop()
    for runner in runners:
        runner.stop()


@pytest.fixture(scope="module")
def direct(engine) -> ShardedSearcher:
    """The in-process reference over the identical partition."""
    sharded = ShardedIndex.build(
        engine.corpus,
        engine.index.family,
        engine.index.t,
        num_shards=NUM_SHARDS,
    )
    return ShardedSearcher(sharded)


@pytest.fixture
def client(fleet) -> ServiceClient:
    with ServiceClient(fleet["runner"].host, fleet["runner"].port) as active:
        yield active


class TestRoutedIdentity:
    @pytest.mark.parametrize("theta", [0.5, 0.8])
    def test_search_matches_direct_sharded_search(
        self, client, direct, queries, theta
    ):
        for query in queries:
            response = client.search(query, theta)
            assert response["ok"] is True
            assert "partial" not in response
            want = result_to_wire(direct.search(query, theta))
            assert canonical(response["result"]) == canonical(want)

    def test_merged_stats_counters_match_direct(self, client, direct, queries):
        for query in queries[:3]:
            response = client.search(query, 0.8)
            want = direct.search(query, 0.8).stats
            got = response["server"]["stats"]
            for field in DETERMINISTIC_STATS:
                assert got[field] == getattr(want, field), field

    def test_text_ids_are_renumbered_into_every_shard_range(
        self, client, fleet, planted_data
    ):
        """Query a text owned by each shard: the routed answer must
        contain the *global* id (a self-match), proving the per-shard
        local ids really get the ``first_text`` offset added."""
        corpus = planted_data.corpus
        for entry in fleet["map"]:
            probe_id = entry.first_text + entry.count // 2
            query = np.asarray(corpus[probe_id])[:40]
            response = client.search(query, 0.8)
            matched = {match["text_id"] for match in response["result"]["matches"]}
            assert probe_id in matched
            assert all(0 <= text_id < fleet["map"].num_texts for text_id in matched)

    def test_batch_matches_direct(self, client, direct, queries):
        response = client.batch(queries[:3], 0.6)
        assert response["ok"] is True
        wants = [result_to_wire(direct.search(query, 0.6)) for query in queries[:3]]
        assert len(response["results"]) == 3
        for got, want in zip(response["results"], wants):
            assert canonical(got) == canonical(want)
        assert len(response["server"]["stats"]) == 3

    def test_text_queries_are_rejected(self, client):
        with pytest.raises(RemoteError) as info:
            client.search("raw text query")
        assert info.value.status == 400
        assert "tokenizer" in str(info.value)

    def test_unknown_paths_and_methods(self, fleet):
        import http.client

        connection = http.client.HTTPConnection(
            fleet["runner"].host, fleet["runner"].port, timeout=10
        )
        connection.request("GET", "/nope")
        assert connection.getresponse().status == 404
        connection.close()


class TestRouterEndpoints:
    def test_health_aggregates_shards(self, client, fleet):
        health = client.health()
        assert health["ok"] is True
        assert health["role"] == "router"
        assert health["shards_healthy"] == NUM_SHARDS
        assert health["shards_total"] == NUM_SHARDS
        assert health["texts"] == fleet["map"].num_texts
        names = {shard["name"] for shard in health["shards"]}
        assert names == {entry.name for entry in fleet["map"]}

    def test_stats_aggregates_shards_and_histograms(self, client, queries):
        client.search(queries[0], 0.8)
        stats = client.stats()
        assert stats["ok"] is True
        router_block = stats["router"]
        assert router_block["completed"] >= 1
        assert router_block["fanout_requests"] >= NUM_SHARDS
        assert router_block["latency"]["count"] >= 1
        assert router_block["shard_latency"]["count"] >= NUM_SHARDS
        # per-shard service snapshots and their sum
        assert set(stats["shards"]) == {f"shard{i}" for i in range(NUM_SHARDS)}
        assert stats["aggregate"]["completed"] >= NUM_SHARDS
        assert set(stats["pooled_connections"]) == set(stats["shards"])

    def test_connection_pool_reuses_sockets(self, fleet, queries):
        router = fleet["router"]

        def pooled_total() -> int:
            return sum(
                state.client.pooled_connections
                for replica_set in router._replicas.values()
                for state in replica_set.replicas
            )

        with ServiceClient(fleet["runner"].host, fleet["runner"].port) as probe:
            for _ in range(4):
                probe.search(queries[0], 0.8)
            after = fleet["runner"].call(pooled_total)
        # one keep-alive connection per shard, reused — not one per request
        assert after == NUM_SHARDS


# ----------------------------------------------------------------------
# Partial results (a degraded 2-shard fleet, function-scoped)
# ----------------------------------------------------------------------
@pytest.fixture
def small_fleet(tmp_path):
    rng = np.random.default_rng(5)
    from repro.corpus.corpus import InMemoryCorpus

    texts = [
        rng.integers(0, 40, size=int(rng.integers(30, 60))).astype(np.uint32)
        for _ in range(20)
    ]
    engine = NearDupEngine.from_corpus(InMemoryCorpus(texts), k=8, t=10)
    build_shard_fleet(engine, tmp_path, num_shards=2, base_port=8101)
    saved_map = ShardMap.load(tmp_path / "shardmap.json")
    runners = []
    entries = []
    for entry in saved_map:
        shard_engine = load_served_engine(str(tmp_path / entry.name))
        runner = ServiceRunner(
            shard_engine, ServiceConfig(port=0, warmup_lists=0, workers=1)
        ).start()
        runners.append(runner)
        entries.append(
            ShardEntry(entry.name, runner.host, runner.port, entry.first_text, entry.count)
        )
    router = RouterService(ShardMap(entries), RouterConfig(port=0))
    router_runner = ServiceRunner(service=router).start()
    yield {
        "router_runner": router_runner,
        "shards": runners,
        "query": texts[3][:30].tolist(),
        "engine": engine,
    }
    router_runner.stop()
    for runner in runners:
        runner.stop()


class TestPartialResults:
    def test_stopped_shard_yields_partial(self, small_fleet):
        small_fleet["shards"][1].stop()
        with ServiceClient(
            small_fleet["router_runner"].host, small_fleet["router_runner"].port
        ) as client:
            response = client.search(small_fleet["query"], 0.5)
        assert response["ok"] is True
        assert response["partial"] is True
        failed = response["failed_shards"]
        assert [failure["shard"] for failure in failed] == ["shard1"]
        assert failed[0]["code"] in (502, 503)
        # surviving shard's ids are all within its own range
        count0 = small_fleet["engine"].num_texts // 2
        for match in response["result"]["matches"]:
            assert match["text_id"] < count0

    def test_deadline_exceeded_shard_yields_partial_504(self, small_fleet):
        slow = small_fleet["shards"][0]
        slow.call(slow.service.batcher.pause)
        try:
            with ServiceClient(
                small_fleet["router_runner"].host,
                small_fleet["router_runner"].port,
            ) as client:
                response = client.search(
                    small_fleet["query"], 0.5, timeout_ms=400
                )
        finally:
            slow.call(slow.service.batcher.resume)
        assert response["partial"] is True
        assert [failure["shard"] for failure in response["failed_shards"]] == [
            "shard0"
        ]
        assert response["failed_shards"][0]["code"] == 504

    def test_every_shard_down_is_an_error(self, small_fleet):
        for runner in small_fleet["shards"]:
            runner.stop()
        with ServiceClient(
            small_fleet["router_runner"].host, small_fleet["router_runner"].port
        ) as client:
            with pytest.raises(RemoteError) as info:
                client.search(small_fleet["query"], 0.5)
        assert info.value.status == 502


# ----------------------------------------------------------------------
# Fleet layout on disk
# ----------------------------------------------------------------------
class TestFleetLayout:
    def test_fleet_partition_matches_shard_ranges(self, fleet_dir, engine):
        shard_map = ShardMap.load(fleet_dir / "shardmap.json")
        want = shard_ranges(engine.num_texts, NUM_SHARDS)
        got = [(entry.first_text, entry.count) for entry in shard_map]
        assert got == want
        for index, entry in enumerate(shard_map):
            assert entry.name == f"shard{index}"
            assert (fleet_dir / entry.name / "engine.meta.json").exists()

    def test_discover_rebuilds_a_missing_map(self, fleet_dir):
        saved = ShardMap.load(fleet_dir / "shardmap.json")
        (fleet_dir / "shardmap.json").unlink()
        rebuilt = discover_shard_fleet(fleet_dir, base_port=8101)
        assert [(e.name, e.first_text, e.count) for e in rebuilt] == [
            (e.name, e.first_text, e.count) for e in saved
        ]
        assert (fleet_dir / "shardmap.json").exists()


# ----------------------------------------------------------------------
# The async client's pool bookkeeping (no router)
# ----------------------------------------------------------------------
class TestAsyncServiceClient:
    def test_sequential_requests_share_one_connection(self, fleet, queries):
        shard = fleet["shards"][0]
        import asyncio

        async def exercise():
            client = AsyncServiceClient(shard.host, shard.port)
            try:
                for _ in range(3):
                    response = await client.health()
                    assert response["ok"] is True
                return client.pooled_connections
            finally:
                await client.close()

        assert asyncio.run(exercise()) == 1

    def test_timeout_discards_the_connection(self, small_fleet):
        shard = small_fleet["shards"][0]
        shard.call(shard.service.batcher.pause)
        import asyncio

        async def exercise():
            client = AsyncServiceClient(shard.host, shard.port)
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await client.search(
                        {"query": small_fleet["query"], "timeout_ms": 5000},
                        timeout=0.3,
                    )
                return client.pooled_connections
            finally:
                await client.close()

        try:
            assert asyncio.run(exercise()) == 0
        finally:
            shard.call(shard.service.batcher.resume)
