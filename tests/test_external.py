"""Tests for out-of-core index construction (hash aggregation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.corpus.store import DiskCorpus, write_corpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.external import (
    ExternalBuildConfig,
    SPILL_DTYPE,
    _partition_of,
    build_external_index,
)
from repro.index.storage import DiskInvertedIndex


def indexes_equal(a, b) -> bool:
    """Same keys and same postings per list for every hash function."""
    if a.family != b.family or a.t != b.t or a.num_postings != b.num_postings:
        return False
    for func in range(a.family.k):
        lists_a = dict(a.iter_lists(func))
        lists_b = dict(b.iter_lists(func))
        if lists_a.keys() != lists_b.keys():
            return False
        for key in lists_a:
            if not np.array_equal(lists_a[key], lists_b[key]):
                return False
    return True


class TestPartitioning:
    def test_partition_ids_in_range(self):
        records = np.zeros(100, dtype=SPILL_DTYPE)
        records["minhash"] = np.arange(100)
        parts = _partition_of(records, 8, salt=0)
        assert parts.min() >= 0 and parts.max() < 8

    def test_same_key_same_partition(self):
        records = np.zeros(4, dtype=SPILL_DTYPE)
        records["func"] = [1, 1, 2, 2]
        records["minhash"] = [9, 9, 9, 9]
        records["text"] = [0, 5, 0, 5]
        parts = _partition_of(records, 16, salt=0)
        assert parts[0] == parts[1]
        assert parts[2] == parts[3]

    def test_salt_changes_layout(self):
        records = np.zeros(256, dtype=SPILL_DTYPE)
        records["minhash"] = np.arange(256)
        a = _partition_of(records, 4, salt=0)
        b = _partition_of(records, 4, salt=1)
        assert not np.array_equal(a, b)


class TestConfig:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ExternalBuildConfig(batch_texts=0)
        with pytest.raises(InvalidParameterError):
            ExternalBuildConfig(num_partitions=1)
        with pytest.raises(InvalidParameterError):
            ExternalBuildConfig(memory_budget_bytes=1)


class TestExternalBuild:
    @pytest.fixture(scope="class")
    def corpora(self, tmp_path_factory):
        from repro.corpus.synthetic import synthweb

        data = synthweb(num_texts=150, mean_length=120, vocab_size=512, seed=33)
        directory = write_corpus(data.corpus, tmp_path_factory.mktemp("c") / "corpus")
        return data.corpus, DiskCorpus(directory)

    def test_matches_in_memory_build(self, corpora, tmp_path):
        memory_corpus, disk_corpus = corpora
        family = HashFamily(k=4, seed=17)
        reference = build_memory_index(memory_corpus, family, t=20, vocab_size=512)
        build_external_index(
            disk_corpus,
            family,
            20,
            tmp_path / "ext",
            vocab_size=512,
            config=ExternalBuildConfig(batch_texts=13, num_partitions=5),
        )
        external = DiskInvertedIndex(tmp_path / "ext").to_memory()
        assert indexes_equal(reference, external)

    def test_recursive_partitioning_path(self, corpora, tmp_path):
        """A tiny memory budget forces recursive re-partitioning."""
        memory_corpus, disk_corpus = corpora
        family = HashFamily(k=2, seed=5)
        reference = build_memory_index(memory_corpus, family, t=20, vocab_size=512)
        stats = build_external_index(
            disk_corpus,
            family,
            20,
            tmp_path / "deep",
            vocab_size=512,
            config=ExternalBuildConfig(
                batch_texts=20,
                num_partitions=3,
                memory_budget_bytes=4096,  # forces recursion
                max_recursion=3,
            ),
        )
        external = DiskInvertedIndex(tmp_path / "deep").to_memory()
        assert indexes_equal(reference, external)
        assert stats.windows_generated == reference.num_postings

    def test_spill_directory_cleaned(self, corpora, tmp_path):
        _, disk_corpus = corpora
        family = HashFamily(k=2, seed=1)
        build_external_index(disk_corpus, family, 20, tmp_path / "clean", vocab_size=512)
        assert not (tmp_path / "clean" / "spill").exists()

    def test_stats_two_passes(self, corpora, tmp_path):
        """Hash aggregation writes spills + final payload: bytes_written
        must be at least twice the final index payload size."""
        _, disk_corpus = corpora
        family = HashFamily(k=2, seed=2)
        stats = build_external_index(
            disk_corpus, family, 20, tmp_path / "st", vocab_size=512
        )
        disk = DiskInvertedIndex(tmp_path / "st")
        assert stats.bytes_written >= 2 * disk.nbytes
        assert stats.io_seconds > 0
        assert stats.generation_seconds > 0

    def test_t_validated(self, corpora, tmp_path):
        _, disk_corpus = corpora
        with pytest.raises(InvalidParameterError):
            build_external_index(
                disk_corpus, HashFamily(k=2), 0, tmp_path / "bad", vocab_size=512
            )

    def test_queries_agree_with_memory_index(self, corpora, tmp_path):
        from repro.core.search import NearDuplicateSearcher

        memory_corpus, disk_corpus = corpora
        family = HashFamily(k=8, seed=4)
        reference = build_memory_index(memory_corpus, family, t=20, vocab_size=512)
        build_external_index(
            disk_corpus, family, 20, tmp_path / "q", vocab_size=512
        )
        disk = DiskInvertedIndex(tmp_path / "q")
        query = np.asarray(memory_corpus[0])[:40]
        res_a = NearDuplicateSearcher(reference).search(query, 0.7)
        res_b = NearDuplicateSearcher(disk).search(query, 0.7)
        spans_a = {(s.text_id, s.start, s.end) for s in res_a.merged_spans()}
        spans_b = {(s.text_id, s.start, s.end) for s in res_b.merged_spans()}
        assert spans_a == spans_b
