"""Sidecar directory container tests (ISSUE 6).

The page-aligned mmap sidecar (``index.dir.bin``) replaces the zipped
``.npz`` archive as the default directory container.  The contract is
strict interchangeability: the same directory served from either
container answers every read and every search byte-identically — the
sidecar only changes *how* the arrays reach memory (one shared
zero-copy mapping instead of a per-process decompressed copy).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.synthetic import synthweb
from repro.exceptions import IndexFormatError
from repro.index import (
    CachedIndexReader,
    IncrementalIndex,
    SIDECAR_FILE,
    read_sidecar,
    write_sidecar,
)
from repro.index.builder import build_and_write_index, build_memory_index
from repro.index.sidecar import DATA_ALIGN, SECTION_ALIGN, read_toc
from repro.index.storage import DiskInvertedIndex, convert_directory, write_index
from repro.index.validate import validate_index
from repro.service.protocol import result_to_wire


@pytest.fixture(scope="module")
def planted(tmp_path_factory):
    """Corpus + packed index written in both containers."""
    data = synthweb(
        num_texts=120,
        mean_length=120,
        vocab_size=512,
        duplicate_rate=0.25,
        span_length=40,
        mutation_rate=0.04,
        seed=11,
    )
    family = HashFamily(k=6, seed=1)
    memory = build_memory_index(data.corpus, family, t=20, vocab_size=512)
    base = tmp_path_factory.mktemp("containers")
    sidecar_dir = base / "sidecar"
    npz_dir = base / "npz"
    write_index(memory, sidecar_dir, codec="packed", dir_format="sidecar")
    write_index(memory, npz_dir, codec="packed", dir_format="npz")
    return data, family, memory, sidecar_dir, npz_dir


# ----------------------------------------------------------------------
# The raw container format
# ----------------------------------------------------------------------
class TestSidecarFormat:
    def test_round_trip_arrays(self, tmp_path):
        arrays = {
            "a": np.arange(17, dtype=np.uint32),
            "b": np.arange(6, dtype=np.uint64).reshape(3, 2),
            "c": np.empty(0, dtype=np.uint8),
            "d": np.arange(12, dtype=np.uint8).reshape(-1, 4),
        }
        path = tmp_path / SIDECAR_FILE
        write_sidecar(path, arrays)
        loaded, mapping = read_sidecar(path)
        assert set(loaded) == set(arrays)
        for name, want in arrays.items():
            got = loaded[name]
            assert got.dtype == want.dtype
            assert got.shape == want.shape
            assert np.array_equal(got, want)
            assert not got.flags.writeable  # views into a read-only map

    def test_layout_is_aligned(self, tmp_path):
        path = tmp_path / SIDECAR_FILE
        write_sidecar(path, {"x": np.arange(5, dtype=np.uint32), "y": np.arange(3, dtype=np.uint64)})
        sections, data_start, size = read_toc(path)
        assert data_start % DATA_ALIGN == 0
        for section in sections:
            assert section["offset"] % SECTION_ALIGN == 0
            assert data_start + section["offset"] + section["nbytes"] <= size

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda raw: b"WRONGMAG" + raw[8:],
            lambda raw: raw[:20],
            lambda raw: raw[: len(raw) - 9],
        ],
        ids=["bad-magic", "truncated-toc", "truncated-data"],
    )
    def test_corruption_rejected(self, tmp_path, corrupt):
        path = tmp_path / SIDECAR_FILE
        write_sidecar(path, {"x": np.arange(4096, dtype=np.uint64)})
        path.write_bytes(corrupt(path.read_bytes()))
        with pytest.raises(IndexFormatError):
            read_sidecar(path)


# ----------------------------------------------------------------------
# Container interchangeability
# ----------------------------------------------------------------------
class TestContainerEquivalence:
    def test_meta_declares_container(self, planted):
        *_, sidecar_dir, npz_dir = planted
        assert DiskInvertedIndex(sidecar_dir).directory_format == "sidecar"
        assert DiskInvertedIndex(npz_dir).directory_format == "npz"

    def test_every_list_identical_across_backends(self, planted):
        _, family, memory, sidecar_dir, npz_dir = planted
        backends = {
            "memory": memory,
            "disk-sidecar": DiskInvertedIndex(sidecar_dir),
            "disk-npz": DiskInvertedIndex(npz_dir),
            "cached-sidecar": CachedIndexReader(DiskInvertedIndex(sidecar_dir)),
            "incremental-sidecar": IncrementalIndex(
                DiskInvertedIndex(sidecar_dir), vocab_size=512
            ),
        }
        for func in range(family.k):
            for minhash, postings in memory.iter_lists(func):
                for name, reader in backends.items():
                    assert np.array_equal(
                        reader.load_list(func, int(minhash)), postings
                    ), f"{name} diverged on func {func} list {minhash}"

    @pytest.mark.parametrize("theta", [1.0, 0.9, 0.8])
    def test_searches_byte_identical(self, planted, theta):
        data, *_ , sidecar_dir, npz_dir = planted
        from_sidecar = NearDuplicateSearcher(
            DiskInvertedIndex(sidecar_dir), corpus=data.corpus
        )
        from_npz = NearDuplicateSearcher(
            DiskInvertedIndex(npz_dir), corpus=data.corpus
        )
        for text_id in range(8):
            query = np.asarray(data.corpus[text_id])[:48]
            a = result_to_wire(from_sidecar.search(query, theta))
            b = result_to_wire(from_npz.search(query, theta))
            assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_convert_round_trip(self, planted, tmp_path):
        _, family, memory, sidecar_dir, _ = planted
        clone = tmp_path / "clone"
        clone.mkdir()
        for path in sidecar_dir.iterdir():
            (clone / path.name).write_bytes(path.read_bytes())
        convert_directory(clone, "npz")
        assert not (clone / SIDECAR_FILE).exists()
        assert DiskInvertedIndex(clone).directory_format == "npz"
        convert_directory(clone, "sidecar")
        assert not (clone / "index.dir.npz").exists()
        back = DiskInvertedIndex(clone)
        assert back.directory_format == "sidecar"
        for func in range(family.k):
            for minhash, postings in memory.iter_lists(func):
                assert np.array_equal(back.load_list(func, int(minhash)), postings)

    def test_validate_passes_both_containers(self, planted):
        data, *_ , sidecar_dir, npz_dir = planted
        for directory in (sidecar_dir, npz_dir):
            report = validate_index(DiskInvertedIndex(directory), data.corpus)
            assert report.ok, report.errors

    def test_validate_flags_stray_container(self, planted, tmp_path):
        *_, sidecar_dir, _ = planted
        clone = tmp_path / "stray"
        clone.mkdir()
        for path in sidecar_dir.iterdir():
            (clone / path.name).write_bytes(path.read_bytes())
        (clone / "index.dir.npz").write_bytes(b"junk")
        report = validate_index(DiskInvertedIndex(clone))
        assert not report.ok
        assert any("stray" in error for error in report.errors)


class TestBuilderDefaults:
    def test_build_emits_sidecar_by_default(self, tmp_path):
        data = synthweb(
            num_texts=30, mean_length=60, vocab_size=256,
            duplicate_rate=0.2, span_length=24, mutation_rate=0.05, seed=5,
        )
        out = tmp_path / "built"
        build_and_write_index(data.corpus, HashFamily(k=4, seed=0), 16, out)
        assert (out / SIDECAR_FILE).exists()
        assert not (out / "index.dir.npz").exists()
        assert DiskInvertedIndex(out).directory_format == "sidecar"
