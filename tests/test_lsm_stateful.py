"""Stateful property test: LiveIndex vs a rebuild-from-scratch model.

A hypothesis rule-based state machine drives a :class:`LiveIndex`
through arbitrary interleavings of appends, seals, compactions, and
queries, checking after every query that it answers byte-identically
to an offline :func:`build_memory_index` over the union corpus — the
paper's correctness contract for the streaming tier (invariant (9):
sealed runs hold disjoint ascending text-id ranges, so per-source list
concatenation preserves global text-id order).

Beyond the match rectangles, the content-determined
:class:`~repro.core.search.QueryStats` counters are compared too
(lists loaded, candidates, texts matched, ...): the union reader must
not just return the right answers but do the same logical work as a
monolithic index.  Timing and I/O-byte fields are excluded — they
depend on codec framing and reader layout, not query semantics.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.index.lsm import LiveIndex, LiveIndexConfig

VOCAB = 24
T = 4
FAMILY = HashFamily(k=5, seed=77)

#: QueryStats fields that are functions of index *content*, not layout.
CONTENT_STATS = (
    "lists_loaded",
    "long_lists",
    "groups_scanned",
    "candidates",
    "texts_matched",
    "point_reads",
)

any_text = st.lists(st.integers(0, VOCAB - 1), min_size=1, max_size=20).map(
    lambda xs: np.asarray(xs, dtype=np.uint32)
)


def result_set(result):
    return {
        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
        for m in result.matches
        for r in m.rectangles
    }


class LiveIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self._root = Path(tempfile.mkdtemp(prefix="lsm_stateful_"))

    @initialize()
    def start(self):
        self.texts: list[np.ndarray] = []
        self.live = LiveIndex(
            self._root,
            family=FAMILY,
            t=T,
            vocab_size=VOCAB,
            config=LiveIndexConfig(
                # Sealing is driven explicitly by the seal rule, so the
                # machine controls exactly which interleavings happen.
                seal_threshold_postings=10**9,
                compact_fanout=2,
                background_compaction=False,
            ),
        )

    def teardown(self):
        self.live.close()
        shutil.rmtree(self._root, ignore_errors=True)

    @rule(batch=st.lists(any_text, min_size=1, max_size=4))
    def append(self, batch):
        ids = self.live.append_texts(batch)
        assert ids == list(range(len(self.texts), len(self.texts) + len(batch)))
        self.texts.extend(batch)

    @rule()
    def seal(self):
        self.live.seal()

    @rule()
    def compact(self):
        self.live.compact()

    @rule(probe=st.integers(0, 10**6), theta=st.sampled_from([0.4, 0.8, 1.0]))
    def query_matches_rebuild(self, probe, theta):
        if not self.texts:
            return
        text = self.texts[probe % len(self.texts)]
        query = text[: max(1, text.size // 2)]
        rebuilt = build_memory_index(
            InMemoryCorpus(self.texts), FAMILY, T, vocab_size=VOCAB
        )
        expected = NearDuplicateSearcher(rebuilt).search(query, theta)
        actual = self.live.searcher().search(query, theta)
        assert result_set(actual) == result_set(expected)
        for field in CONTENT_STATS:
            assert getattr(actual.stats, field) == getattr(
                expected.stats, field
            ), field

    @invariant()
    def counts_consistent(self):
        assert self.live.num_texts == len(self.texts)
        assert self.live.total_tokens == sum(t.size for t in self.texts)


LiveIndexMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=10, deadline=None
)
TestLiveIndexStateful = LiveIndexMachine.TestCase
