"""Tests for the synthetic corpus generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.verify import distinct_jaccard
from repro.corpus.synthetic import (
    inject_duplicates,
    minipile,
    synthweb,
    zipf_corpus,
)
from repro.exceptions import InvalidParameterError


class TestZipfCorpus:
    def test_shape(self):
        corpus = zipf_corpus(50, mean_length=40, vocab_size=500, seed=1)
        assert len(corpus) == 50
        assert corpus.total_tokens >= 50 * 8

    def test_deterministic(self):
        a = zipf_corpus(10, 30, 100, seed=5)
        b = zipf_corpus(10, 30, 100, seed=5)
        for i in range(10):
            assert np.array_equal(a[i], b[i])

    def test_seed_changes_output(self):
        a = zipf_corpus(10, 30, 100, seed=5)
        b = zipf_corpus(10, 30, 100, seed=6)
        assert any(not np.array_equal(a[i], b[i]) for i in range(10))

    def test_token_ids_in_vocab(self):
        corpus = zipf_corpus(20, 30, 64, seed=0)
        for text in corpus:
            assert int(text.max()) < 64

    def test_zipf_skew(self):
        """The most frequent token should dominate (Zipf head)."""
        corpus = zipf_corpus(100, 100, 1000, seed=2)
        counts = np.zeros(1000, dtype=np.int64)
        for text in corpus:
            counts += np.bincount(text, minlength=1000)
        ordered = np.sort(counts)[::-1]
        assert ordered[0] > 5 * ordered[50]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            zipf_corpus(0, 30, 100)
        with pytest.raises(InvalidParameterError):
            zipf_corpus(10, 2, 100, min_length=8)
        with pytest.raises(InvalidParameterError):
            zipf_corpus(10, 30, 1)
        with pytest.raises(InvalidParameterError):
            zipf_corpus(10, 30, 100, paragraph_repeat_rate=1.5)

    def test_paragraph_repeats_create_internal_duplicates(self):
        """With the repeat knob, texts contain exact internal copies."""
        plain = zipf_corpus(60, 150, 5000, seed=4, paragraph_repeat_rate=0.0)
        repeated = zipf_corpus(60, 150, 5000, seed=4, paragraph_repeat_rate=1.0)

        def internal_duplication(corpus, n=12):
            hits = total = 0
            for text in corpus:
                seen = set()
                for start in range(0, text.size - n + 1, n):
                    key = text[start : start + n].tobytes()
                    total += 1
                    if key in seen:
                        hits += 1
                    seen.add(key)
            return hits / max(total, 1)

        assert internal_duplication(repeated) > internal_duplication(plain)

    def test_paragraph_repeats_searchable(self):
        """The engine finds the internal copy against itself (high-vocab
        corpus: an exact 20-token internal repeat is otherwise rare)."""
        from repro.core.hashing import HashFamily
        from repro.core.search import NearDuplicateSearcher
        from repro.index.builder import build_memory_index

        corpus = zipf_corpus(
            30, 200, 50_000, seed=8, paragraph_repeat_rate=1.0,
            zipf_exponent=0.5,
        )
        # Locate a within-text repeated 15-gram (the planted copy).
        probe = None
        for text_id in range(len(corpus)):
            text = np.ascontiguousarray(corpus[text_id])
            seen: dict[bytes, int] = {}
            for start in range(0, text.size - 15 + 1):
                key = text[start : start + 15].tobytes()
                if key in seen and abs(seen[key] - start) >= 15:
                    probe = (text_id, seen[key], start)
                    break
                seen.setdefault(key, start)
            if probe:
                break
        assert probe is not None, "generator planted no internal repeat"

        family = HashFamily(k=12, seed=2)
        index = build_memory_index(corpus, family, t=10, vocab_size=50_000)
        searcher = NearDuplicateSearcher(index)
        text_id, first, second = probe
        query = np.asarray(corpus[text_id])[first : first + 15]
        result = searcher.search(query, 1.0)
        own = [m for m in result.matches if m.text_id == text_id]
        assert own
        covered = {
            (i, j) for rect in own[0].rectangles for (i, j) in rect.iter_spans(10)
        }
        # Both occurrences of the repeated span are reported.
        assert any(i <= first and j >= first + 9 for (i, j) in covered)
        assert any(i <= second and j >= second + 9 for (i, j) in covered)


class TestInjectDuplicates:
    def test_plants_expected_count(self):
        base = zipf_corpus(100, 100, 256, seed=3)
        data = inject_duplicates(base, rate=0.2, span_length=32, seed=4)
        assert len(data.planted) == 20

    def test_input_not_modified(self):
        base = zipf_corpus(30, 100, 256, seed=3)
        originals = [np.array(t) for t in base]
        inject_duplicates(base, rate=0.5, span_length=32, seed=4)
        for before, after in zip(originals, base):
            assert np.array_equal(before, after)

    def test_planted_pairs_are_similar(self):
        base = zipf_corpus(80, 150, 512, seed=7)
        data = inject_duplicates(
            base, rate=0.3, span_length=50, mutation_rate=0.05, seed=8
        )
        assert data.planted, "no duplicates planted"
        similar = 0
        for plant in data.planted:
            src = data.corpus[plant.source_text][
                plant.source_start : plant.source_start + plant.length
            ]
            dst = data.corpus[plant.target_text][
                plant.target_start : plant.target_start + plant.length
            ]
            if distinct_jaccard(src, dst) >= 0.6:
                similar += 1
        # Later plants may overwrite earlier source or target spans, so
        # a few pairs can degrade; the bulk must stay near-duplicates.
        assert similar >= 0.7 * len(data.planted)

    def test_zero_mutation_gives_exact_copy(self):
        base = zipf_corpus(40, 120, 256, seed=9)
        data = inject_duplicates(base, rate=0.2, span_length=30, mutation_rate=0.0, seed=1)
        for plant in data.planted:
            assert plant.mutated_tokens == 0

    def test_expected_jaccard_upper(self):
        base = zipf_corpus(40, 120, 256, seed=9)
        data = inject_duplicates(base, rate=0.2, span_length=40, mutation_rate=0.1, seed=2)
        for plant in data.planted:
            assert 0.0 <= plant.expected_jaccard_upper <= 1.0

    def test_validation(self):
        base = zipf_corpus(5, 30, 64, seed=0)
        with pytest.raises(InvalidParameterError):
            inject_duplicates(base, rate=1.5)
        with pytest.raises(InvalidParameterError):
            inject_duplicates(base, mutation_rate=-0.1)
        with pytest.raises(InvalidParameterError):
            inject_duplicates(base, span_length=0)


class TestPresets:
    def test_synthweb(self):
        data = synthweb(num_texts=60, mean_length=80, vocab_size=512, seed=1)
        assert len(data.corpus) == 60
        assert data.vocab_size == 512
        assert data.planted

    def test_minipile_has_domains(self):
        data = minipile(
            num_texts=80, mean_length=80, vocab_size=512, num_domains=4, seed=1
        )
        assert len(data.corpus) == 80
        # Domains rotate the Zipf head, so the global head is flatter
        # than a single-domain corpus of the same size.
        counts = np.zeros(512, dtype=np.int64)
        for text in data.corpus:
            counts += np.bincount(text, minlength=512)
        assert np.count_nonzero(counts > counts.max() // 4) >= 4

    def test_minipile_validation(self):
        with pytest.raises(InvalidParameterError):
            minipile(num_texts=10, num_domains=0)

    def test_presets_deterministic(self):
        a = synthweb(num_texts=20, mean_length=50, vocab_size=128, seed=3)
        b = synthweb(num_texts=20, mean_length=50, vocab_size=128, seed=3)
        for i in range(20):
            assert np.array_equal(a.corpus[i], b.corpus[i])
