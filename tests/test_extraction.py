"""Tests for the training-data extraction attack simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.synthetic import synthweb
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.lm.models import train_model
from repro.memorization.extraction import ExtractionReport, run_extraction_attack


@pytest.fixture(scope="module")
def attack_setup():
    data = synthweb(num_texts=200, mean_length=150, vocab_size=1024, seed=61)
    family = HashFamily(k=16, seed=2)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=1024)
    searcher = NearDuplicateSearcher(index)
    attacked = train_model("xl", data.corpus, vocab_size=1024)
    reference = train_model("small", data.corpus, vocab_size=1024)
    return data.corpus, searcher, attacked.model, reference.model


class TestRunAttack:
    def test_perplexity_ranking(self, attack_setup):
        _, searcher, attacked, _ = attack_setup
        report = run_extraction_attack(
            attacked, searcher, num_samples=12, sample_length=48, theta=0.8, seed=3
        )
        assert report.score_kind == "perplexity"
        assert len(report.candidates) == 12
        scores = [c.score for c in report.candidates]
        assert scores == sorted(scores)  # ranked ascending (most memorized first)

    def test_ratio_ranking(self, attack_setup):
        _, searcher, attacked, reference = attack_setup
        report = run_extraction_attack(
            attacked,
            searcher,
            reference_model=reference,
            num_samples=8,
            sample_length=48,
            seed=3,
        )
        assert report.score_kind == "ratio"

    def test_precision_at(self, attack_setup):
        _, searcher, attacked, _ = attack_setup
        report = run_extraction_attack(
            attacked, searcher, num_samples=10, sample_length=48, seed=5
        )
        assert 0.0 <= report.precision_at(5) <= 1.0
        assert 0.0 <= report.base_rate <= 1.0
        with pytest.raises(InvalidParameterError):
            report.precision_at(0)

    def test_memorized_samples_verified_by_engine(self, attack_setup):
        corpus, searcher, attacked, _ = attack_setup
        report = run_extraction_attack(
            attacked, searcher, num_samples=10, sample_length=48, theta=0.8, seed=7
        )
        for candidate in report.candidates:
            result = searcher.search(candidate.tokens, 0.8, first_match_only=True)
            assert candidate.memorized == bool(result.matches)

    def test_validation(self, attack_setup):
        _, searcher, attacked, _ = attack_setup
        with pytest.raises(InvalidParameterError):
            run_extraction_attack(attacked, searcher, num_samples=0)
        with pytest.raises(InvalidParameterError):
            run_extraction_attack(attacked, searcher, sample_length=5)


class TestReportMath:
    def test_empty_report(self):
        report = ExtractionReport(theta=0.8, score_kind="perplexity")
        assert report.base_rate == 0.0
        assert report.precision_at(5) == 0.0
        assert report.lift_at_10 == 0.0

    def test_lift(self):
        from repro.memorization.extraction import ExtractionCandidate

        candidates = [
            ExtractionCandidate(i, np.array([1]), float(i), memorized=(i < 5))
            for i in range(20)
        ]
        report = ExtractionReport(
            theta=0.8, score_kind="perplexity", candidates=candidates
        )
        assert report.precision_at(10) == 0.5
        assert report.base_rate == 0.25
        assert report.lift_at_10 == pytest.approx(2.0)
