"""Tests for the on-disk index format (write, read, zone maps, errors)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.exceptions import IndexFormatError
from repro.index.builder import build_memory_index
from repro.index.storage import DiskInvertedIndex, write_index


@pytest.fixture(scope="module")
def saved(tmp_path_factory, request):
    """A built index persisted to disk plus its in-memory original."""
    from repro.corpus.synthetic import synthweb

    data = synthweb(num_texts=120, mean_length=120, vocab_size=512, seed=21)
    family = HashFamily(k=6, seed=2)
    memory = build_memory_index(data.corpus, family, t=20, vocab_size=512)
    directory = tmp_path_factory.mktemp("index")
    write_index(memory, directory, zonemap_step=8, zonemap_min_list=16)
    return memory, DiskInvertedIndex(directory), directory


class TestRoundTrip:
    def test_metadata_preserved(self, saved):
        memory, disk, _ = saved
        assert disk.family == memory.family
        assert disk.t == memory.t
        assert disk.num_postings == memory.num_postings
        assert disk.nbytes == memory.nbytes

    def test_every_list_identical(self, saved):
        memory, disk, _ = saved
        for func in range(memory.family.k):
            for minhash, postings in memory.iter_lists(func):
                loaded = disk.load_list(func, minhash)
                assert np.array_equal(loaded, postings), (func, minhash)

    def test_absent_list_empty(self, saved):
        _, disk, _ = saved
        # 2**32 - 1 is (almost surely) not a stored min-hash here.
        assert disk.load_list(0, 2**32 - 1).size == 0
        assert disk.list_length(0, 2**32 - 1) == 0

    def test_list_lengths_match(self, saved):
        memory, disk, _ = saved
        for func in range(memory.family.k):
            assert sorted(disk.list_lengths(func).tolist()) == sorted(
                memory.list_lengths(func).tolist()
            )

    def test_to_memory_equivalent(self, saved):
        memory, disk, _ = saved
        restored = disk.to_memory()
        assert restored.num_postings == memory.num_postings
        for func in range(memory.family.k):
            for minhash, postings in memory.iter_lists(func):
                assert np.array_equal(restored.load_list(func, minhash), postings)

    def test_num_texts_recorded(self, saved):
        memory, disk, _ = saved
        assert memory.num_texts == 120
        assert disk.num_texts == 120

    def test_num_texts_absent_in_legacy_meta(self, saved):
        # An index written before the key existed reads back as None.
        _, _, directory = saved
        meta_path = directory / "index.meta.json"
        meta = json.loads(meta_path.read_text())
        recorded = meta.pop("num_texts")
        assert recorded == 120
        meta_path.write_text(json.dumps(meta))
        try:
            assert DiskInvertedIndex(directory).num_texts is None
        finally:
            meta["num_texts"] = recorded
            meta_path.write_text(json.dumps(meta))


class TestTextWindowReads:
    def test_matches_full_list_filter(self, saved):
        memory, disk, _ = saved
        for func in range(memory.family.k):
            for minhash, postings in memory.iter_lists(func):
                texts = set(postings["text"].tolist())
                probe = sorted(texts)[len(texts) // 2]
                via_zone = disk.load_text_windows(func, minhash, probe)
                expected = postings[postings["text"] == probe]
                assert np.array_equal(via_zone, expected)
                break  # one list per function keeps the test fast

    def test_absent_text_empty(self, saved):
        memory, disk, _ = saved
        func = 0
        minhash, _ = next(iter(memory.iter_lists(func)))
        assert disk.load_text_windows(func, minhash, 10**6).size == 0

    def test_zone_map_present_for_long_lists(self, saved):
        memory, disk, _ = saved
        found = 0
        for func in range(memory.family.k):
            for minhash, postings in memory.iter_lists(func):
                zone = disk.zone_map(func, minhash)
                if postings.size >= 16:
                    assert zone is not None
                    assert zone.length == postings.size
                    found += 1
                else:
                    assert zone is None
        assert found > 0, "fixture produced no long lists"

    def test_zone_map_reduces_io(self, saved):
        memory, disk, _ = saved
        # Find the longest list and point-read one text from it.
        best = None
        for func in range(memory.family.k):
            for minhash, postings in memory.iter_lists(func):
                if best is None or postings.size > best[2].size:
                    best = (func, minhash, postings)
        func, minhash, postings = best
        assert postings.size >= 16
        disk.io_stats.reset()
        disk.load_text_windows(func, minhash, int(postings["text"][0]))
        assert disk.io_stats.bytes_read < postings.nbytes


class TestIOAccounting:
    def test_load_list_counts_bytes(self, saved):
        memory, disk, _ = saved
        func = 0
        minhash, postings = next(iter(memory.iter_lists(func)))
        disk.io_stats.reset()
        disk.load_list(func, minhash)
        assert disk.io_stats.bytes_read == postings.nbytes
        assert disk.io_stats.read_calls == 1


class TestFormatErrors:
    def test_missing_meta(self, tmp_path):
        with pytest.raises(IndexFormatError):
            DiskInvertedIndex(tmp_path)

    def test_bad_version(self, saved, tmp_path):
        _, _, directory = saved
        clone = tmp_path / "clone"
        clone.mkdir()
        for path in directory.iterdir():
            (clone / path.name).write_bytes(path.read_bytes())
        meta = clone / "index.meta.json"
        payload = json.loads(meta.read_text())
        payload["format_version"] = 42
        meta.write_text(json.dumps(payload))
        with pytest.raises(IndexFormatError):
            DiskInvertedIndex(clone)

    def test_truncated_payload(self, saved, tmp_path):
        _, _, directory = saved
        clone = tmp_path / "clone2"
        clone.mkdir()
        for path in directory.iterdir():
            (clone / path.name).write_bytes(path.read_bytes())
        payload = clone / "index.postings.bin"
        payload.write_bytes(payload.read_bytes()[:-16])
        with pytest.raises(IndexFormatError):
            DiskInvertedIndex(clone)


class TestEmptyIndex:
    def test_write_and_read_empty(self, tmp_path):
        from repro.corpus.corpus import InMemoryCorpus

        family = HashFamily(k=3, seed=1)
        memory = build_memory_index(InMemoryCorpus([]), family, t=5, vocab_size=8)
        directory = write_index(memory, tmp_path / "empty")
        disk = DiskInvertedIndex(directory)
        assert disk.num_postings == 0
        assert disk.load_list(0, 0).size == 0
