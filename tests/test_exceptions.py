"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    CorpusFormatError,
    IndexFormatError,
    InvalidParameterError,
    QueryError,
    ReproError,
    TokenizerError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            CorpusFormatError,
            IndexFormatError,
            InvalidParameterError,
            QueryError,
            TokenizerError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_invalid_parameter_is_value_error(self):
        """Library misuse is also catchable as the stdlib ValueError."""
        assert issubclass(InvalidParameterError, ValueError)

    def test_single_except_catches_library_failures(self):
        import numpy as np

        from repro.core.hashing import HashFamily

        with pytest.raises(ReproError):
            HashFamily(k=0)
        with pytest.raises(ReproError):
            HashFamily(k=2).sketch(np.array([], dtype=np.uint32))


class TestSelectLongLists:
    """Direct unit tests of the prefix-selection internals."""

    @pytest.fixture
    def searcher(self, planted_index):
        from repro.core.search import NearDuplicateSearcher

        return NearDuplicateSearcher(planted_index)

    def test_cutoff_zero_disables(self, planted_index):
        import numpy as np

        from repro.core.search import NearDuplicateSearcher

        searcher = NearDuplicateSearcher(planted_index, long_list_cutoff=0)
        lengths = np.array([1000] * planted_index.family.k)
        assert searcher._select_long_lists(lengths, beta=8) == set()

    def test_explicit_cutoff_marks_longer_lists(self, planted_index):
        import numpy as np

        from repro.core.search import NearDuplicateSearcher

        searcher = NearDuplicateSearcher(planted_index, long_list_cutoff=100)
        lengths = np.array([50, 150, 99, 101] + [10] * (planted_index.family.k - 4))
        chosen = searcher._select_long_lists(lengths, beta=8)
        assert chosen == {1, 3}

    def test_beta_cap_prefers_longest(self, planted_index):
        import numpy as np

        from repro.core.search import NearDuplicateSearcher

        searcher = NearDuplicateSearcher(planted_index, long_list_cutoff=1)
        k = planted_index.family.k
        lengths = np.arange(10, 10 + k) * 100
        chosen = searcher._select_long_lists(lengths, beta=3)
        assert len(chosen) == 2  # beta - 1
        # The two longest lists are the last two.
        assert chosen == {k - 1, k - 2}

    def test_heuristic_ignores_empty_lists(self, planted_index):
        import numpy as np

        from repro.core.search import NearDuplicateSearcher

        searcher = NearDuplicateSearcher(planted_index)  # heuristic cutoff
        lengths = np.zeros(planted_index.family.k, dtype=np.int64)
        assert searcher._select_long_lists(lengths, beta=8) == set()
