"""Tests for the sharded index and fan-out searcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.sharded import Shard, ShardedIndex, ShardedSearcher

VOCAB = 150


@pytest.fixture(scope="module")
def sharded_setup():
    rng = np.random.default_rng(6)
    texts = [rng.integers(0, VOCAB, size=60).astype(np.uint32) for _ in range(17)]
    texts[13][10:40] = texts[2][5:35]  # cross-shard duplicate
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=12, seed=7)
    single = build_memory_index(corpus, family, t=10, vocab_size=VOCAB)
    sharded = ShardedIndex.build(
        corpus, family, 10, num_shards=4, vocab_size=VOCAB
    )
    return corpus, family, single, sharded


class TestBuild:
    def test_shard_ranges_cover_corpus(self, sharded_setup):
        corpus, _, _, sharded = sharded_setup
        covered = sum(shard.count for shard in sharded.shards)
        assert covered == len(corpus)
        assert sharded.num_shards == 4

    def test_postings_preserved(self, sharded_setup):
        _, _, single, sharded = sharded_setup
        assert sharded.num_postings == single.num_postings

    def test_num_shards_validated(self, sharded_setup):
        corpus, family, _, _ = sharded_setup
        with pytest.raises(InvalidParameterError):
            ShardedIndex.build(corpus, family, 10, num_shards=0)

    def test_non_contiguous_rejected(self, sharded_setup):
        _, family, single, _ = sharded_setup
        with pytest.raises(InvalidParameterError):
            ShardedIndex([Shard(5, 3, single)], family, 10)

    def test_empty_shard_list_rejected(self, sharded_setup):
        _, family, _, _ = sharded_setup
        with pytest.raises(InvalidParameterError):
            ShardedIndex([], family, 10)

    def test_single_shard(self, sharded_setup):
        corpus, family, single, _ = sharded_setup
        one = ShardedIndex.build(corpus, family, 10, num_shards=1, vocab_size=VOCAB)
        assert one.num_shards == 1
        assert one.num_postings == single.num_postings

    def test_more_shards_than_texts(self):
        corpus = InMemoryCorpus([np.arange(30, dtype=np.uint32)])
        family = HashFamily(k=4, seed=1)
        sharded = ShardedIndex.build(corpus, family, 5, num_shards=8)
        assert sum(s.count for s in sharded.shards) == 1


class TestSearch:
    def test_matches_single_index(self, sharded_setup):
        corpus, family, single, sharded = sharded_setup
        plain = NearDuplicateSearcher(single)
        fanout = ShardedSearcher(sharded)
        for text_id in (0, 2, 13):
            query = np.asarray(corpus[text_id])[:30]
            for theta in (0.6, 0.9):
                a = plain.search(query, theta)
                b = fanout.search(query, theta)
                sa = {
                    (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                    for m in a.matches
                    for r in m.rectangles
                }
                sb = {
                    (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                    for m in b.matches
                    for r in m.rectangles
                }
                assert sa == sb

    def test_cross_shard_duplicate_found(self, sharded_setup):
        corpus, _, _, sharded = sharded_setup
        fanout = ShardedSearcher(sharded)
        query = np.asarray(corpus[2])[5:35]
        result = fanout.search(query, 0.9)
        matched = {m.text_id for m in result.matches}
        assert {2, 13} <= matched  # texts 2 and 13 live in different shards

    def test_stats_aggregated(self, sharded_setup):
        corpus, _, _, sharded = sharded_setup
        fanout = ShardedSearcher(sharded)
        result = fanout.search(np.asarray(corpus[0])[:30], 0.8)
        assert result.stats.total_seconds > 0
        assert result.stats.texts_matched == result.num_texts

    def test_results_sorted_by_text(self, sharded_setup):
        corpus, _, _, sharded = sharded_setup
        fanout = ShardedSearcher(sharded)
        result = fanout.search(np.asarray(corpus[2])[5:35], 0.6)
        ids = [m.text_id for m in result.matches]
        assert ids == sorted(ids)


def wire(result) -> str:
    """Canonical serialized form, for byte-identity assertions."""
    import json

    from repro.service.protocol import result_to_wire

    return json.dumps(result_to_wire(result), sort_keys=True)


class TestParallelSearch:
    def test_workers_byte_identical_to_serial(self, sharded_setup):
        corpus, _, _, sharded = sharded_setup
        serial = ShardedSearcher(sharded)
        with ShardedSearcher(sharded, workers=4) as threaded:
            for text_id in (0, 2, 13):
                query = np.asarray(corpus[text_id])[:30]
                for theta in (0.6, 0.9):
                    a = serial.search(query, theta)
                    b = threaded.search(query, theta)
                    assert wire(a) == wire(b)
                    # deterministic counters merge identically too
                    assert a.stats.lists_loaded == b.stats.lists_loaded
                    assert a.stats.candidates == b.stats.candidates
                    assert a.stats.texts_matched == b.stats.texts_matched

    def test_search_batch_equals_sequential_searches(self, sharded_setup):
        corpus, _, _, sharded = sharded_setup
        queries = [np.asarray(corpus[text_id])[:30] for text_id in (0, 2, 13)]
        with ShardedSearcher(sharded, workers=4) as threaded:
            batched = threaded.search_batch(queries, 0.6)
            singles = [threaded.search(query, 0.6) for query in queries]
        assert [wire(result) for result in batched] == [
            wire(result) for result in singles
        ]

    def test_serial_search_batch_no_pool(self, sharded_setup):
        corpus, _, _, sharded = sharded_setup
        queries = [np.asarray(corpus[text_id])[:30] for text_id in (2, 13)]
        serial = ShardedSearcher(sharded)
        assert serial._pool is None
        batched = serial.search_batch(queries, 0.9)
        assert [wire(r) for r in batched] == [
            wire(serial.search(q, 0.9)) for q in queries
        ]

    def test_close_is_idempotent_and_workers_clamped(self, sharded_setup):
        _, _, _, sharded = sharded_setup
        searcher = ShardedSearcher(sharded, workers=100)
        assert searcher._pool is not None
        searcher.close()
        searcher.close()
        assert searcher._pool is None
        assert ShardedSearcher(sharded, workers=0).workers == 1
