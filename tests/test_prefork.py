"""Prefork multi-worker serving tests (ISSUE 6).

A fleet of forked workers over one shared mmap index must be
indistinguishable from the single-process server at the protocol
level: byte-identical results, one aggregated ``cluster`` stats view,
and crash resilience (a killed worker is respawned and the fleet keeps
answering).  These tests fork real processes — the engine is saved to
disk first so every worker serves the same zero-copy mapping.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.engine import NearDupEngine
from repro.service import (
    PreforkServer,
    ServiceClient,
    ServiceConfig,
    SharedServiceStats,
    StatsSlots,
    result_to_wire,
)
from repro.service.server import load_served_engine


def canonical(wire: dict) -> str:
    return json.dumps(wire, sort_keys=True)


def wait_until(predicate, timeout: float = 20.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def saved_engine(planted_data, planted_index, tmp_path_factory):
    """The planted engine saved to disk and reopened over mmap."""
    directory = tmp_path_factory.mktemp("prefork_engine")
    NearDupEngine(planted_data.corpus, planted_index).save(directory)
    return load_served_engine(str(directory))


@pytest.fixture(scope="module")
def queries(planted_data) -> list[np.ndarray]:
    corpus = planted_data.corpus
    return [np.asarray(corpus[text_id])[:40] for text_id in range(6)]


@pytest.fixture(scope="module")
def fleet(saved_engine):
    config = ServiceConfig(
        port=0, procs=2, workers=2, linger_ms=2.0,
        warmup_lists=8, cache_bytes=8 * 1024 * 1024,
    )
    server = PreforkServer(saved_engine, config)
    server.start()
    server.wait_ready()
    yield server
    server.stop()


@pytest.fixture
def client(fleet) -> ServiceClient:
    with ServiceClient("127.0.0.1", fleet.port, timeout=15) as active:
        yield active


class TestServedEqualsDirect:
    def test_fleet_results_byte_identical(self, fleet, client, saved_engine, queries):
        for query in queries:
            served = client.search(query, 0.8)
            direct = result_to_wire(saved_engine.search_raw(query, 0.8))
            assert canonical(served["result"]) == canonical(direct)

    def test_batch_endpoint(self, fleet, client, saved_engine, queries):
        served = client.batch(queries, 0.9)
        direct = [
            result_to_wire(saved_engine.search_raw(query, 0.9))
            for query in queries
        ]
        assert [canonical(item) for item in served["results"]] == [
            canonical(item) for item in direct
        ]


class TestClusterStats:
    def test_stats_carry_cluster_block(self, fleet, client, queries):
        client.search(queries[0], 0.8)
        stats = client.stats()
        assert "cluster" in stats
        cluster = stats["cluster"]
        assert cluster["procs"] == 2
        assert cluster["alive"] == 2
        assert cluster["completed"] >= 1
        assert cluster["requests"] >= cluster["completed"]
        pids = {worker["pid"] for worker in cluster["workers"]}
        assert pids == set(fleet.worker_pids())
        # Aggregated latency comes from summed histogram buckets.
        assert cluster["latency"]["count"] == cluster["completed"]
        assert cluster["latency"]["p95_ms"] >= 0.0

    def test_health_reports_worker_pid(self, fleet, client):
        health = client.health()
        assert health["status"] == "serving"
        assert health["pid"] in fleet.worker_pids()


class TestCrashRespawn:
    def test_killed_worker_is_respawned(self, saved_engine, queries):
        config = ServiceConfig(port=0, procs=2, linger_ms=2.0, warmup_lists=0)
        server = PreforkServer(saved_engine, config)
        server.start()
        try:
            server.wait_ready()
            victim = server.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: victim not in server.worker_pids()
                and len(server.worker_pids()) == 2
            ), f"no respawn: {server.worker_pids()}"
            server.wait_ready()
            with ServiceClient("127.0.0.1", server.port, timeout=15) as client:
                health = client.health()
                assert health["status"] == "serving"
                served = client.search(queries[0], 0.8)
                direct = result_to_wire(saved_engine.search_raw(queries[0], 0.8))
                assert canonical(served["result"]) == canonical(direct)
        finally:
            server.stop()


class TestStatsSlots:
    def test_aggregate_sums_counters_and_buckets(self):
        slots = StatsSlots(3)
        for slot, (completed, latency) in enumerate([(3, 0.001), (5, 0.004)]):
            stats = SharedServiceStats(slots, slot, generation=slot + 1)
            for _ in range(completed):
                stats.record_admitted()
                stats.record_completed(latency, 0.0)
        # Slot 2 never published: a dead row (pid 0) must be skipped.
        cluster = slots.aggregate()
        assert cluster["alive"] == 2
        assert cluster["requests"] == 8
        assert cluster["completed"] == 8
        assert cluster["latency"]["count"] == 8
        assert len(cluster["workers"]) == 2
        assert [worker["generation"] for worker in cluster["workers"]] == [1, 2]

    def test_reset_clears_a_slot(self):
        slots = StatsSlots(1)
        stats = SharedServiceStats(slots, 0, generation=1)
        stats.record_admitted()
        stats.record_completed(0.001, 0.0)
        assert slots.aggregate()["completed"] == 1
        slots.reset(0)
        assert slots.aggregate()["alive"] == 0
        assert slots.aggregate()["completed"] == 0

    def test_shared_stats_mirror_local_counters(self):
        slots = StatsSlots(1)
        stats = SharedServiceStats(slots, 0, generation=7)
        stats.record_admitted()
        stats.record_batch(4)
        stats.record_search_io(10, 3)
        stats.record_completed(0.002, 0.0005)
        row = slots.view()[0]
        cluster = slots.aggregate()
        assert cluster["requests"] == stats.requests == 1
        assert cluster["batches"] == 1
        assert cluster["batched_queries"] == 4
        assert cluster["lists_loaded"] == 10
        assert cluster["point_reads"] == 3
        assert int(row[-1 - 0]) >= 0  # histogram tail is addressable
        assert cluster["workers"][0]["generation"] == 7
