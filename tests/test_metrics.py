"""Tests for the approximation-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.verify import Span
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.memorization.metrics import (
    QualityReport,
    approximation_quality,
    recall_curve,
)


class TestQualityReport:
    def test_perfect(self):
        report = QualityReport(true_positives=10, false_positives=0, false_negatives=0)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_empty(self):
        report = QualityReport(0, 0, 0)
        assert report.precision == 1.0 and report.recall == 1.0

    def test_partial(self):
        report = QualityReport(true_positives=6, false_positives=2, false_negatives=4)
        assert report.precision == pytest.approx(0.75)
        assert report.recall == pytest.approx(0.6)
        assert 0.6 < report.f1 < 0.75


@pytest.fixture(scope="module")
def metric_setup():
    rng = np.random.default_rng(15)
    vocab = 120
    texts = [rng.integers(0, vocab, size=50).astype(np.uint32) for _ in range(6)]
    texts[3][5:35] = texts[0][10:40]
    corpus = InMemoryCorpus(texts)
    return corpus, vocab


class TestApproximationQuality:
    def test_high_k_high_quality(self, metric_setup):
        corpus, vocab = metric_setup
        family = HashFamily(k=48, seed=3)
        index = build_memory_index(corpus, family, t=12, vocab_size=vocab)
        searcher = NearDuplicateSearcher(index)
        queries = [np.asarray(corpus[0])[10:40]]
        report = approximation_quality(corpus, searcher, queries, theta=0.85)
        assert report.recall > 0.5
        assert report.true_positives > 0

    def test_quality_improves_with_k(self, metric_setup):
        corpus, vocab = metric_setup
        queries = [np.asarray(corpus[0])[10:40], np.asarray(corpus[1])[0:30]]
        f1_scores = []
        for k in (4, 64):
            family = HashFamily(k=k, seed=3)
            index = build_memory_index(corpus, family, t=12, vocab_size=vocab)
            searcher = NearDuplicateSearcher(index)
            report = approximation_quality(corpus, searcher, queries, theta=0.8)
            f1_scores.append(report.f1)
        assert f1_scores[1] >= f1_scores[0]


class TestRecallCurve:
    def test_curve_shape(self, metric_setup):
        corpus, vocab = metric_setup
        pairs = [(np.asarray(corpus[0])[10:40], Span(3, 5, 34))]
        rows = recall_curve(
            corpus, pairs, theta=0.9, t=12, k_values=(8, 32), vocab_size=vocab
        )
        assert [row["k"] for row in rows] == [8, 32]
        for row in rows:
            assert 0.0 <= row["measured_recall"] <= 1.0
            assert 0.0 <= row["modeled_recall"] <= 1.0
        # The planted pair is exact (similarity 1.0): recall must be 1
        # at any k and the model must agree.
        assert rows[-1]["measured_recall"] == 1.0
        assert rows[-1]["modeled_recall"] == pytest.approx(1.0)

    def test_empty_pairs(self, metric_setup):
        corpus, vocab = metric_setup
        rows = recall_curve(
            corpus, [], theta=0.9, t=12, k_values=(8,), vocab_size=vocab
        )
        assert rows[0]["measured_recall"] == 1.0
