"""Tests for the multi-process index builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.parallel import build_memory_index_parallel


class TestParallelBuild:
    def test_matches_sequential(self, tiny_corpus):
        family = HashFamily(k=4, seed=2)
        sequential = build_memory_index(tiny_corpus, family, t=5)
        parallel = build_memory_index_parallel(
            tiny_corpus, family, 5, workers=2, batch_texts=3
        )
        assert parallel.num_postings == sequential.num_postings
        for func in range(family.k):
            lists_a = dict(sequential.iter_lists(func))
            lists_b = dict(parallel.iter_lists(func))
            assert lists_a.keys() == lists_b.keys()
            for key in lists_a:
                assert np.array_equal(lists_a[key], lists_b[key])

    def test_single_worker(self, tiny_corpus):
        family = HashFamily(k=2, seed=3)
        index = build_memory_index_parallel(
            tiny_corpus, family, 5, workers=1, batch_texts=100
        )
        assert index.num_postings == build_memory_index(
            tiny_corpus, family, t=5
        ).num_postings

    def test_empty_corpus(self):
        family = HashFamily(k=2, seed=0)
        index = build_memory_index_parallel(
            InMemoryCorpus([]), family, 5, workers=2, vocab_size=4
        )
        assert index.num_postings == 0

    def test_validation(self, tiny_corpus):
        family = HashFamily(k=2, seed=0)
        with pytest.raises(InvalidParameterError):
            build_memory_index_parallel(tiny_corpus, family, 5, workers=0)
        with pytest.raises(InvalidParameterError):
            build_memory_index_parallel(tiny_corpus, family, 5, batch_texts=0)
