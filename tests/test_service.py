"""End-to-end and unit tests for the online search service (ISSUE 3).

The lifecycle tests run a real :class:`SearchService` on an ephemeral
port (via :class:`ServiceRunner`) over the session's planted index and
talk to it with blocking :class:`ServiceClient` instances from worker
threads — the same shape as real deployment, inside one process.

Determinism for the admission-control tests comes from the batcher's
``pause()`` gate: dispatch is held at a fully observable state (one
request held at the gate, the rest queued), so shed (429) and deadline
(504) behavior is asserted without sleeping on races.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.engine import NearDupEngine
from repro.exceptions import InvalidParameterError
from repro.service import (
    LatencyHistogram,
    ProtocolError,
    RemoteError,
    RequestShedError,
    RequestTimeoutError,
    ServiceClient,
    ServiceClosedError,
    ServiceConfig,
    ServiceRunner,
    ServiceStats,
    result_to_wire,
)
from repro.service.protocol import (
    error_body,
    parse_flag,
    parse_theta,
    parse_timeout,
    parse_tokens,
)


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def canonical(wire: dict) -> str:
    return json.dumps(wire, sort_keys=True)


@pytest.fixture(scope="module")
def engine(planted_data, planted_index) -> NearDupEngine:
    return NearDupEngine(planted_data.corpus, planted_index)


@pytest.fixture(scope="module")
def queries(planted_data) -> list[np.ndarray]:
    """Prefixes of corpus texts: guaranteed to have near-duplicates."""
    corpus = planted_data.corpus
    return [np.asarray(corpus[text_id])[:40] for text_id in range(6)]


@pytest.fixture(scope="module")
def runner(engine) -> ServiceRunner:
    config = ServiceConfig(
        port=0, workers=2, max_batch=8, linger_ms=4.0, max_queue=64,
        warmup_lists=16, cache_bytes=8 * 1024 * 1024,
    )
    with ServiceRunner(engine, config) as active:
        yield active


@pytest.fixture
def client(runner) -> ServiceClient:
    with ServiceClient(runner.host, runner.port) as active:
        yield active


# ----------------------------------------------------------------------
# Protocol units (no server)
# ----------------------------------------------------------------------
class TestParsing:
    def test_parse_tokens_accepts_ids(self):
        tokens = parse_tokens([3, 1, 4, 1, 5])
        assert tokens.dtype == np.uint32
        assert tokens.tolist() == [3, 1, 4, 1, 5]

    @pytest.mark.parametrize(
        "bad", [None, [], "17 4", [[1, 2], [3]], ["a", "b"], {"q": 1}]
    )
    def test_parse_tokens_rejects(self, bad):
        with pytest.raises(ProtocolError):
            parse_tokens(bad)

    @pytest.mark.parametrize("bad", [0, -0.5, 1.5, "0.8", None])
    def test_parse_theta_rejects(self, bad):
        with pytest.raises(ProtocolError):
            parse_theta({"theta": bad}, 0.8)

    def test_parse_theta_default(self):
        assert parse_theta({}, 0.7) == pytest.approx(0.7)

    def test_parse_timeout_converts_ms(self):
        assert parse_timeout({"timeout_ms": 250}, 1000.0) == pytest.approx(0.25)
        with pytest.raises(ProtocolError):
            parse_timeout({"timeout_ms": 0}, 1000.0)

    def test_parse_flag(self):
        assert parse_flag({"verify": True}, "verify") is True
        assert parse_flag({}, "verify") is False
        with pytest.raises(ProtocolError):
            parse_flag({"verify": 1}, "verify")

    def test_error_body_statuses(self):
        assert error_body(RequestShedError("full"))[0] == 429
        assert error_body(RequestTimeoutError("late"))[0] == 504
        assert error_body(ServiceClosedError("bye"))[0] == 503
        assert error_body(ProtocolError("nope", status=404))[0] == 404
        assert error_body(InvalidParameterError("bad"))[0] == 400
        status, payload = error_body(ValueError("boom"))
        assert status == 500
        assert payload["ok"] is False and payload["code"] == 500


class TestWireFormat:
    def test_result_round_trip_is_deterministic(self, engine, queries):
        result = engine.search_raw(queries[0], 0.8)
        first = result_to_wire(result)
        second = result_to_wire(engine.search_raw(queries[0], 0.8))
        assert canonical(first) == canonical(second)
        # Must survive json round-trips untouched (no numpy scalars).
        assert json.loads(json.dumps(first)) == first

    def test_result_fields(self, engine, queries):
        wire = result_to_wire(engine.search_raw(queries[0], 0.8))
        assert set(wire) == {
            "k", "theta", "beta", "t", "num_texts", "matches", "spans"
        }
        assert wire["matches"], "planted query should match"
        rect = wire["matches"][0]["rectangles"][0]
        assert set(rect) == {"i_lo", "i_hi", "j_lo", "j_hi", "count"}


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.to_dict()["count"] == 0

    def test_quantiles_are_monotone_upper_bounds(self):
        histogram = LatencyHistogram()
        for ms in (0.1, 0.4, 1.0, 2.0, 4.0, 100.0):
            histogram.observe(ms / 1e3)
        p50, p95, p99 = (
            histogram.quantile(0.50),
            histogram.quantile(0.95),
            histogram.quantile(0.99),
        )
        assert p50 <= p95 <= p99
        assert p50 >= 0.001  # the median observation was 1 ms
        assert histogram.to_dict()["max_ms"] == pytest.approx(100.0)

    def test_overflow_lands_in_last_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(10_000.0)
        assert histogram.counts[-1] == 1


class TestServiceStats:
    def test_counters_and_snapshot(self):
        stats = ServiceStats()
        stats.record_admitted()
        stats.record_admitted()
        stats.record_shed()
        stats.record_timeout()
        stats.record_batch(2)
        stats.record_completed(0.004, 0.001)
        snap = stats.snapshot()
        assert snap["requests"] == 3 and snap["shed"] == 1
        assert snap["timeouts"] == 1 and snap["completed"] == 1
        assert snap["mean_batch_size"] == pytest.approx(2.0)
        assert snap["batch_size_distribution"] == {"2": 1}
        assert snap["latency"]["count"] == 1
        json.dumps(snap)  # JSON-ready


# ----------------------------------------------------------------------
# Live service: routing, equality, concurrency
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_health(self, client, engine):
        health = client.health()
        assert health["status"] == "serving"
        assert health["texts"] == engine.num_texts
        assert health["k"] == engine.index.family.k
        assert health["t"] == engine.index.t

    def test_stats_shape(self, client):
        stats = client.stats()
        assert {"service", "cache", "queue_depth", "engine", "config"} <= set(stats)
        assert stats["warmed_lists"] > 0  # startup warmup ran
        assert "hit_rate" in stats["cache"]
        assert stats["config"]["max_batch"] == 8

    def test_unknown_path_404(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client._request("GET", "/search")
        assert excinfo.value.status == 405

    def test_malformed_body_400(self, runner):
        connection = http.client.HTTPConnection(runner.host, runner.port, timeout=5)
        try:
            connection.request(
                "POST", "/search", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["ok"] is False
        finally:
            connection.close()

    def test_bad_query_400(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.search([])
        assert excinfo.value.status == 400

    def test_text_query_needs_tokenizer(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.search("raw text query")
        assert excinfo.value.status == 400
        assert "tokenizer" in str(excinfo.value)


class TestServedEqualsDirect:
    """ISSUE acceptance: served results byte-equal to engine.search."""

    def test_single_query(self, client, engine, queries):
        response = client.search(queries[0], 0.8)
        direct = result_to_wire(engine.search_raw(queries[0], 0.8))
        assert canonical(response["result"]) == canonical(direct)
        server = response["server"]
        assert server["batched_with"] >= 1
        assert server["total_ms"] >= server["queue_ms"] >= 0.0

    @pytest.mark.parametrize("theta", [0.6, 0.9])
    def test_other_thetas(self, client, engine, queries, theta):
        response = client.search(queries[1], theta)
        direct = result_to_wire(engine.search_raw(queries[1], theta))
        assert canonical(response["result"]) == canonical(direct)

    def test_verify_mode(self, client, engine, queries):
        response = client.search(queries[2], 0.8, verify=True)
        direct = result_to_wire(engine.search_raw(queries[2], 0.8, verify=True))
        assert canonical(response["result"]) == canonical(direct)

    def test_batch_endpoint_preserves_order(self, client, engine, queries):
        # Duplicates included: sketch dedup must not reorder or merge
        # the per-query results.
        batch = queries + [queries[0], queries[2]]
        response = client.batch(batch, 0.8)
        assert len(response["results"]) == len(batch)
        assert response["server"]["unique_queries"] <= len(batch)
        for served, tokens in zip(response["results"], batch):
            direct = result_to_wire(engine.search_raw(tokens, 0.8))
            assert canonical(served) == canonical(direct)

    def test_concurrent_clients_all_equal(self, runner, engine, queries):
        direct = {
            position: canonical(result_to_wire(engine.search_raw(tokens, 0.8)))
            for position, tokens in enumerate(queries)
        }
        errors: list[BaseException] = []
        mismatches: list[int] = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                with ServiceClient(runner.host, runner.port) as active:
                    for _ in range(5):
                        position = int(rng.integers(0, len(queries)))
                        response = active.search(queries[position], 0.8)
                        if canonical(response["result"]) != direct[position]:
                            mismatches.append(position)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        assert not mismatches
        snapshot = runner.call(lambda: runner.service.stats.snapshot())
        assert snapshot["completed"] >= 40


# ----------------------------------------------------------------------
# Admission control, deadlines, drain (dedicated gated instance)
# ----------------------------------------------------------------------
@pytest.fixture
def gated(engine) -> ServiceRunner:
    """max_queue=1 service whose dispatch is held at the pause gate."""
    config = ServiceConfig(
        port=0, workers=1, max_batch=8, linger_ms=2.0, max_queue=1,
        warmup_lists=0,
    )
    with ServiceRunner(engine, config) as active:
        active.call(active.service.batcher.pause)
        yield active


def search_in_thread(runner, tokens, **kwargs):
    """Fire one client search on a thread; returns (thread, box)."""
    box: dict = {}

    def call() -> None:
        try:
            with ServiceClient(runner.host, runner.port) as active:
                box["response"] = active.search(tokens, 0.8, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - checked by the test
            box["error"] = exc

    thread = threading.Thread(target=call)
    thread.start()
    return thread, box


class TestAdmissionControl:
    def test_shed_when_queue_full(self, gated, queries):
        service = gated.service
        # First request is dequeued and held at the gate...
        held, held_box = search_in_thread(gated, queries[0])
        assert wait_until(
            lambda: gated.call(lambda: service.stats.requests) == 1
            and gated.call(lambda: service.batcher.depth) == 0
        )
        # ...second fills the queue (max_queue=1)...
        queued, queued_box = search_in_thread(gated, queries[1])
        assert wait_until(lambda: gated.call(lambda: service.batcher.depth) == 1)
        # ...third is shed with 429 while dispatch is still paused.
        with ServiceClient(gated.host, gated.port) as probe:
            with pytest.raises(RequestShedError):
                probe.search(queries[2], 0.8)
        gated.call(service.batcher.resume)
        held.join(30)
        queued.join(30)
        assert "response" in held_box and "response" in queued_box
        snapshot = gated.call(service.stats.snapshot)
        assert snapshot["shed"] == 1
        assert snapshot["completed"] == 2

    def test_deadline_cancels_queued_request(self, gated, queries):
        service = gated.service
        thread, box = search_in_thread(gated, queries[0], timeout_ms=150)
        thread.join(30)
        assert isinstance(box.get("error"), RequestTimeoutError)
        assert gated.call(lambda: service.stats.timeouts) == 1
        # The expired request is skipped at dispatch: nothing batched.
        gated.call(service.batcher.resume)
        assert wait_until(lambda: gated.call(lambda: service.batcher.depth) == 0)
        assert gated.call(lambda: service.stats.batches) == 0
        # The service still answers fresh requests afterwards.
        with ServiceClient(gated.host, gated.port) as probe:
            assert probe.search(queries[0], 0.8)["ok"] is True

    def test_draining_rejects_new_work(self, gated, queries):
        service = gated.service
        gated.call(service.batcher.resume)
        gated.call(lambda: setattr(service, "_draining", True))
        with ServiceClient(gated.host, gated.port) as probe:
            assert probe.health()["status"] == "draining"
            with pytest.raises(ServiceClosedError):
                probe.search(queries[0], 0.8)
        gated.call(lambda: setattr(service, "_draining", False))
        with ServiceClient(gated.host, gated.port) as probe:
            assert probe.search(queries[0], 0.8)["ok"] is True


class TestMicroBatching:
    def test_paused_queue_coalesces_into_one_batch(self, engine, queries):
        config = ServiceConfig(
            port=0, workers=1, max_batch=8, linger_ms=5.0, max_queue=64,
            warmup_lists=0,
        )
        with ServiceRunner(engine, config) as active:
            service = active.service
            active.call(service.batcher.pause)
            threads = [
                search_in_thread(active, queries[position % len(queries)])
                for position in range(5)
            ]
            assert wait_until(
                lambda: active.call(lambda: service.stats.requests) == 5
            )
            active.call(service.batcher.resume)
            for thread, _ in threads:
                thread.join(30)
            sizes = [box["response"]["server"]["batched_with"] for _, box in threads]
            assert sizes == [5] * 5
            snapshot = active.call(service.stats.snapshot)
            assert snapshot["batches"] == 1
            assert snapshot["batch_size_distribution"] == {"5": 1}

    def test_mixed_thetas_split_into_groups(self, engine, queries):
        config = ServiceConfig(
            port=0, workers=2, max_batch=8, linger_ms=5.0, max_queue=64,
            warmup_lists=0,
        )
        with ServiceRunner(engine, config) as active:
            service = active.service
            active.call(service.batcher.pause)
            low = [search_in_thread(active, queries[0]) for _ in range(2)]
            high_box: dict = {}

            def call_high() -> None:
                try:
                    with ServiceClient(active.host, active.port) as probe:
                        high_box["response"] = probe.search(queries[1], 0.95)
                except BaseException as exc:  # noqa: BLE001
                    high_box["error"] = exc

            high = threading.Thread(target=call_high)
            high.start()
            assert wait_until(
                lambda: active.call(lambda: service.stats.requests) == 3
            )
            active.call(service.batcher.resume)
            for thread, _ in low:
                thread.join(30)
            high.join(30)
            assert [box["response"]["server"]["batched_with"] for _, box in low] == [2, 2]
            assert high_box["response"]["server"]["batched_with"] == 1
            assert high_box["response"]["result"]["theta"] == pytest.approx(0.95)


class TestShutdown:
    def test_clean_shutdown_refuses_connections(self, engine, queries):
        config = ServiceConfig(port=0, workers=1, warmup_lists=0)
        active = ServiceRunner(engine, config).start()
        port = active.port
        with ServiceClient(active.host, port) as probe:
            assert probe.search(queries[0], 0.8)["ok"] is True
        active.stop()
        with pytest.raises(OSError):
            with ServiceClient(active.host, port, timeout=2) as probe:
                probe.health()

    def test_shutdown_drains_admitted_requests(self, engine, queries):
        config = ServiceConfig(
            port=0, workers=1, max_batch=8, linger_ms=2.0, max_queue=8,
            warmup_lists=0,
        )
        active = ServiceRunner(engine, config).start()
        service = active.service
        active.call(service.batcher.pause)
        held, held_box = search_in_thread(active, queries[0])
        queued, queued_box = search_in_thread(active, queries[1])
        assert wait_until(
            lambda: active.call(lambda: service.stats.requests) == 2
        )
        # Graceful drain re-opens the gate and answers both before exit.
        active.stop()
        held.join(30)
        queued.join(30)
        assert held_box.get("response", {}).get("ok") is True
        assert queued_box.get("response", {}).get("ok") is True


class TestWarmup:
    def test_warmup_loads_lists(self, engine):
        searcher = engine.cached_searcher(cache_bytes=4 * 1024 * 1024)
        loaded = engine.warmup(searcher, max_lists=16)
        assert 0 < loaded <= 16
        snap = searcher.index.stats()
        assert snap.cached_lists == loaded
        assert snap.misses == loaded and snap.hits == 0

    def test_warmup_requires_cached_searcher(self, engine):
        with pytest.raises(InvalidParameterError):
            engine.warmup(engine.searcher)

    def test_warmup_respects_budget(self, engine):
        searcher = engine.cached_searcher(cache_bytes=4 * 1024 * 1024)
        loaded = engine.warmup(searcher, max_lists=1000, max_bytes=1)
        assert loaded == 0


# ----------------------------------------------------------------------
# Client-side retry on shed (scripted server, no engine)
# ----------------------------------------------------------------------
class ScriptedShedServer:
    """An HTTP server that sheds the first N requests with 429.

    Runs the real wire format through the real client, so the retry
    loop is tested against exactly what a loaded service emits —
    without racing a real batcher into a full queue.
    """

    def __init__(self, shed_first: int, *, status_after: int = 200):
        import http.server

        server = self

        class Handler(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length", "0"))
                self.rfile.read(length)
                server.attempts += 1
                if server.attempts <= server.shed_first:
                    body = json.dumps(
                        {"ok": False, "error": "queue full", "code": 429}
                    ).encode()
                    self.send_response(429)
                elif server.status_after == 200:
                    body = json.dumps({"ok": True, "result": {}}).encode()
                    self.send_response(200)
                else:
                    body = json.dumps(
                        {
                            "ok": False,
                            "error": "scripted failure",
                            "code": server.status_after,
                        }
                    ).encode()
                    self.send_response(server.status_after)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # quiet
                pass

        self.attempts = 0
        self.shed_first = shed_first
        self.status_after = status_after
        self.httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(5)

    def __enter__(self) -> "ScriptedShedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TestClientRetry:
    def test_default_is_no_retry(self):
        with ScriptedShedServer(shed_first=1) as server:
            with ServiceClient("127.0.0.1", server.port) as probe:
                with pytest.raises(RequestShedError):
                    probe.search([1, 2, 3], 0.8)
            assert server.attempts == 1

    def test_retries_until_success(self):
        with ScriptedShedServer(shed_first=2) as server:
            with ServiceClient(
                "127.0.0.1", server.port, retries=3, backoff_ms=1.0
            ) as probe:
                response = probe.search([1, 2, 3], 0.8)
            assert response["ok"] is True
            assert server.attempts == 3  # 2 sheds + 1 success

    def test_retry_budget_exhausted_reraises(self):
        with ScriptedShedServer(shed_first=10) as server:
            with ServiceClient(
                "127.0.0.1", server.port, retries=2, backoff_ms=1.0
            ) as probe:
                with pytest.raises(RequestShedError):
                    probe.search([1, 2, 3], 0.8)
            assert server.attempts == 3  # the first try + 2 retries

    def test_only_shed_is_retried(self):
        with ScriptedShedServer(shed_first=0, status_after=503) as server:
            with ServiceClient(
                "127.0.0.1", server.port, retries=5, backoff_ms=1.0
            ) as probe:
                with pytest.raises(ServiceClosedError):
                    probe.search([1, 2, 3], 0.8)
            assert server.attempts == 1

    def test_backoff_grows_and_is_capped(self):
        client = ServiceClient(
            "127.0.0.1", 1, retries=4, backoff_ms=10.0, max_backoff_ms=25.0
        )
        delays = [
            min(client.backoff_ms * (2.0**attempt), client.max_backoff_ms)
            for attempt in range(4)
        ]
        assert delays == [10.0, 20.0, 25.0, 25.0]
