"""Tests for the vectorized query hot path.

Three contracts:

1. :func:`repro.core.intervals.fused_collision_count` is pinned against
   the scalar :func:`collision_count` / :func:`interval_scan` oracles —
   same rectangles, same ordering, for arbitrary window groups
   (duplicate endpoints, single-window groups, alpha above the group
   size included).
2. The batched reader methods (``sketch_list_lengths``,
   ``load_texts_windows``, ``ZoneMap.locate_many``) return exactly what
   the scalar methods return, across every reader backend.
3. ``NearDuplicateSearcher(kernel="fused")`` produces matches identical
   to ``kernel="reference"`` (the pre-vectorization loop), and the
   batched long-list refinement issues no more point-read operations
   than the per-candidate loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hashing import HashFamily
from repro.core.intervals import (
    _sweep_groups,
    collision_count,
    fused_collision_count,
    interval_scan,
)
from repro.core.search import NearDuplicateSearcher, SEARCH_KERNELS, sketch_lengths
from repro.corpus.synthetic import synthweb
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.cache import CachedIndexReader
from repro.index.incremental import IncrementalIndex
from repro.index.inverted import POSTING_DTYPE
from repro.index.storage import DiskInvertedIndex, write_index
from repro.index.zonemap import build_zone_map


# ---------------------------------------------------------------------------
# Kernel oracle
# ---------------------------------------------------------------------------
def make_group_array(windows: list[tuple[int, int, int]]) -> np.ndarray:
    """Structured POSTING_DTYPE array from (left, center, right) triples."""
    array = np.zeros(len(windows), dtype=POSTING_DTYPE)
    for slot, (left, center, right) in enumerate(windows):
        array[slot] = (0, left, center, right)
    return array


def fused_over_groups(groups: list[list[tuple[int, int, int]]], alpha: int):
    """Run the fused kernel over concatenated groups; return per-group
    rectangle lists keyed by group position."""
    triples = [
        (gid, left, center, right)
        for gid, group in enumerate(groups)
        for (left, center, right) in group
    ]
    triples.sort(key=lambda t: (t[0], t[1]))
    gids = np.array([t[0] for t in triples], dtype=np.int64)
    lefts = np.array([t[1] for t in triples], dtype=np.int64)
    centers = np.array([t[2] for t in triples], dtype=np.int64)
    rights = np.array([t[3] for t in triples], dtype=np.int64)
    rect = fused_collision_count(lefts, centers, rights, gids, alpha)
    per_group = {}
    for gid in np.unique(rect.group).tolist():
        lo, hi = rect.group_slice(gid)
        per_group[gid] = rect.rectangles(lo, hi)
    return per_group


#: One window: l <= c <= r over a tiny coordinate range, so duplicate
#: endpoints and identical windows are common rather than rare.
window_strategy = st.tuples(
    st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)
).map(lambda t: tuple(sorted(t)))

groups_strategy = st.lists(
    st.lists(window_strategy, min_size=1, max_size=10), min_size=1, max_size=6
)


class TestFusedKernelOracle:
    @given(groups=groups_strategy, alpha=st.integers(1, 5))
    @settings(max_examples=300, deadline=None)
    def test_matches_collision_count_per_group(self, groups, alpha):
        fused = fused_over_groups(groups, alpha)
        for gid, group in enumerate(groups):
            expected = collision_count(make_group_array(group), alpha)
            assert fused.get(gid, []) == expected

    @given(
        interval_groups=st.lists(
            st.lists(
                st.tuples(st.integers(0, 10), st.integers(0, 10)).map(
                    lambda t: tuple(sorted(t))
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=4,
        ),
        alpha=st.integers(1, 4),
    )
    @settings(max_examples=200, deadline=None)
    def test_sweep_groups_matches_interval_scan(self, interval_groups, alpha):
        """The flat multi-group event sweep reports, per group, exactly
        the (start, end, coverage) segments of Algorithm 5."""
        triples = [
            (gid, start, end)
            for gid, intervals in enumerate(interval_groups)
            for (start, end) in intervals
        ]
        gids = np.array([t[0] for t in triples], dtype=np.int64)
        starts = np.array([t[1] for t in triples], dtype=np.int64)
        ends = np.array([t[2] for t in triples], dtype=np.int64)
        seg_group, seg_start, seg_end, seg_count = _sweep_groups(
            starts, ends, gids, alpha
        )
        swept = list(
            zip(
                seg_group.tolist(),
                seg_start.tolist(),
                seg_end.tolist(),
                seg_count.tolist(),
            )
        )
        expected = [
            (gid, segment.start, segment.end, len(segment.members))
            for gid, intervals in enumerate(interval_groups)
            for segment in interval_scan(intervals, alpha)
        ]
        assert swept == expected

    def test_single_window_groups(self):
        groups = [[(2, 4, 7)], [(0, 0, 0)], [(5, 5, 9)]]
        fused = fused_over_groups(groups, 1)
        for gid, group in enumerate(groups):
            assert fused[gid] == collision_count(make_group_array(group), 1)

    def test_alpha_above_group_size_yields_nothing(self):
        groups = [[(0, 1, 2), (1, 2, 3)], [(4, 5, 6)]]
        assert fused_over_groups(groups, 3) == {}

    def test_duplicate_endpoints(self):
        group = [(3, 5, 8), (3, 5, 8), (3, 5, 8), (1, 5, 8)]
        fused = fused_over_groups([group], 2)
        assert fused[0] == collision_count(make_group_array(group), 2)

    def test_ordering_matches_oracle(self):
        group = [(0, 2, 9), (1, 3, 4), (2, 6, 8), (0, 6, 7), (4, 5, 6)]
        fused = fused_over_groups([group], 2)
        assert fused[0] == collision_count(make_group_array(group), 2)

    def test_alpha_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            fused_collision_count(
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                0,
            )

    def test_empty_input(self):
        empty = np.empty(0, dtype=np.int64)
        assert fused_collision_count(empty, empty, empty, empty, 1).size == 0


# ---------------------------------------------------------------------------
# Shared corpus fixtures
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus_setup(tmp_path_factory):
    data = synthweb(
        num_texts=120,
        mean_length=140,
        vocab_size=512,
        duplicate_rate=0.3,
        span_length=48,
        mutation_rate=0.03,
        seed=11,
    )
    family = HashFamily(k=16, seed=5)
    memory = build_memory_index(data.corpus, family, t=25, vocab_size=512)
    directory = tmp_path_factory.mktemp("hotpath-index")
    write_index(memory, directory)
    disk = DiskInvertedIndex(directory)
    return data, family, memory, disk


def reader_variants(memory, disk, family):
    incremental = IncrementalIndex(memory, vocab_size=512)
    return {
        "memory": memory,
        "disk": disk,
        "cached-memory": CachedIndexReader(memory.view()),
        "cached-disk": CachedIndexReader(disk),
        "incremental": incremental,
    }


# ---------------------------------------------------------------------------
# Batched readers == scalar readers
# ---------------------------------------------------------------------------
class TestBatchedReaders:
    def test_sketch_list_lengths_matches_loop(self, corpus_setup):
        data, family, memory, disk = corpus_setup
        sketch = family.sketch(np.asarray(data.corpus[0])[:60])
        for name, reader in reader_variants(memory, disk, family).items():
            lengths = reader.sketch_list_lengths(sketch)
            expected = [
                reader.list_length(func, int(sketch[func]))
                for func in range(family.k)
            ]
            assert lengths.tolist() == expected, name
            # The searcher-side helper goes through the same method.
            assert sketch_lengths(reader, sketch, family.k).tolist() == expected

    def test_sketch_lengths_falls_back_without_batched_method(self, corpus_setup):
        data, family, memory, _ = corpus_setup

        class MinimalReader:
            def list_length(self, func, minhash):
                return memory.list_length(func, minhash)

        sketch = family.sketch(np.asarray(data.corpus[1])[:60])
        assert (
            sketch_lengths(MinimalReader(), sketch, family.k).tolist()
            == memory.sketch_list_lengths(sketch).tolist()
        )

    def test_load_texts_windows_matches_point_reads(self, corpus_setup):
        data, family, memory, disk = corpus_setup
        rng = np.random.default_rng(3)
        sketch = family.sketch(np.asarray(data.corpus[2])[:80])
        # Texts present, absent, duplicated, and out of range.
        wanted = np.array(
            sorted(rng.integers(0, 140, size=12).tolist() + [0, 0, 5]),
            dtype=np.int64,
        )
        for name, reader in reader_variants(memory, disk, family).items():
            for func in range(family.k):
                minhash = int(sketch[func])
                batched = reader.load_texts_windows(func, minhash, wanted)
                parts = [
                    reader.load_text_windows(func, minhash, int(text_id))
                    for text_id in np.unique(wanted)
                ]
                parts = [part for part in parts if part.size]
                expected = (
                    np.concatenate(parts)
                    if parts
                    else np.empty(0, dtype=POSTING_DTYPE)
                )
                assert np.array_equal(batched, expected), (name, func)

    def test_load_texts_windows_absent_list(self, corpus_setup):
        _, family, memory, disk = corpus_setup
        for name, reader in reader_variants(memory, disk, family).items():
            out = reader.load_texts_windows(
                0, 0xDEADBEEF, np.array([1, 2], dtype=np.int64)
            )
            assert out.size == 0, name

    def test_cached_reader_serves_from_hot_list(self, corpus_setup):
        data, family, memory, _ = corpus_setup
        reader = CachedIndexReader(memory.view())
        sketch = family.sketch(np.asarray(data.corpus[4])[:80])
        func = int(np.argmax(reader.sketch_list_lengths(sketch)))
        minhash = int(sketch[func])
        full = reader.load_list(func, minhash)
        assert full.size > 0
        hits_before = reader.hits
        wanted = np.unique(full["text"][: min(full.size, 5)].astype(np.int64))
        batched = reader.load_texts_windows(func, minhash, wanted)
        assert reader.hits == hits_before + 1
        expected = np.concatenate(
            [memory.load_text_windows(func, minhash, int(t)) for t in wanted]
        )
        assert np.array_equal(batched, expected)


class TestZoneMapLocateMany:
    @given(
        text_ids=st.lists(st.integers(0, 30), min_size=1, max_size=40),
        step=st.integers(1, 8),
        queries=st.lists(st.integers(-2, 35), min_size=1, max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_locate(self, text_ids, step, queries):
        zone = build_zone_map(
            np.array(sorted(text_ids), dtype=np.uint32), step=step
        )
        wanted = np.array(queries, dtype=np.int64)
        lo, hi = zone.locate_many(wanted)
        for slot, text_id in enumerate(queries):
            expected_lo, expected_hi = zone.locate(int(text_id))
            assert (int(lo[slot]), int(hi[slot])) == (expected_lo, expected_hi)

    def test_empty_zone_map(self):
        zone = build_zone_map(np.empty(0, dtype=np.uint32))
        lo, hi = zone.locate_many(np.array([0, 7], dtype=np.int64))
        assert lo.tolist() == [0, 0] and hi.tolist() == [0, 0]


# ---------------------------------------------------------------------------
# Searcher: fused == reference
# ---------------------------------------------------------------------------
class TestSearcherEquivalence:
    def test_kernel_validated(self, corpus_setup):
        _, _, memory, _ = corpus_setup
        with pytest.raises(InvalidParameterError):
            NearDuplicateSearcher(memory, kernel="turbo")
        assert set(SEARCH_KERNELS) == {"fused", "reference"}

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    @pytest.mark.parametrize("theta", [0.6, 0.8, 1.0])
    @pytest.mark.parametrize("first_match_only", [False, True])
    def test_matches_and_stats(
        self, corpus_setup, backend, theta, first_match_only
    ):
        data, family, memory, disk = corpus_setup
        index = memory if backend == "memory" else disk
        fused = NearDuplicateSearcher(index, kernel="fused")
        reference = NearDuplicateSearcher(index, kernel="reference")
        for position in (0, 3, 17, 41):
            query = np.asarray(data.corpus[position])[:64]
            a = fused.search(query, theta, first_match_only=first_match_only)
            b = reference.search(
                query, theta, first_match_only=first_match_only
            )
            assert a.matches == b.matches
            assert a.stats.groups_scanned == b.stats.groups_scanned
            assert a.stats.candidates == b.stats.candidates
            assert a.stats.lists_loaded == b.stats.lists_loaded
            assert a.stats.long_lists == b.stats.long_lists

    def test_verify_path_equivalent(self, corpus_setup):
        data, _, memory, _ = corpus_setup
        fused = NearDuplicateSearcher(
            memory, corpus=data.corpus, kernel="fused"
        )
        reference = NearDuplicateSearcher(
            memory, corpus=data.corpus, kernel="reference"
        )
        for position in (0, 9, 23):
            query = np.asarray(data.corpus[position])[:64]
            a = fused.search(query, 0.7, verify=True)
            b = reference.search(query, 0.7, verify=True)
            assert a.matches == b.matches

    @pytest.mark.parametrize("backend", ["memory", "disk"])
    def test_long_list_path_equivalent_with_fewer_point_reads(
        self, corpus_setup, backend
    ):
        data, _, memory, disk = corpus_setup
        index = memory if backend == "memory" else disk
        fused = NearDuplicateSearcher(index, long_list_cutoff=1, kernel="fused")
        reference = NearDuplicateSearcher(
            index, long_list_cutoff=1, kernel="reference"
        )
        saw_long = False
        for position in (0, 3, 17, 41, 60):
            query = np.asarray(data.corpus[position])[:64]
            a = fused.search(query, 0.6)
            b = reference.search(query, 0.6)
            assert a.matches == b.matches
            assert a.stats.long_lists == b.stats.long_lists
            # Reference pays one point read per (candidate, long list);
            # fused pays one batched read per long list.
            assert a.stats.point_reads <= b.stats.point_reads
            if b.stats.long_lists and b.stats.candidates > 1:
                saw_long = True
                assert a.stats.point_reads < b.stats.point_reads
        assert saw_long, "corpus did not exercise the long-list path"

    def test_point_reads_zero_without_long_lists(self, corpus_setup):
        data, _, memory, _ = corpus_setup
        searcher = NearDuplicateSearcher(memory, long_list_cutoff=0)
        result = searcher.search(np.asarray(data.corpus[0])[:64], 0.7)
        assert result.stats.long_lists == 0
        assert result.stats.point_reads == 0


class TestBetaOneEdge:
    def test_select_long_lists_keeps_zero_at_beta_one(self, corpus_setup):
        """With beta = 1 every list must stay short: the short-list
        threshold is beta - len(long) and must remain >= 1."""
        _, family, memory, _ = corpus_setup
        searcher = NearDuplicateSearcher(memory, long_list_cutoff=1)
        lengths = np.array([10_000] * family.k, dtype=np.int64)
        assert searcher._select_long_lists(lengths, beta=1) == set()
        assert len(searcher._select_long_lists(lengths, beta=4)) == 3

    def test_search_at_beta_one_uses_no_long_lists(self, corpus_setup):
        data, family, memory, _ = corpus_setup
        searcher = NearDuplicateSearcher(memory, long_list_cutoff=1)
        query = np.asarray(data.corpus[0])[:64]
        # theta low enough that ceil(k * theta) == 1.
        result = searcher.search(query, 1.0 / (2 * family.k))
        assert result.beta == 1
        assert result.stats.long_lists == 0
        assert result.stats.point_reads == 0
