"""Tests for the exact-verification search mode (Definition 1 pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import search_exact
from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.verify import distinct_jaccard
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index


@pytest.fixture(scope="module")
def engine():
    rng = np.random.default_rng(91)
    vocab = 150
    texts = [rng.integers(0, vocab, size=70).astype(np.uint32) for _ in range(8)]
    texts[5][10:40] = texts[1][20:50]
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=24, seed=5)
    index = build_memory_index(corpus, family, t=12, vocab_size=vocab)
    return corpus, NearDuplicateSearcher(index, corpus=corpus)


class TestVerifiedSearch:
    def test_requires_corpus(self, engine):
        corpus, searcher = engine
        bare = NearDuplicateSearcher(searcher.index)  # no corpus
        with pytest.raises(InvalidParameterError):
            bare.search(np.asarray(corpus[0])[:20], 0.8, verify=True)

    def test_every_verified_span_passes_exact_jaccard(self, engine):
        corpus, searcher = engine
        query = np.asarray(corpus[1])[20:50]
        theta = 0.8
        result = searcher.search(query, theta, verify=True)
        assert result.matches
        for match in result.matches:
            text = np.asarray(corpus[match.text_id])
            passed_any = False
            for rect in match.rectangles:
                for (i, j) in rect.iter_spans(searcher.t):
                    if distinct_jaccard(query, text[i : j + 1]) >= theta:
                        passed_any = True
            assert passed_any

    def test_verified_subset_of_unverified(self, engine):
        corpus, searcher = engine
        query = np.asarray(corpus[1])[20:50]
        loose = searcher.search(query, 0.8)
        strict = searcher.search(query, 0.8, verify=True)
        loose_texts = {m.text_id for m in loose.matches}
        strict_texts = {m.text_id for m in strict.matches}
        assert strict_texts <= loose_texts

    def test_verified_finds_true_positives(self, engine):
        """The planted copy passes exact verification."""
        corpus, searcher = engine
        query = np.asarray(corpus[1])[20:50]
        result = searcher.search(query, 0.9, verify=True)
        assert {m.text_id for m in result.matches} >= {1, 5}

    def test_verified_covers_exact_answers_found_by_sketching(self, engine):
        """Everything in Definition 1 that the sketches surfaced must
        survive verification (verification never drops a true positive)."""
        corpus, searcher = engine
        query = np.asarray(corpus[1])[20:50]
        theta = 0.85
        exact = {
            (s.text_id, s.start, s.end)
            for s in search_exact(corpus, query, theta, searcher.t)
        }
        unverified = searcher.search(query, theta)
        surfaced = {
            (m.text_id, i, j)
            for m in unverified.matches
            for rect in m.rectangles
            for (i, j) in rect.iter_spans(searcher.t)
        }
        verified = searcher.search(query, theta, verify=True)
        kept = {
            (m.text_id, i, j)
            for m in verified.matches
            for rect in m.rectangles
            for (i, j) in rect.iter_spans(searcher.t)
        }
        # True positives the engine surfaced are all kept (the kept
        # rectangles are bounding boxes, so kept may slightly exceed
        # the exact intersection but never lose a member of it).
        assert (exact & surfaced) <= kept

    def test_theta_one_verification(self, engine):
        corpus, searcher = engine
        query = np.asarray(corpus[3])[:20]
        result = searcher.search(query, 1.0, verify=True)
        assert any(m.text_id == 3 for m in result.matches)
