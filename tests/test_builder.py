"""Tests for in-memory index construction (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact_windows import generate_compact_windows_stack
from repro.core.hashing import HashFamily
from repro.core.theory import expected_window_count, index_size_ratio_bound
from repro.corpus.corpus import InMemoryCorpus, corpus_nbytes
from repro.exceptions import InvalidParameterError
from repro.index.builder import (
    BuildStats,
    build_and_write_index,
    build_memory_index,
    generate_corpus_postings,
)
from repro.index.storage import DiskInvertedIndex


class TestGenerateCorpusPostings:
    def test_postings_match_direct_generation(self, family, tiny_corpus):
        vocab_hashes = family.hash_vocabulary(50)
        batch = [(i, np.asarray(tiny_corpus[i])) for i in range(len(tiny_corpus))]
        per_func = generate_corpus_postings(batch, family, 5, vocab_hashes)
        assert len(per_func) == family.k
        for func, (minhashes, postings) in enumerate(per_func):
            # Re-derive for one text and compare.
            text0 = np.asarray(tiny_corpus[0])
            hashes = vocab_hashes[func][text0.astype(np.int64)]
            expected = generate_compact_windows_stack(hashes, 5)
            got = postings[postings["text"] == 0]
            assert got.size == expected.size
            assert np.array_equal(np.sort(got["center"]), np.sort(expected["center"]))
            # min-hash of each posting equals the hash of its center token.
            for rec, mh in zip(postings, minhashes):
                text = np.asarray(tiny_corpus[int(rec["text"])])
                assert vocab_hashes[func][int(text[int(rec["center"])])] == mh

    def test_empty_batch(self, family):
        vocab_hashes = family.hash_vocabulary(10)
        per_func = generate_corpus_postings([], family, 5, vocab_hashes)
        assert all(p.size == 0 for _, p in per_func)


class TestBuildMemoryIndex:
    def test_posting_count_near_expectation(self):
        """Total windows ~ k * sum over texts of 2(n+1)/(t+1) - 1."""
        rng = np.random.default_rng(11)
        lengths = [200] * 50
        corpus = InMemoryCorpus(
            [rng.integers(0, 10**6, size=n).astype(np.uint32) for n in lengths]
        )
        family = HashFamily(k=4, seed=9)
        t = 10
        index = build_memory_index(corpus, family, t)
        expected = family.k * sum(expected_window_count(n, t) for n in lengths)
        assert abs(index.num_postings - expected) < 0.1 * expected

    def test_index_size_ratio_bound_holds(self, planted_data, planted_index):
        """Figure 2 claim: per-function index size <= (8/t) * corpus size."""
        per_func_bytes = planted_index.nbytes / planted_index.family.k
        bound = index_size_ratio_bound(planted_index.t) * corpus_nbytes(
            planted_data.corpus
        )
        assert per_func_bytes <= bound * 1.1  # 10% slack for short-text effects

    def test_t_validated(self, family, tiny_corpus):
        with pytest.raises(InvalidParameterError):
            build_memory_index(tiny_corpus, family, t=0)

    def test_stats_populated(self, family, tiny_corpus):
        stats = BuildStats()
        index = build_memory_index(tiny_corpus, family, t=5, stats=stats)
        assert stats.windows_generated == index.num_postings
        assert stats.generation_seconds > 0
        assert len(stats.windows_per_func) == family.k
        assert sum(stats.windows_per_func) == index.num_postings
        assert stats.index_bytes == index.nbytes

    def test_vocab_size_inferred(self, family):
        corpus = InMemoryCorpus([[100, 5, 100, 7] * 5])
        index = build_memory_index(corpus, family, t=3)
        assert index.num_postings > 0

    def test_texts_shorter_than_t_skipped(self, family):
        corpus = InMemoryCorpus([[1, 2, 3], [4] * 30])
        index = build_memory_index(corpus, family, t=10)
        for func in range(family.k):
            for _, postings in index.iter_lists(func):
                assert np.all(postings["text"] == 1)

    def test_empty_corpus(self, family):
        index = build_memory_index(InMemoryCorpus([]), family, t=5, vocab_size=4)
        assert index.num_postings == 0

    def test_deterministic(self, family, tiny_corpus):
        a = build_memory_index(tiny_corpus, family, t=5)
        b = build_memory_index(tiny_corpus, family, t=5)
        assert a.num_postings == b.num_postings
        for func in range(family.k):
            lists_a = dict(a.iter_lists(func))
            lists_b = dict(b.iter_lists(func))
            assert lists_a.keys() == lists_b.keys()
            for key in lists_a:
                assert np.array_equal(lists_a[key], lists_b[key])


class TestBuildAndWrite:
    def test_produces_readable_index(self, family, tiny_corpus, tmp_path):
        stats = build_and_write_index(tiny_corpus, family, 5, tmp_path / "idx")
        disk = DiskInvertedIndex(tmp_path / "idx")
        assert disk.num_postings == stats.windows_generated
        assert stats.io_seconds > 0
        assert stats.bytes_written == disk.nbytes
        assert stats.total_seconds >= stats.generation_seconds
