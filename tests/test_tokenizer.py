"""Tests for the byte-level BPE tokenizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.corpus import TOKEN_DTYPE
from repro.exceptions import TokenizerError
from repro.tokenizer.bpe import BPETokenizer, pretokenize
from repro.tokenizer.vocab import NUM_BYTE_TOKENS, Vocabulary

SAMPLES = [
    "the quick brown fox jumps over the lazy dog",
    "the quick brown cat sleeps under the warm sun",
    "hello world, hello SIGMOD! numbers 12345 and 67890.",
    "tokenization handles  multiple   spaces and\nnewlines\ttabs",
]


class TestPretokenize:
    def test_words_with_leading_space(self):
        parts = list(pretokenize("hello world"))
        assert parts == [b"hello", b" world"]

    def test_numbers_separate(self):
        parts = list(pretokenize("abc123"))
        assert parts == [b"abc", b"123"]

    def test_punctuation_separate(self):
        parts = list(pretokenize("hi!"))
        assert parts == [b"hi", b"!"]

    def test_lossless(self):
        for text in SAMPLES:
            assert b"".join(pretokenize(text)).decode("utf-8") == text

    def test_unicode(self):
        text = "café ☕ 日本語"
        assert b"".join(pretokenize(text)).decode("utf-8") == text


class TestVocabulary:
    def test_default_is_bytes(self):
        vocab = Vocabulary()
        assert len(vocab) == NUM_BYTE_TOKENS
        assert vocab.token_bytes(65) == b"A"
        assert vocab.token_id(b"A") == 65

    def test_add(self):
        vocab = Vocabulary()
        token_id = vocab.add(b"th")
        assert token_id == 256
        assert vocab.token_bytes(256) == b"th"

    def test_duplicate_add_rejected(self):
        vocab = Vocabulary()
        vocab.add(b"th")
        with pytest.raises(TokenizerError):
            vocab.add(b"th")

    def test_missing_lookup(self):
        vocab = Vocabulary()
        assert vocab.token_id(b"zz") is None
        with pytest.raises(TokenizerError):
            vocab.token_bytes(9999)

    def test_byte_prefix_enforced(self):
        with pytest.raises(TokenizerError):
            Vocabulary([b"x"] * 256)


class TestTraining:
    def test_vocab_budget_respected(self):
        tokenizer = BPETokenizer.train(SAMPLES, vocab_size=300)
        assert NUM_BYTE_TOKENS <= tokenizer.vocab_size <= 300

    def test_merges_learned(self):
        tokenizer = BPETokenizer.train(SAMPLES * 3, vocab_size=300)
        assert tokenizer.num_merges > 0

    def test_vocab_too_small_rejected(self):
        with pytest.raises(TokenizerError):
            BPETokenizer.train(SAMPLES, vocab_size=100)

    def test_frequent_word_becomes_few_tokens(self):
        texts = ["the cat and the dog and the bird"] * 50
        tokenizer = BPETokenizer.train(texts, vocab_size=300)
        assert len(tokenizer.encode_word(b"the")) <= 2

    def test_caps_applied(self):
        tokenizer = BPETokenizer.train(
            ["abcdef" * 100] * 10, vocab_size=270, max_texts=2, max_text_length=12
        )
        assert tokenizer.vocab_size <= 270

    def test_untrained_is_byte_level(self):
        tokenizer = BPETokenizer()
        ids = tokenizer.encode("AB")
        assert ids.tolist() == [65, 66]


class TestEncodingDecoding:
    @pytest.fixture(scope="class")
    def tokenizer(self):
        return BPETokenizer.train(SAMPLES * 5, vocab_size=350)

    def test_roundtrip(self, tokenizer):
        for text in SAMPLES:
            assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_roundtrip_unseen_text(self, tokenizer):
        text = "completely unseen zebra xylophone!"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_roundtrip_unicode(self, tokenizer):
        text = "émoji ✨ and ümlauts"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_encode_dtype(self, tokenizer):
        assert tokenizer.encode("hello").dtype == TOKEN_DTYPE

    def test_empty_string(self, tokenizer):
        assert tokenizer.encode("").size == 0
        assert tokenizer.decode(np.array([], dtype=TOKEN_DTYPE)) == ""

    def test_compression(self, tokenizer):
        """Trained BPE must beat byte-level encoding on in-domain text."""
        text = SAMPLES[0]
        assert tokenizer.encode(text).size < len(text.encode("utf-8"))

    def test_larger_vocab_fewer_tokens(self):
        small = BPETokenizer.train(SAMPLES * 5, vocab_size=280)
        large = BPETokenizer.train(SAMPLES * 5, vocab_size=400)
        text = SAMPLES[0] + " " + SAMPLES[1]
        assert large.encode(text).size <= small.encode(text).size

    def test_deterministic(self):
        a = BPETokenizer.train(SAMPLES, vocab_size=300)
        b = BPETokenizer.train(SAMPLES, vocab_size=300)
        text = SAMPLES[2]
        assert a.encode(text).tolist() == b.encode(text).tolist()


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        tokenizer = BPETokenizer.train(SAMPLES * 3, vocab_size=320)
        path = tmp_path / "bpe.json"
        tokenizer.save(path)
        loaded = BPETokenizer.load(path)
        assert loaded.vocab_size == tokenizer.vocab_size
        assert loaded.num_merges == tokenizer.num_merges
        for text in SAMPLES:
            assert loaded.encode(text).tolist() == tokenizer.encode(text).tolist()

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(TokenizerError):
            BPETokenizer.load(path)

    def test_binary_safe(self, tmp_path):
        """Byte tokens above 127 must survive the JSON round-trip."""
        tokenizer = BPETokenizer.train(["ÿÿÿÿ ÿÿ"] * 5, vocab_size=300)
        path = tmp_path / "bin.json"
        tokenizer.save(path)
        loaded = BPETokenizer.load(path)
        assert loaded.decode(loaded.encode("ÿÿ")) == "ÿÿ"
