"""Tests for corpus abstractions and the on-disk store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.corpus.corpus import Corpus, InMemoryCorpus, TOKEN_DTYPE, corpus_nbytes
from repro.corpus.store import DiskCorpus, write_corpus
from repro.exceptions import CorpusFormatError, InvalidParameterError


class TestInMemoryCorpus:
    def test_basic_access(self):
        corpus = InMemoryCorpus([[1, 2, 3], [4, 5]])
        assert len(corpus) == 2
        assert corpus.total_tokens == 5
        assert np.array_equal(corpus[0], np.array([1, 2, 3], dtype=TOKEN_DTYPE))

    def test_iteration_order(self):
        corpus = InMemoryCorpus([[1], [2], [3]])
        assert [int(t[0]) for t in corpus] == [1, 2, 3]

    def test_dtype_coerced(self):
        corpus = InMemoryCorpus([np.array([1.0, 2.0])])
        assert corpus[0].dtype == TOKEN_DTYPE

    def test_empty_corpus(self):
        corpus = InMemoryCorpus([])
        assert len(corpus) == 0
        assert corpus.total_tokens == 0

    def test_empty_text_allowed(self):
        corpus = InMemoryCorpus([[], [1]])
        assert corpus[0].size == 0
        assert corpus.total_tokens == 1

    def test_two_dimensional_rejected(self):
        with pytest.raises(InvalidParameterError):
            InMemoryCorpus([np.zeros((2, 2))])

    def test_satisfies_protocol(self):
        assert isinstance(InMemoryCorpus([[1]]), Corpus)

    def test_vocabulary_size(self):
        corpus = InMemoryCorpus([[0, 5], [3]])
        assert corpus.vocabulary_size() == 6
        assert InMemoryCorpus([]).vocabulary_size() == 0

    def test_subset(self):
        corpus = InMemoryCorpus([[1], [2], [3]])
        sub = corpus.subset(2)
        assert len(sub) == 2
        assert int(sub[1][0]) == 2
        with pytest.raises(InvalidParameterError):
            corpus.subset(-1)

    def test_iter_batches(self):
        corpus = InMemoryCorpus([[i] for i in range(7)])
        batches = list(corpus.iter_batches(3))
        assert [len(b) for b in batches] == [3, 3, 1]
        ids = [text_id for batch in batches for text_id, _ in batch]
        assert ids == list(range(7))

    def test_iter_batches_validation(self):
        with pytest.raises(InvalidParameterError):
            list(InMemoryCorpus([[1]]).iter_batches(0))

    def test_corpus_nbytes(self):
        corpus = InMemoryCorpus([[1, 2], [3]])
        assert corpus_nbytes(corpus) == 12


class TestDiskCorpus:
    def test_roundtrip(self, tmp_path, tiny_corpus):
        directory = write_corpus(tiny_corpus, tmp_path / "corpus")
        disk = DiskCorpus(directory)
        assert len(disk) == len(tiny_corpus)
        assert disk.total_tokens == tiny_corpus.total_tokens
        for text_id in range(len(tiny_corpus)):
            assert np.array_equal(disk[text_id], tiny_corpus[text_id])

    def test_write_from_generator(self, tmp_path):
        def produce():
            yield np.array([1, 2], dtype=TOKEN_DTYPE)
            yield np.array([3], dtype=TOKEN_DTYPE)

        directory = write_corpus(produce(), tmp_path / "gen")
        disk = DiskCorpus(directory)
        assert len(disk) == 2
        assert disk.total_tokens == 3

    def test_empty_corpus(self, tmp_path):
        directory = write_corpus([], tmp_path / "empty")
        disk = DiskCorpus(directory)
        assert len(disk) == 0
        assert disk.total_tokens == 0

    def test_index_out_of_range(self, tmp_path):
        directory = write_corpus([np.array([1], dtype=TOKEN_DTYPE)], tmp_path / "c")
        disk = DiskCorpus(directory)
        with pytest.raises(IndexError):
            disk[1]
        with pytest.raises(IndexError):
            disk[-1]

    def test_missing_meta(self, tmp_path):
        with pytest.raises(CorpusFormatError):
            DiskCorpus(tmp_path)

    def test_truncated_tokens_detected(self, tmp_path):
        directory = write_corpus(
            [np.arange(100, dtype=TOKEN_DTYPE)], tmp_path / "trunc"
        )
        tokens = directory / "tokens.bin"
        tokens.write_bytes(tokens.read_bytes()[:-4])
        with pytest.raises(CorpusFormatError):
            DiskCorpus(directory)

    def test_bad_version_detected(self, tmp_path):
        directory = write_corpus([np.array([1], dtype=TOKEN_DTYPE)], tmp_path / "v")
        meta = directory / "meta.json"
        payload = json.loads(meta.read_text())
        payload["format_version"] = 999
        meta.write_text(json.dumps(payload))
        with pytest.raises(CorpusFormatError):
            DiskCorpus(directory)

    def test_meta_text_count_mismatch(self, tmp_path):
        directory = write_corpus([np.array([1], dtype=TOKEN_DTYPE)], tmp_path / "m")
        meta = directory / "meta.json"
        payload = json.loads(meta.read_text())
        payload["num_texts"] = 7
        meta.write_text(json.dumps(payload))
        with pytest.raises(CorpusFormatError):
            DiskCorpus(directory)

    def test_iter_batches_copies(self, tmp_path, tiny_corpus):
        directory = write_corpus(tiny_corpus, tmp_path / "b")
        disk = DiskCorpus(directory)
        batches = list(disk.iter_batches(5))
        total = sum(tokens.size for batch in batches for _, tokens in batch)
        assert total == tiny_corpus.total_tokens
        first_batch_text = batches[0][0][1]
        assert first_batch_text.flags.owndata  # copied out of the memmap

    def test_to_memory(self, tmp_path, tiny_corpus):
        directory = write_corpus(tiny_corpus, tmp_path / "mem")
        loaded = DiskCorpus(directory).to_memory()
        assert isinstance(loaded, InMemoryCorpus)
        for text_id in range(len(tiny_corpus)):
            assert np.array_equal(loaded[text_id], tiny_corpus[text_id])

    def test_iteration(self, tmp_path):
        directory = write_corpus(
            [np.array([i], dtype=TOKEN_DTYPE) for i in range(5)], tmp_path / "it"
        )
        values = [int(text[0]) for text in DiskCorpus(directory)]
        assert values == list(range(5))
