"""Tests for Kneser-Ney smoothing and the batch search API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.corpus.synthetic import zipf_corpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import build_memory_index
from repro.lm.evaluation import corpus_perplexity
from repro.lm.ngram import NGramConfig, NGramLM


@pytest.fixture(scope="module")
def train_corpus():
    phrase = [1, 2, 3, 4, 5, 6]
    rng = np.random.default_rng(19)
    texts = []
    for _ in range(25):
        noise = rng.integers(0, 30, size=12).tolist()
        texts.append(np.array(phrase * 4 + noise, dtype=np.uint32))
    return InMemoryCorpus(texts)


class TestKneserNeyConfig:
    def test_smoothing_validated(self):
        with pytest.raises(InvalidParameterError):
            NGramConfig(order=3, smoothing="laplace")
        with pytest.raises(InvalidParameterError):
            NGramConfig(order=3, smoothing="kneser_ney", discount=0.0)
        with pytest.raises(InvalidParameterError):
            NGramConfig(order=3, smoothing="kneser_ney", discount=1.0)


class TestKneserNeyDistribution:
    def test_normalized(self, train_corpus):
        model = NGramLM(
            NGramConfig(order=3, smoothing="kneser_ney"), 30
        ).fit(train_corpus)
        for context in ([], [1], [1, 2], [29, 29]):
            probs = model.next_token_distribution(context)
            assert float(probs.sum()) == pytest.approx(1.0)
            assert probs.min() > 0.0

    def test_learned_continuation_dominates(self, train_corpus):
        model = NGramLM(
            NGramConfig(order=4, smoothing="kneser_ney"), 30
        ).fit(train_corpus)
        probs = model.next_token_distribution([1, 2, 3])
        assert int(np.argmax(probs)) == 4

    def test_discount_flattens(self, train_corpus):
        """A larger discount moves mass from seen events to the backoff."""
        sharp = NGramLM(
            NGramConfig(order=3, smoothing="kneser_ney", discount=0.1), 30
        ).fit(train_corpus)
        flat = NGramLM(
            NGramConfig(order=3, smoothing="kneser_ney", discount=0.9), 30
        ).fit(train_corpus)
        peak_sharp = float(sharp.next_token_distribution([1, 2]).max())
        peak_flat = float(flat.next_token_distribution([1, 2]).max())
        assert peak_sharp > peak_flat

    def test_kn_beats_fixed_interpolation_on_train(self, train_corpus):
        """On structured data KN yields competitive (lower or similar)
        perplexity vs a fixed-weight interpolation."""
        kn = NGramLM(NGramConfig(order=4, smoothing="kneser_ney"), 30).fit(
            train_corpus
        )
        fixed = NGramLM(
            NGramConfig(order=4, smoothing="interpolated", interpolation=0.5), 30
        ).fit(train_corpus)
        ppl_kn = corpus_perplexity(kn, train_corpus, max_texts=6)
        ppl_fixed = corpus_perplexity(fixed, train_corpus, max_texts=6)
        assert ppl_kn <= ppl_fixed * 1.2

    def test_generation_works(self, train_corpus):
        from repro.lm.generation import GenerationConfig, generate

        model = NGramLM(
            NGramConfig(order=3, smoothing="kneser_ney"), 30
        ).fit(train_corpus)
        out = generate(model, 20, config=GenerationConfig(strategy="greedy"))
        assert out.size == 20


class TestSearchMany:
    @pytest.fixture(scope="class")
    def engine(self):
        corpus = zipf_corpus(60, mean_length=80, vocab_size=256, seed=9)
        family = HashFamily(k=8, seed=4)
        index = build_memory_index(corpus, family, t=10, vocab_size=256)
        return corpus, NearDuplicateSearcher(index)

    def test_matches_individual_searches(self, engine):
        corpus, searcher = engine
        queries = [np.asarray(corpus[i])[:25] for i in range(4)]
        batch = searcher.search_many(queries, 0.8)
        assert len(batch) == 4
        for query, result in zip(queries, batch):
            single = searcher.search(query, 0.8)
            as_set = lambda res: {
                (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                for m in res.matches
                for r in m.rectangles
            }
            assert as_set(result) == as_set(single)

    def test_empty_batch(self, engine):
        _, searcher = engine
        assert searcher.search_many([], 0.8) == []

    def test_first_match_only_propagates(self, engine):
        corpus, searcher = engine
        queries = [np.asarray(corpus[0])[:25]]
        results = searcher.search_many(queries, 0.8, first_match_only=True)
        assert results[0].num_texts <= 1
