"""Tests for the closed-form analysis helpers."""

from __future__ import annotations

import math

import pytest

from repro.core.theory import (
    collision_threshold,
    estimator_variance_bound,
    expected_corpus_window_count,
    expected_window_count,
    index_size_ratio_bound,
    recall_estimate,
)
from repro.exceptions import InvalidParameterError


class TestExpectedWindowCount:
    def test_below_threshold_is_zero(self):
        assert expected_window_count(4, 5) == 0.0
        assert expected_window_count(0, 1) == 0.0

    def test_base_case_n_equals_t(self):
        # S_t = 1 exactly: 2(t+1)/(t+1) - 1 = 1.
        for t in (1, 5, 25, 100):
            assert expected_window_count(t, t) == 1.0

    def test_paper_example(self):
        assert expected_window_count(17, 5) == 5.0

    def test_t1_gives_n_windows(self):
        # Every position is its own window when t = 1: 2(n+1)/2 - 1 = n.
        for n in (1, 10, 1000):
            assert expected_window_count(n, 1) == float(n)

    def test_inverse_in_t(self):
        assert expected_window_count(1000, 25) > expected_window_count(1000, 50)
        assert expected_window_count(1000, 50) > expected_window_count(1000, 100)

    def test_linear_in_n(self):
        small = expected_window_count(1000, 10)
        large = expected_window_count(2000, 10)
        assert large / small == pytest.approx(2.0, rel=0.01)

    def test_recurrence_satisfied(self):
        """S_n = 1 + (2/n) * sum_{i<n} S_i, the recurrence in Theorem 1."""
        t = 4
        for n in range(t, 60):
            total = sum(expected_window_count(i, t) for i in range(n))
            assert expected_window_count(n, t) == pytest.approx(1 + 2 * total / n)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            expected_window_count(10, 0)
        with pytest.raises(InvalidParameterError):
            expected_window_count(-1, 5)


class TestCorpusLevel:
    def test_scales_with_k(self):
        one = expected_corpus_window_count(10_000, 100, 25, k=1)
        four = expected_corpus_window_count(10_000, 100, 25, k=4)
        assert four == pytest.approx(4 * one)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            expected_corpus_window_count(100, 0, 5, 1)
        with pytest.raises(InvalidParameterError):
            expected_corpus_window_count(100, 10, 5, 0)


class TestRatioAndVariance:
    def test_ratio_bound(self):
        assert index_size_ratio_bound(50) == pytest.approx(0.16)
        assert index_size_ratio_bound(100) == pytest.approx(0.08)

    def test_ratio_validation(self):
        with pytest.raises(InvalidParameterError):
            index_size_ratio_bound(0)

    def test_variance_bound(self):
        assert estimator_variance_bound(64) == pytest.approx(1 / 256)

    def test_variance_validation(self):
        with pytest.raises(InvalidParameterError):
            estimator_variance_bound(0)


class TestCollisionThreshold:
    def test_ceiling(self):
        assert collision_threshold(32, 0.8) == math.ceil(25.6) == 26
        assert collision_threshold(32, 1.0) == 32
        assert collision_threshold(10, 0.01) == 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            collision_threshold(0, 0.5)
        with pytest.raises(InvalidParameterError):
            collision_threshold(8, 0.0)
        with pytest.raises(InvalidParameterError):
            collision_threshold(8, 1.5)


class TestRecallEstimate:
    def test_certainties(self):
        assert recall_estimate(16, 0.5, 1.0) == pytest.approx(1.0)
        assert recall_estimate(16, 0.5, 0.0) == pytest.approx(0.0)

    def test_monotone_in_jaccard(self):
        lo = recall_estimate(32, 0.8, 0.7)
        hi = recall_estimate(32, 0.8, 0.9)
        assert hi > lo

    def test_larger_k_sharpens(self):
        """With more hash functions, a clearly-similar pair is found more reliably."""
        assert recall_estimate(64, 0.8, 0.9) > recall_estimate(8, 0.8, 0.9)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            recall_estimate(8, 0.5, 1.5)
