"""Tests for merging independently-built on-disk indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.exceptions import IndexFormatError, InvalidParameterError
from repro.index.builder import build_memory_index
from repro.index.merge import merge_disk_indexes
from repro.index.storage import DiskInvertedIndex, write_index

VOCAB = 180


@pytest.fixture(scope="module")
def partitions(tmp_path_factory, ):
    rng = np.random.default_rng(23)
    texts = [rng.integers(0, VOCAB, size=60).astype(np.uint32) for _ in range(12)]
    family = HashFamily(k=6, seed=8)
    t = 10
    root = tmp_path_factory.mktemp("merge")
    paths = []
    # Three partitions of 4 texts each, indexed with *local* ids 0..3.
    for part in range(3):
        local = InMemoryCorpus(texts[part * 4 : (part + 1) * 4])
        index = build_memory_index(local, family, t, vocab_size=VOCAB)
        path = root / f"part{part}"
        write_index(index, path)
        paths.append(path)
    full = build_memory_index(InMemoryCorpus(texts), family, t, vocab_size=VOCAB)
    return texts, family, t, paths, full, root


class TestMerge:
    def test_merged_equals_monolithic(self, partitions):
        texts, family, t, paths, full, root = partitions
        merged_path = merge_disk_indexes(paths, root / "merged", text_offsets=[0, 4, 8])
        merged = DiskInvertedIndex(merged_path)
        assert merged.num_postings == full.num_postings
        restored = merged.to_memory()
        for func in range(family.k):
            lists_a = dict(full.iter_lists(func))
            lists_b = dict(restored.iter_lists(func))
            assert lists_a.keys() == lists_b.keys()
            for key in lists_a:
                assert np.array_equal(
                    np.sort(lists_a[key], order=["text", "center"]),
                    np.sort(lists_b[key], order=["text", "center"]),
                )

    def test_merged_queries_match(self, partitions):
        texts, family, t, paths, full, root = partitions
        merged_path = merge_disk_indexes(
            paths, root / "merged_q", text_offsets=[0, 4, 8]
        )
        merged = DiskInvertedIndex(merged_path)
        query = np.asarray(texts[5])[:30]
        res_a = NearDuplicateSearcher(full).search(query, 0.7)
        res_b = NearDuplicateSearcher(merged).search(query, 0.7)
        as_set = lambda res: {
            (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
            for m in res.matches
            for r in m.rectangles
        }
        assert as_set(res_a) == as_set(res_b)

    def test_inferred_offsets(self, partitions):
        """Without explicit offsets, partitions are stacked by inferred size."""
        texts, family, t, paths, full, root = partitions
        merged_path = merge_disk_indexes(paths, root / "merged_auto")
        merged = DiskInvertedIndex(merged_path)
        assert merged.num_postings == full.num_postings

    def test_empty_sources_rejected(self, partitions):
        _, _, _, _, _, root = partitions
        with pytest.raises(InvalidParameterError):
            merge_disk_indexes([], root / "nothing")

    def test_mismatched_family_rejected(self, partitions, tmp_path):
        texts, family, t, paths, _, root = partitions
        other_family = HashFamily(k=6, seed=999)
        other = build_memory_index(
            InMemoryCorpus(texts[:2]), other_family, t, vocab_size=VOCAB
        )
        other_path = tmp_path / "other"
        write_index(other, other_path)
        with pytest.raises(IndexFormatError):
            merge_disk_indexes([paths[0], other_path], tmp_path / "bad")

    def test_mismatched_t_rejected(self, partitions, tmp_path):
        texts, family, t, paths, _, root = partitions
        other = build_memory_index(
            InMemoryCorpus(texts[:2]), family, t + 5, vocab_size=VOCAB
        )
        other_path = tmp_path / "other_t"
        write_index(other, other_path)
        with pytest.raises(IndexFormatError):
            merge_disk_indexes([paths[0], other_path], tmp_path / "bad_t")

    def test_offset_count_validated(self, partitions, tmp_path):
        _, _, _, paths, _, _ = partitions
        with pytest.raises(InvalidParameterError):
            merge_disk_indexes(paths, tmp_path / "off", text_offsets=[0, 4])
