"""Tests for the batch query executor (`repro.query`).

The contract under test: batching is a *pure execution strategy* — for
every worker count and mode, matches are identical to the sequential
per-query loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.corpus.synthetic import synthweb
from repro.exceptions import InvalidParameterError, QueryError
from repro.index.builder import build_memory_index
from repro.index.cache import CachedIndexReader
from repro.index.storage import DiskInvertedIndex, write_index
from repro.query.executor import BatchQueryExecutor
from repro.query.planner import plan_batch
from repro.query.results import BatchStats


def match_set(result):
    return {
        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
        for m in result.matches
        for r in m.rectangles
    }


def assert_same_results(expected, actual):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert match_set(a) == match_set(b)
        assert a.beta == b.beta and a.theta == b.theta


@pytest.fixture(scope="module")
def setup():
    data = synthweb(
        num_texts=150,
        mean_length=150,
        vocab_size=1024,
        duplicate_rate=0.2,
        span_length=48,
        mutation_rate=0.04,
        seed=7,
    )
    family = HashFamily(k=16, seed=3)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=1024)
    return data.corpus, index, NearDuplicateSearcher(index)


@pytest.fixture(scope="module")
def batch_queries(setup):
    corpus, _, _ = setup
    rng = np.random.default_rng(0)
    queries = [np.asarray(corpus[i])[:40] for i in range(12)]
    # Exact duplicates (the sketch-dedup path) ...
    queries += queries[:6]
    # ... and garbage queries with (almost surely) no match.
    queries += [
        rng.integers(0, 1024, size=40).astype(np.uint32) for _ in range(4)
    ]
    return queries


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential(self, setup, batch_queries, workers):
        _, _, searcher = setup
        sequential = BatchQueryExecutor(searcher, workers=0).execute(
            batch_queries, 0.8
        )
        batch = BatchQueryExecutor(searcher, workers=workers).execute(
            batch_queries, 0.8
        )
        assert_same_results(sequential.results, batch.results)

    def test_first_match_only(self, setup, batch_queries):
        _, _, searcher = setup
        sequential = BatchQueryExecutor(searcher, workers=0).execute(
            batch_queries, 0.8, first_match_only=True
        )
        batch = BatchQueryExecutor(searcher, workers=2).execute(
            batch_queries, 0.8, first_match_only=True
        )
        for a, b in zip(sequential.results, batch.results):
            assert bool(a.matches) == bool(b.matches)

    def test_verify_equivalence(self, setup, batch_queries):
        corpus, index, _ = setup
        searcher = NearDuplicateSearcher(index, corpus=corpus)
        sequential = BatchQueryExecutor(searcher, workers=0).execute(
            batch_queries, 0.8, verify=True
        )
        batch = BatchQueryExecutor(searcher, workers=2).execute(
            batch_queries, 0.8, verify=True
        )
        assert_same_results(sequential.results, batch.results)

    def test_batch_size_chunking(self, setup, batch_queries):
        _, _, searcher = setup
        whole = BatchQueryExecutor(searcher, workers=2).execute(
            batch_queries, 0.8
        )
        chunked = BatchQueryExecutor(
            searcher, workers=2, batch_size=5
        ).execute(batch_queries, 0.8)
        assert_same_results(whole.results, chunked.results)
        assert chunked.stats.queries == len(batch_queries)

    def test_search_many_delegates(self, setup, batch_queries):
        _, _, searcher = setup
        direct = [searcher.search(q, 0.8) for q in batch_queries]
        for workers in (0, 2):
            via_many = searcher.search_many(batch_queries, 0.8, workers=workers)
            assert_same_results(direct, via_many)

    def test_empty_batch(self, setup):
        _, _, searcher = setup
        for workers in (0, 2):
            batch = BatchQueryExecutor(searcher, workers=workers).execute([], 0.8)
            assert batch.results == []

    def test_empty_query_raises(self, setup):
        _, _, searcher = setup
        empty = np.empty(0, dtype=np.uint32)
        for workers in (0, 1):
            with pytest.raises(QueryError):
                BatchQueryExecutor(searcher, workers=workers).execute(
                    [empty], 0.8
                )


class TestProcessMode:
    def test_disk_index_uses_processes(self, setup, batch_queries, tmp_path):
        corpus, index, _ = setup
        write_index(index, tmp_path / "index")
        disk = DiskInvertedIndex(tmp_path / "index")
        searcher = NearDuplicateSearcher(disk)
        sequential = BatchQueryExecutor(searcher, workers=0).execute(
            batch_queries, 0.8
        )
        batch = BatchQueryExecutor(searcher, workers=2).execute(
            batch_queries, 0.8
        )
        assert batch.stats.mode == "process"
        assert_same_results(sequential.results, batch.results)

    def test_verify_falls_back_to_planned(self, setup, batch_queries, tmp_path):
        corpus, index, _ = setup
        write_index(index, tmp_path / "index")
        disk = DiskInvertedIndex(tmp_path / "index")
        searcher = NearDuplicateSearcher(disk, corpus=corpus)
        batch = BatchQueryExecutor(searcher, workers=2).execute(
            batch_queries, 0.8, verify=True
        )
        assert batch.stats.mode == "planned"


class TestPlanner:
    def test_dedup_counts(self, setup, batch_queries):
        _, _, searcher = setup
        plan = plan_batch(searcher, batch_queries, 0.8)
        assert plan.num_queries == len(batch_queries)
        # 6 queries are byte-identical repeats of the first 6.
        assert plan.num_unique == len(batch_queries) - 6
        assert plan.lists_referenced >= len(plan.demand)

    def test_dedup_disabled(self, setup, batch_queries):
        _, _, searcher = setup
        plan = plan_batch(searcher, batch_queries, 0.8, dedup=False)
        assert plan.num_unique == len(batch_queries)

    def test_verify_dedup_keys_include_tokens(self, setup):
        _, _, searcher = setup
        # Same distinct-token set => same sketch, different token order.
        a = np.array([5, 6, 7, 8] * 10, dtype=np.uint32)
        b = np.array([8, 7, 6, 5] * 10, dtype=np.uint32)
        loose = plan_batch(searcher, [a, b], 0.8, verify=False)
        strict = plan_batch(searcher, [a, b], 0.8, verify=True)
        assert loose.num_unique == 1
        assert strict.num_unique == 2

    def test_shards_preserve_all_entries(self, setup, batch_queries):
        _, _, searcher = setup
        plan = plan_batch(searcher, batch_queries, 0.8)
        for num_shards in (1, 2, 4, 100):
            shards = plan.shards(num_shards)
            positions = sorted(
                entry.position for shard in shards for entry in shard
            )
            assert positions == list(range(plan.num_unique))


class TestBatchStats:
    def test_dedup_and_pinning_save_io(self, setup, batch_queries):
        _, _, searcher = setup
        sequential = BatchQueryExecutor(searcher, workers=0).execute(
            batch_queries, 0.8
        )
        planned = BatchQueryExecutor(searcher, workers=1).execute(
            batch_queries, 0.8
        )
        assert planned.stats.io_bytes < sequential.stats.io_bytes
        assert planned.stats.duplicate_queries == 6
        assert planned.stats.cache_hits > 0

    def test_format_is_printable(self, setup, batch_queries):
        _, _, searcher = setup
        batch = BatchQueryExecutor(searcher, workers=2).execute(
            batch_queries, 0.8
        )
        text = batch.stats.format()
        assert "queries" in text and "mode=thread" in text
        assert str(batch.stats) == text

    def test_merge(self):
        a = BatchStats(queries=4, unique_queries=3, io_bytes=100, mode="planned")
        b = BatchStats(queries=2, unique_queries=2, io_bytes=50, mode="planned")
        a.merge(b)
        assert a.queries == 6 and a.unique_queries == 5 and a.io_bytes == 150

    def test_num_matched(self, setup, batch_queries):
        _, _, searcher = setup
        batch = BatchQueryExecutor(searcher, workers=1).execute(
            batch_queries, 0.8
        )
        expected = sum(
            bool(searcher.search(q, 0.8).matches) for q in batch_queries
        )
        assert batch.num_matched == expected


class TestExecuteThetas:
    def test_matches_search_thetas(self, setup, batch_queries):
        _, _, searcher = setup
        thetas = [1.0, 0.9, 0.8]
        per_query, stats = BatchQueryExecutor(
            searcher, workers=2
        ).execute_thetas(batch_queries, thetas)
        assert len(per_query) == len(batch_queries)
        for query, derived in zip(batch_queries, per_query):
            reference = searcher.search_thetas(query, thetas)
            for theta in thetas:
                assert match_set(reference[theta]) == match_set(derived[theta])

    def test_empty_thetas_rejected(self, setup):
        _, _, searcher = setup
        with pytest.raises(InvalidParameterError):
            BatchQueryExecutor(searcher).execute_thetas([], [])


class TestModeResolution:
    def test_cached_reader_is_unwrapped(self, setup, batch_queries):
        _, index, _ = setup
        searcher = NearDuplicateSearcher(CachedIndexReader(index))
        batch = BatchQueryExecutor(searcher, workers=2).execute(
            batch_queries, 0.8
        )
        assert batch.stats.mode == "thread"

    def test_explicit_sequential(self, setup, batch_queries):
        _, _, searcher = setup
        batch = BatchQueryExecutor(
            searcher, workers=4, mode="sequential"
        ).execute(batch_queries, 0.8)
        assert batch.stats.mode == "sequential"

    def test_incompatible_process_degrades(self, setup, batch_queries):
        _, _, searcher = setup  # memory index: no directory to re-open
        batch = BatchQueryExecutor(searcher, workers=2, mode="process").execute(
            batch_queries, 0.8
        )
        assert batch.stats.mode == "planned"

    def test_parameter_validation(self, setup):
        _, _, searcher = setup
        with pytest.raises(InvalidParameterError):
            BatchQueryExecutor(searcher, workers=-1)
        with pytest.raises(InvalidParameterError):
            BatchQueryExecutor(searcher, batch_size=0)
        with pytest.raises(InvalidParameterError):
            BatchQueryExecutor(searcher, mode="gpu")
        with pytest.raises(InvalidParameterError):
            BatchQueryExecutor(searcher, cache_bytes=0)
        with pytest.raises(InvalidParameterError):
            BatchQueryExecutor(searcher, pin_fraction=1.5)


class TestEngineFacade:
    def test_search_batch_matches_search(self):
        from repro.engine import NearDupEngine

        texts = [
            "the quick brown fox jumps over the lazy dog again and again",
            "the quick brown fox jumps over the lazy dog again and again",
            "a completely different document about near duplicate search",
            "near duplicate sequence search at scale for memorization",
        ] * 5
        engine = NearDupEngine.from_texts(texts, k=8, t=5, vocab_size=300)
        queries = [texts[0], texts[2], texts[0]]
        singles = [engine.search(q, 0.8) for q in queries]
        for workers in (0, 2):
            batched = engine.search_batch(queries, 0.8, workers=workers)
            assert batched == singles

    def test_search_batch_raw_exposes_stats(self):
        from repro.engine import NearDupEngine

        texts = ["some repeated text body here okay"] * 8
        engine = NearDupEngine.from_texts(texts, k=8, t=3, vocab_size=300)
        batch = engine.search_batch_raw([texts[0]] * 4, 0.8, workers=1)
        assert batch.stats.queries == 4
        assert batch.stats.unique_queries == 1


class TestSelectLongListsBatch:
    """The hoisted-cutoff refactor and the ``beta - 1`` correctness cap."""

    def test_static_cutoff_hoisted(self, setup):
        _, index, _ = setup
        searcher = NearDuplicateSearcher(index, long_list_cutoff=100)
        assert searcher._static_cutoff == 100
        lengths = np.array([50, 150, 99, 101] + [10] * (index.family.k - 4))
        assert searcher._effective_cutoff(lengths) == 100

    def test_heuristic_cutoff_stays_per_query(self, setup):
        _, index, _ = setup
        searcher = NearDuplicateSearcher(index)
        assert searcher._static_cutoff is None
        k = index.family.k
        small = np.array([10] * k)
        large = np.array([1000] * k)
        assert searcher._effective_cutoff(small) != searcher._effective_cutoff(
            large
        )

    def test_max_long_is_beta_minus_one(self, setup):
        _, index, _ = setup
        searcher = NearDuplicateSearcher(index, long_list_cutoff=1)
        k = index.family.k
        lengths = np.arange(10, 10 + k) * 100
        for beta in range(1, k + 1):
            chosen = searcher._select_long_lists(lengths, beta)
            assert len(chosen) == min(beta - 1, k)
            # The longest lists are preferred.
            expected = set(range(k - len(chosen), k))
            assert chosen == expected

    def test_beta_one_keeps_every_list_short(self, setup):
        _, index, _ = setup
        searcher = NearDuplicateSearcher(index, long_list_cutoff=1)
        lengths = np.array([1000] * index.family.k)
        assert searcher._select_long_lists(lengths, beta=1) == set()


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_texts=st.integers(min_value=10, max_value=40),
    vocab=st.integers(min_value=40, max_value=200),
)
def test_property_batch_equals_sequential(seed, num_texts, vocab):
    """ISSUE 1 acceptance: identical results for workers in {0, 2, 4}
    across random corpora, including duplicate and empty-result queries."""
    rng = np.random.default_rng(seed)
    texts = [
        rng.integers(0, vocab, size=int(rng.integers(20, 80))).astype(np.uint32)
        for _ in range(num_texts)
    ]
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=8, seed=seed % 5)
    index = build_memory_index(corpus, family, t=10, vocab_size=vocab)
    searcher = NearDuplicateSearcher(index)

    queries = [np.asarray(corpus[i])[:20] for i in range(min(5, num_texts))]
    queries += queries[:2]  # duplicates in the batch
    queries.append(rng.integers(0, vocab, size=20).astype(np.uint32))
    queries.append((np.arange(20) % vocab).astype(np.uint32))

    reference = BatchQueryExecutor(searcher, workers=0).execute(queries, 0.8)
    for workers in (2, 4):
        batch = BatchQueryExecutor(searcher, workers=workers).execute(
            queries, 0.8
        )
        assert_same_results(reference.results, batch.results)
