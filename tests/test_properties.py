"""Hypothesis property-based tests on the core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact_windows import (
    generate_compact_windows,
    generate_compact_windows_recursive,
    generate_compact_windows_stack,
)
from repro.core.hashing import HashFamily
from repro.core.intervals import collision_count, interval_scan, max_collisions
from repro.core.rmq import BlockRMQ, SegmentTreeRMQ, SparseTableRMQ
from repro.core.verify import (
    Span,
    distinct_jaccard,
    merge_overlapping_spans,
    multiset_jaccard,
)
from repro.index.zonemap import build_zone_map

token_arrays = st.lists(st.integers(0, 30), min_size=1, max_size=80).map(
    lambda xs: np.asarray(xs, dtype=np.uint32)
)

hash_arrays = st.lists(st.integers(0, 15), min_size=1, max_size=60).map(
    lambda xs: np.asarray(xs, dtype=np.uint32)
)


class TestRMQProperties:
    @given(values=hash_arrays, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_backends_agree_with_reference(self, values, data):
        lo = data.draw(st.integers(0, values.size - 1))
        hi = data.draw(st.integers(lo, values.size - 1))
        reference = lo + int(np.argmin(values[lo : hi + 1]))
        for backend in (SparseTableRMQ, SegmentTreeRMQ, BlockRMQ):
            assert backend(values).query(lo, hi) == reference


class TestCompactWindowProperties:
    @given(hashes=hash_arrays, t=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_generators_identical(self, hashes, t):
        a = {(w.left, w.center, w.right) for w in generate_compact_windows(hashes, t)}
        b = {
            (w.left, w.center, w.right)
            for w in generate_compact_windows_recursive(hashes, t)
        }
        c = {
            (int(r["left"]), int(r["center"]), int(r["right"]))
            for r in generate_compact_windows_stack(hashes, t)
        }
        assert a == b == c

    @given(hashes=hash_arrays, t=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_partition_property(self, hashes, t):
        """Theorem 1: every sequence of length >= t in exactly one window."""
        windows = generate_compact_windows(hashes, t)
        n = hashes.size
        for i in range(n):
            for j in range(i + t - 1, n):
                assert sum(1 for w in windows if w.contains(i, j)) == 1

    @given(hashes=hash_arrays, t=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_window_invariants(self, hashes, t):
        for window in generate_compact_windows(hashes, t):
            assert 0 <= window.left <= window.center <= window.right < hashes.size
            assert window.width >= t
            segment = hashes[window.left : window.right + 1]
            assert hashes[window.center] == segment.min()


class TestIntervalProperties:
    intervals_strategy = st.lists(
        st.tuples(st.integers(0, 25), st.integers(0, 10)).map(
            lambda pair: (pair[0], pair[0] + pair[1])
        ),
        min_size=1,
        max_size=10,
    )

    @given(intervals=intervals_strategy, alpha=st.integers(1, 10))
    @settings(max_examples=80, deadline=None)
    def test_scan_reports_exact_coverage(self, intervals, alpha):
        reported: dict[int, frozenset] = {}
        for result in interval_scan(intervals, alpha):
            assert len(result.members) >= alpha
            for point in range(result.start, result.end + 1):
                assert point not in reported
                reported[point] = frozenset(result.members)
        lo = min(s for s, _ in intervals)
        hi = max(e for _, e in intervals)
        for point in range(lo, hi + 1):
            members = frozenset(
                i for i, (s, e) in enumerate(intervals) if s <= point <= e
            )
            if len(members) >= alpha:
                assert reported.get(point) == members
            else:
                assert point not in reported

    windows_strategy = st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 6), st.integers(0, 6)),
        min_size=1,
        max_size=8,
    )

    @given(raw=windows_strategy, alpha=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_collision_count_exact_and_complete(self, raw, alpha):
        from repro.core.compact_windows import CompactWindow

        windows = [
            CompactWindow(left, left + mid, left + mid + right)
            for left, mid, right in raw
        ]
        covered: set[tuple[int, int]] = set()
        for rect in collision_count(windows, alpha):
            for (i, j) in rect.iter_spans():
                assert (i, j) not in covered
                covered.add((i, j))
                assert max_collisions(windows, i, j) == rect.count >= alpha
        limit = max(w.right for w in windows) + 1
        for i in range(limit):
            for j in range(i, limit):
                if max_collisions(windows, i, j) >= alpha:
                    assert (i, j) in covered


class TestJaccardProperties:
    @given(a=token_arrays, b=token_arrays)
    @settings(max_examples=80, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        for measure in (distinct_jaccard, multiset_jaccard):
            value = measure(a, b)
            assert 0.0 <= value <= 1.0
            assert measure(b, a) == value

    @given(a=token_arrays)
    @settings(max_examples=40, deadline=None)
    def test_self_similarity(self, a):
        assert distinct_jaccard(a, a) == 1.0
        assert multiset_jaccard(a, a) == 1.0

    @given(a=token_arrays, b=token_arrays)
    @settings(max_examples=60, deadline=None)
    def test_multiset_no_greater_than_distinct_on_sets(self, a, b):
        """When both sides are duplicate-free the two measures coincide."""
        a = np.unique(a)
        b = np.unique(b)
        assert multiset_jaccard(a, b) == distinct_jaccard(a, b)


class TestSketchProperties:
    @given(a=token_arrays, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_sketch_permutation_invariant(self, a, seed):
        family = HashFamily(k=8, seed=seed)
        rng = np.random.default_rng(seed)
        shuffled = rng.permutation(a)
        assert np.array_equal(family.sketch(a), family.sketch(shuffled))

    @given(a=token_arrays, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_identical_sequences_collide_everywhere(self, a, seed):
        family = HashFamily(k=8, seed=seed)
        assert np.array_equal(family.sketch(a), family.sketch(np.array(a))), (
            "identical inputs must produce identical sketches"
        )


class TestMergeProperties:
    spans_strategy = st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 40), st.integers(0, 8)).map(
            lambda triple: Span(triple[0], triple[1], triple[1] + triple[2])
        ),
        min_size=1,
        max_size=15,
    )

    @given(spans=spans_strategy)
    @settings(max_examples=80, deadline=None)
    def test_merge_preserves_coverage_and_disjointness(self, spans):
        merged = merge_overlapping_spans(spans)
        original = {
            (s.text_id, p) for s in spans for p in range(s.start, s.end + 1)
        }
        covered = {
            (s.text_id, p) for s in merged for p in range(s.start, s.end + 1)
        }
        assert covered == original
        per_text: dict[int, list[Span]] = {}
        for span in merged:
            per_text.setdefault(span.text_id, []).append(span)
        for group in per_text.values():
            ordered = sorted(group, key=lambda s: s.start)
            for first, second in zip(ordered, ordered[1:]):
                assert first.end + 1 < second.start


class TestZoneMapProperties:
    @given(
        ids=st.lists(st.integers(0, 20), min_size=1, max_size=120),
        step=st.integers(1, 10),
        probe=st.integers(0, 22),
    )
    @settings(max_examples=80, deadline=None)
    def test_locate_covers_all_postings(self, ids, step, probe):
        text_ids = np.sort(np.asarray(ids, dtype=np.uint32))
        zone = build_zone_map(text_ids, step)
        lo, hi = zone.locate(probe)
        assert 0 <= lo <= hi <= text_ids.size
        for pos in np.flatnonzero(text_ids == probe):
            assert lo <= pos < hi
