"""Tests for index statistics and prefix cutoff selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.index.stats import (
    IndexSummary,
    all_list_lengths,
    cutoff_for_top_fraction,
    zipf_tail_report,
)


class TestIndexSummary:
    def test_fields(self, planted_index):
        summary = IndexSummary.from_index(planted_index)
        assert summary.k == planted_index.family.k
        assert summary.t == planted_index.t
        assert summary.num_postings == planted_index.num_postings
        assert summary.nbytes == planted_index.nbytes
        assert summary.max_list_length >= summary.mean_list_length
        assert summary.num_lists > 0

    def test_lengths_sum_to_postings(self, planted_index):
        lengths = all_list_lengths(planted_index)
        assert int(lengths.sum()) == planted_index.num_postings


class TestCutoffSelection:
    def test_monotone(self, planted_index):
        c05 = cutoff_for_top_fraction(planted_index, 0.05)
        c10 = cutoff_for_top_fraction(planted_index, 0.10)
        c20 = cutoff_for_top_fraction(planted_index, 0.20)
        assert c20 <= c10 <= c05

    def test_fraction_respected(self, planted_index):
        """Lists longer than the cutoff hold at most ~the fraction of postings."""
        fraction = 0.10
        cutoff = cutoff_for_top_fraction(planted_index, fraction)
        lengths = all_list_lengths(planted_index)
        long_mass = int(lengths[lengths > cutoff].sum())
        assert long_mass <= fraction * int(lengths.sum())

    def test_validation(self, planted_index):
        with pytest.raises(InvalidParameterError):
            cutoff_for_top_fraction(planted_index, 1.0)
        with pytest.raises(InvalidParameterError):
            cutoff_for_top_fraction(planted_index, -0.1)


class TestZipfTail:
    def test_descending(self, planted_index):
        report = zipf_tail_report(planted_index, top=5)
        assert len(report) == 5
        lengths = [length for _, length in report]
        assert lengths == sorted(lengths, reverse=True)

    def test_skew_present(self, planted_index):
        """Zipf corpora must produce a heavy head (the prefix-filter premise)."""
        report = zipf_tail_report(planted_index, top=1)
        lengths = all_list_lengths(planted_index)
        assert report[0][1] > 10 * float(lengths.mean())
