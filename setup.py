"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` (legacy develop mode) on machines
where PEP 660 editable installs are unavailable offline.
"""

from setuptools import setup

setup()
