"""Plagiarism-style scan over raw text documents.

Exercises the full text pipeline: train a BPE tokenizer, encode the
document collection, index it, then check a suspicious document's
passages against the collection — the ALIGN/partial-plagiarism use case
the paper's related work discusses, implemented with the paper's
guaranteed algorithm instead of a heuristic.

Run:  python examples/plagiarism_scan.py
"""

from __future__ import annotations

import numpy as np

from repro import HashFamily, NearDuplicateSearcher, build_memory_index
from repro.corpus import InMemoryCorpus
from repro.memorization import sliding_queries
from repro.tokenizer import BPETokenizer

# A tiny "library" of source documents.  Document 7 lifts a passage
# from document 2 with light paraphrasing (word substitutions).
SOURCE_PASSAGE = (
    "the committee concluded that the experimental results were consistent "
    "with the proposed hypothesis and recommended that the study be extended "
    "to a larger population over a longer observation period with improved "
    "controls for confounding variables and measurement error"
)

PARAPHRASED = (
    "the committee concluded that the experimental findings were consistent "
    "with the stated hypothesis and recommended that the study be extended "
    "to a bigger population over a longer observation window with improved "
    "controls for confounding variables and sampling error"
)


def build_library(rng: np.random.Generator) -> list[str]:
    filler_words = (
        "analysis data method results sample figure table model test value "
        "research paper review process system design report study group"
    ).split()
    documents = []
    for doc in range(12):
        body = " ".join(rng.choice(filler_words, size=220))
        if doc == 2:
            body = body[:200] + " " + SOURCE_PASSAGE + " " + body[200:]
        documents.append(body)
    return documents


def main() -> None:
    rng = np.random.default_rng(5)
    documents = build_library(rng)

    # Real tokenizers (GPT-2's BPE) are trained on a huge background
    # corpus, so common words tokenize identically wherever they occur.
    # Emulate that: train on the library plus a background word sample
    # covering general vocabulary, not on the library alone.
    background = " ".join(
        (SOURCE_PASSAGE + " " + PARAPHRASED + " novel original fresh creative unique").split()
    )
    print("training BPE tokenizer (library + background vocabulary)...")
    tokenizer = BPETokenizer.train(documents + [background] * 5, vocab_size=900)
    corpus = InMemoryCorpus([tokenizer.encode(doc) for doc in documents])

    family = HashFamily(k=32, seed=9)
    index = build_memory_index(corpus, family, t=20)
    searcher = NearDuplicateSearcher(index)

    # The suspicious document: mostly original, one paraphrased passage.
    suspicious = (
        " ".join(rng.choice("novel original fresh creative unique".split(), size=80))
        + " "
        + PARAPHRASED
        + " "
        + " ".join(rng.choice("novel original fresh creative unique".split(), size=80))
    )
    suspicious_tokens = tokenizer.encode(suspicious)
    print(
        f"scanning a suspicious document of {suspicious_tokens.size} tokens "
        f"against {len(corpus)} library documents...\n"
    )

    flagged = 0
    for window_index, query in enumerate(sliding_queries(suspicious_tokens, 32)):
        result = searcher.search(query, theta=0.6)
        if not result.matches:
            continue
        flagged += 1
        span = result.merged_spans()[0]
        snippet = tokenizer.decode(
            np.asarray(corpus[span.text_id])[span.start : span.end + 1]
        )
        print(f"window {window_index} (tokens {window_index * 32}..{window_index * 32 + 31}):")
        print(f"  suspicious: ...{tokenizer.decode(query)}...")
        print(f"  matches document {span.text_id}: ...{snippet[:120]}...\n")

    if flagged:
        print(f"verdict: {flagged} window(s) flagged — likely plagiarism from document 2")
    else:
        print("verdict: no near-duplicate passages found")


if __name__ == "__main__":
    main()
