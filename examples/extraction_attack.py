"""Training-data extraction attack, evaluated with the search engine.

The paper motivates near-duplicate search with the privacy risks of
memorization (Section 1, Section 6: training-data extraction and
membership-inference attacks).  This example simulates Carlini et
al.'s extraction attack against the model zoo and uses the
near-duplicate engine as the *ground-truth verifier* the original
attack lacked:

1. sample many unprompted generations from the attacked model;
2. rank them by a membership score (perplexity, or the ratio against a
   smaller reference model);
3. verify each sample against the training corpus with near-duplicate
   search — did the model actually emit (nearly) memorized data?

Run:  python examples/extraction_attack.py
"""

from __future__ import annotations

from repro import HashFamily, NearDuplicateSearcher, build_memory_index
from repro.corpus import synthweb
from repro.lm import train_model
from repro.memorization import run_extraction_attack


def main() -> None:
    data = synthweb(num_texts=500, mean_length=220, vocab_size=4096, seed=29)
    corpus = data.corpus
    print(f"training corpus: {len(corpus)} texts, {corpus.total_tokens:,} tokens")

    family = HashFamily(k=32, seed=11)
    index = build_memory_index(corpus, family, t=25)
    searcher = NearDuplicateSearcher(index)

    print("training attacked model (xl) and reference model (small)...")
    attacked = train_model("xl", corpus)
    reference = train_model("small", corpus)

    for label, kwargs in (
        ("perplexity ranking", {}),
        ("perplexity-ratio ranking", {"reference_model": reference.model}),
    ):
        report = run_extraction_attack(
            attacked.model,
            searcher,
            num_samples=40,
            sample_length=64,
            theta=0.8,
            seed=2,
            **kwargs,
        )
        print(f"\n-- {label} ({report.score_kind}) --")
        print(f"base rate (memorized fraction of all samples): {report.base_rate:.2%}")
        for k in (5, 10, 20):
            print(f"precision@{k}: {report.precision_at(k):.2%}")
        print(f"lift@10 over base rate: {report.lift_at_10:.2f}x")

        print("top-5 ranked samples:")
        for rank, candidate in enumerate(report.candidates[:5], start=1):
            verdict = "MEMORIZED" if candidate.memorized else "novel"
            print(
                f"  #{rank}: sample {candidate.sample_index}, "
                f"score {candidate.score:.3f} -> {verdict}"
            )


if __name__ == "__main__":
    main()
