"""Operating the index as a living system: shards, appends, caching.

Production deployments of the paper's engine need more than a one-shot
build: corpora grow (incremental appends), outgrow one machine
(sharding), and serve repeated queries (list caching).  This example
exercises all three extensions on one workload and shows that every
configuration returns identical answers.

Run:  python examples/live_index.py
"""

from __future__ import annotations

import numpy as np

from repro import HashFamily, NearDuplicateSearcher, build_memory_index
from repro.corpus import InMemoryCorpus, synthweb
from repro.index import (
    CachedIndexReader,
    IncrementalIndex,
    ShardedIndex,
    ShardedSearcher,
)


def spans_of(result):
    return {
        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
        for m in result.matches
        for r in m.rectangles
    }


def main() -> None:
    vocab = 4096
    data = synthweb(num_texts=600, mean_length=200, vocab_size=vocab, seed=13)
    initial = InMemoryCorpus([np.array(data.corpus[i]) for i in range(500)])
    arrivals = [np.array(data.corpus[i]) for i in range(500, 600)]
    family = HashFamily(k=32, seed=4)
    t = 25

    # Baseline: one monolithic index over the initial 500 texts.
    baseline = build_memory_index(initial, family, t, vocab_size=vocab)
    query = np.asarray(initial[0])[:64]
    reference = NearDuplicateSearcher(baseline).search(query, 0.8)
    print(f"baseline index: {baseline.num_postings:,} postings, "
          f"{reference.num_texts} matching texts for the probe query")

    # 1. Incremental appends: stream in 100 new texts, query the union.
    incremental = IncrementalIndex(baseline, vocab, merge_threshold=50_000)
    new_ids = incremental.append_texts(arrivals)
    grown = NearDuplicateSearcher(incremental).search(query, 0.8)
    print(f"\nincremental: appended {len(new_ids)} texts "
          f"(ids {new_ids[0]}..{new_ids[-1]}), "
          f"{incremental.delta_postings:,} delta postings, "
          f"{incremental.merges} consolidations")
    assert spans_of(grown) >= spans_of(reference)

    # A query drawn from a newly-appended text finds it immediately.
    fresh_query = arrivals[0][:64]
    fresh = NearDuplicateSearcher(incremental).search(fresh_query, 1.0)
    assert any(m.text_id == new_ids[0] for m in fresh.matches)
    print("a query from the newest text matches it at theta=1.0")

    # 2. Sharding: the same corpus split 4 ways answers identically.
    sharded = ShardedIndex.build(initial, family, t, num_shards=4, vocab_size=vocab)
    fanout = ShardedSearcher(sharded).search(query, 0.8)
    assert spans_of(fanout) == spans_of(reference)
    print(f"\nsharded: {sharded.num_shards} shards, "
          f"{sharded.num_postings:,} postings total — identical answers")

    # 3. Caching: a repeated query workload stops doing I/O.
    cached = CachedIndexReader(baseline, capacity_bytes=32 << 20)
    searcher = NearDuplicateSearcher(cached)
    for _ in range(3):
        searcher.search(query, 0.8)
    print(f"\ncache after 3 identical queries: hit rate "
          f"{cached.hit_rate:.0%} ({cached.hits} hits / {cached.misses} misses)")
    assert spans_of(searcher.search(query, 0.8)) == spans_of(reference)
    print("cached answers identical to baseline")


if __name__ == "__main__":
    main()
