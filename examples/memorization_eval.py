"""Section 5 reproduction: how much do language models memorize?

Trains the four model-zoo tiers (standing in for GPT-2 117M/345M and
GPT-Neo 1.3B/2.7B) on the same corpus, generates unprompted texts with
top-50 sampling, and reports the fraction of fixed-width query windows
that have near-duplicates in the training corpus — the paper's
Figure 4, at reduced scale.

Run:  python examples/memorization_eval.py
"""

from __future__ import annotations

from repro import HashFamily, NearDuplicateSearcher, build_memory_index
from repro.corpus import synthweb
from repro.lm import MODEL_ZOO
from repro.memorization import (
    SweepConfig,
    figure4_series,
    format_series_table,
    run_figure4_sweep,
)


def main() -> None:
    data = synthweb(num_texts=600, mean_length=250, vocab_size=4096, seed=17)
    corpus = data.corpus
    print(f"training corpus: {len(corpus)} texts, {corpus.total_tokens:,} tokens")

    family = HashFamily(k=32, seed=3)
    index = build_memory_index(corpus, family, t=25)
    searcher = NearDuplicateSearcher(index)

    print("training the model zoo (4 capacity tiers) and running the grid...")
    for name, spec in MODEL_ZOO.items():
        print(f"  {name:>6}: paper analogue {spec['paper_analogue']}")
    config = SweepConfig(
        thetas=(1.0, 0.9, 0.8),
        window_widths=(32, 64, 128),
        num_texts=4,
        text_length=256,
        seed=42,
    )
    # One multi-theta index pass per query window (search_thetas) makes
    # the full grid about three times cheaper than per-theta evaluation.
    sweep = run_figure4_sweep(corpus, searcher, config)

    # Figure 4(a)/(c): memorized fraction vs theta, per model size.
    print("\n-- memorized fraction vs similarity threshold (x=32, t=25, k=32) --")
    theta_reports = [
        sweep.get(model, theta, 32)
        for model in config.model_names
        for theta in config.thetas
    ]
    print(format_series_table(figure4_series(theta_reports)))

    # Figure 4(b)/(d): impact of the sliding-window width x.
    print("\n-- memorized fraction vs window width (theta=0.8) --")
    width_reports = [
        sweep.get("xl", 0.8, width) for width in config.window_widths
    ]
    print(format_series_table(figure4_series(width_reports)))


if __name__ == "__main__":
    main()
