"""Raw files to searchable index: the full adoption path on disk.

Creates a directory of text documents, ingests them (BPE training +
tokenization + corpus store), builds an on-disk index, validates it,
and runs a search — everything a real deployment does, end to end,
using only disk-backed artifacts.

Run:  python examples/ingest_and_search.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import HashFamily, NearDuplicateSearcher, DiskCorpus, DiskInvertedIndex
from repro.corpus import ingest_directory
from repro.index import build_and_write_index, validate_index
from repro.tokenizer import BPETokenizer

DOCUMENTS = {
    "report_a.txt": (
        "quarterly revenue increased by twelve percent driven by strong "
        "demand in the cloud services segment while operating expenses "
        "remained flat compared to the previous quarter "
    ) * 3,
    "report_b.txt": (
        "the committee reviewed the audit findings and concluded that the "
        "internal controls were operating effectively throughout the period "
    ) * 4,
    "report_c.txt": (
        # Contains a lightly edited copy of report_a's boilerplate.
        "annual summary follows. quarterly revenue increased by fourteen "
        "percent driven by strong demand in the cloud platform segment "
        "while operating expenses remained flat compared to the previous "
        "quarter. further details are provided in the appendix "
    ) * 2,
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        source = root / "documents"
        source.mkdir()
        for name, body in DOCUMENTS.items():
            (source / name).write_text(body)

        # 1. Ingest: train BPE, tokenize, write the corpus store.
        report = ingest_directory(source, root / "ingested", vocab_size=600)
        print(
            f"ingested {report.num_texts} documents -> "
            f"{report.total_tokens} tokens (BPE vocab {report.vocab_size})"
        )

        # 2. Build and persist the index.
        corpus = DiskCorpus(report.corpus_dir)
        family = HashFamily(k=24, seed=3)
        stats = build_and_write_index(corpus, family, t=15, directory=root / "index")
        print(
            f"index: {stats.windows_generated} compact windows, "
            f"{stats.bytes_written} bytes"
        )

        # 3. Validate before serving (catches corrupt transfers).
        index = DiskInvertedIndex(root / "index")
        validation = validate_index(index, corpus)
        print(f"validation: {'OK' if validation.ok else validation.errors}")

        # 4. Search: does report_a's boilerplate appear elsewhere?
        tokenizer = BPETokenizer.load(report.tokenizer_path)
        query = tokenizer.encode(
            " revenue increased by twelve percent driven by strong demand"
        )
        searcher = NearDuplicateSearcher(index)
        result = searcher.search(query, theta=0.6)
        print(f"\nquery: {tokenizer.decode(query)!r}")
        print(f"{result.num_texts} documents contain near-duplicates:")
        names = list(DOCUMENTS)
        for span in result.merged_spans():
            snippet = tokenizer.decode(
                np.asarray(corpus[span.text_id])[span.start : span.end + 1]
            )
            print(f"  {names[span.text_id]}: ...{snippet[:90]}...")


if __name__ == "__main__":
    main()
