"""Training-corpus near-deduplication.

The paper's motivation cites Lee et al.: large corpora are full of
near-duplicate sequences, and deduplicating them reduces memorization.
This example uses the search engine to *find* the near-duplicate
structure of a corpus: for a sample of probe spans, it locates all
near-duplicate occurrences and reports cluster sizes — the quantity
that drives the "memorization is super-linear in duplication count"
observation.

Run:  python examples/corpus_dedup.py
"""

from __future__ import annotations

import numpy as np

from repro import HashFamily, NearDuplicateSearcher, build_memory_index
from repro.corpus import synthweb


def main() -> None:
    # A corpus with a high planted duplication rate, as web corpora have.
    data = synthweb(
        num_texts=800,
        mean_length=200,
        vocab_size=4096,
        duplicate_rate=0.4,
        span_length=64,
        mutation_rate=0.03,
        seed=23,
    )
    corpus = data.corpus
    print(
        f"corpus: {len(corpus)} texts, {corpus.total_tokens:,} tokens, "
        f"{len(data.planted)} planted near-duplicate spans\n"
    )

    family = HashFamily(k=32, seed=2)
    index = build_memory_index(corpus, family, t=25)
    searcher = NearDuplicateSearcher(index)

    # Probe: for a sample of spans, how many near-duplicate copies exist?
    rng = np.random.default_rng(0)
    probe_width = 64
    cluster_sizes = []
    duplicated_probes = 0
    probes = 0
    for text_id in rng.choice(len(corpus), size=60, replace=False):
        text = np.asarray(corpus[int(text_id)])
        if text.size < probe_width:
            continue
        start = int(rng.integers(0, text.size - probe_width + 1))
        query = text[start : start + probe_width]
        probes += 1
        result = searcher.search(query, theta=0.8)
        # The probe always matches itself; copies are the other texts.
        other_texts = {m.text_id for m in result.matches} - {int(text_id)}
        if other_texts:
            duplicated_probes += 1
            cluster_sizes.append(1 + len(other_texts))

    print(f"probed {probes} random 64-token spans at theta=0.8:")
    print(
        f"  {duplicated_probes} ({100 * duplicated_probes / probes:.0f}%) have "
        f"near-duplicate copies elsewhere in the corpus"
    )
    if cluster_sizes:
        sizes = np.array(cluster_sizes)
        print(
            f"  cluster sizes: mean {sizes.mean():.1f}, max {sizes.max()} "
            f"(a span with a size-s cluster appears ~s times in training)"
        )

    # Deduplication decision: list the disjoint regions a cleaner would drop.
    plant = data.planted[0]
    query = np.asarray(corpus[plant.target_text])[
        plant.target_start : plant.target_start + plant.length
    ]
    result = searcher.search(query, theta=0.8)
    spans = result.merged_spans()
    keep, drop = spans[:1], spans[1:]
    print(
        f"\nexample dedup decision for one duplicated span: "
        f"keep 1 occurrence, drop {len(drop)}:"
    )
    for span in drop[:8]:
        print(f"  drop text {span.text_id} tokens {span.start}..{span.end}")


if __name__ == "__main__":
    main()
