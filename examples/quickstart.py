"""Quickstart: build an index over a synthetic corpus and run searches.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import HashFamily, NearDuplicateSearcher, build_memory_index
from repro.corpus import synthweb
from repro.core import expected_window_count
from repro.index import IndexSummary


def main() -> None:
    # 1. A corpus.  synthweb() is the OpenWebText stand-in: Zipf token
    #    frequencies plus planted near-duplicate spans.
    data = synthweb(num_texts=1000, mean_length=250, vocab_size=8192, seed=7)
    corpus = data.corpus
    print(
        f"corpus: {len(corpus)} texts, {corpus.total_tokens:,} tokens, "
        f"{len(data.planted)} planted near-duplicate spans"
    )

    # 2. Build the index: k min-hash functions, length threshold t.
    #    Only sequences with >= t tokens are indexed/searchable; the
    #    expected number of compact windows per text is 2(n+1)/(t+1)-1.
    family = HashFamily(k=32, seed=1)
    t = 25
    index = build_memory_index(corpus, family, t=t)
    summary = IndexSummary.from_index(index)
    expected = family.k * sum(
        expected_window_count(text.size, t) for text in corpus
    )
    print(
        f"index: {summary.num_postings:,} compact windows "
        f"(theory predicts ~{expected:,.0f}), {summary.nbytes / 1e6:.1f} MB"
    )

    # 3. Search.  Take a planted duplicate's target span as the query and
    #    ask for everything with Jaccard >= 0.8.
    plant = data.planted[0]
    query = np.asarray(corpus[plant.target_text])[
        plant.target_start : plant.target_start + plant.length
    ]
    searcher = NearDuplicateSearcher(index)
    result = searcher.search(query, theta=0.8)
    print(
        f"\nquery: text {plant.target_text} tokens "
        f"{plant.target_start}..{plant.target_start + plant.length - 1} "
        f"(planted from text {plant.source_text})"
    )
    print(
        f"found {result.num_texts} texts with near-duplicates "
        f"(beta = {result.beta}/{result.k} collisions required)"
    )
    for span in result.merged_spans()[:10]:
        marker = " <- the planted source" if span.text_id == plant.source_text else ""
        print(f"  text {span.text_id:4d} tokens {span.start}..{span.end}{marker}")

    # 4. Latency anatomy — the paper's Figure 3 breakdown.
    stats = result.stats
    print(
        f"\nlatency {stats.total_seconds * 1e3:.1f} ms "
        f"(io {stats.io_seconds * 1e3:.2f} ms, cpu {stats.cpu_seconds * 1e3:.1f} ms), "
        f"{stats.io_bytes:,} bytes read, "
        f"{stats.long_lists} long lists prefix-filtered"
    )


if __name__ == "__main__":
    main()
