"""Online near-duplicate search service.

The paper evaluates the engine offline, but the deployment it argues
for — memorization auditing of a model "serving heavy traffic from
millions of users" — is an always-on service over a prebuilt index.
This package is that layer:

* :mod:`repro.service.protocol` — the JSON wire format (requests,
  serialized :class:`~repro.core.search.SearchResult`, errors);
* :mod:`repro.service.stats` — request counters, fixed-bucket latency
  histograms (p50/p95/p99), batch-size distribution;
* :mod:`repro.service.batcher` — the micro-batcher: concurrent
  in-flight single-query requests are coalesced (bounded batch size,
  bounded linger) into one
  :class:`~repro.query.executor.BatchQueryExecutor` call, so the batch
  planner's sketch dedup and list pinning apply *across clients*;
* :mod:`repro.service.server` — a stdlib-only asyncio HTTP/1.1 server
  (``/search``, ``/batch``, ``/health``, ``/stats``) with admission
  control (bounded queue, 429 shed), per-request deadlines, and
  graceful drain on shutdown;
* :mod:`repro.service.client` — a small blocking
  :class:`~repro.service.client.ServiceClient` used by the CLI, the
  tests, and the service benchmark;
* :mod:`repro.service.prefork` — the multi-core deployment shape: a
  supervisor forks N workers over one shared zero-copy index mapping
  and one listening socket, with crash respawn, graceful drain, and
  shared-memory stats aggregated into a ``cluster`` block of
  ``/stats``.

Serving is a pure execution strategy: a served query returns exactly
what :meth:`~repro.engine.NearDupEngine.search_raw` returns for the
same query and theta, serialized by
:func:`~repro.service.protocol.result_to_wire`.
"""

from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient
from repro.service.protocol import (
    ProtocolError,
    RemoteError,
    RequestShedError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    result_to_wire,
)
from repro.service.prefork import PreforkServer, SharedServiceStats, StatsSlots
from repro.service.server import SearchService, ServiceConfig, ServiceRunner
from repro.service.stats import LatencyHistogram, ServiceStats

__all__ = [
    "LatencyHistogram",
    "MicroBatcher",
    "PreforkServer",
    "ProtocolError",
    "RemoteError",
    "RequestShedError",
    "RequestTimeoutError",
    "SearchService",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceRunner",
    "ServiceStats",
    "SharedServiceStats",
    "StatsSlots",
    "result_to_wire",
]
