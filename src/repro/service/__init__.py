"""Online near-duplicate search service.

The paper evaluates the engine offline, but the deployment it argues
for — memorization auditing of a model "serving heavy traffic from
millions of users" — is an always-on service over a prebuilt index.
This package is that layer:

* :mod:`repro.service.protocol` — the JSON wire format (requests,
  serialized :class:`~repro.core.search.SearchResult`, errors);
* :mod:`repro.service.stats` — request counters, fixed-bucket latency
  histograms (p50/p95/p99), batch-size distribution;
* :mod:`repro.service.batcher` — the micro-batcher: concurrent
  in-flight single-query requests are coalesced (bounded batch size,
  bounded linger) into one
  :class:`~repro.query.executor.BatchQueryExecutor` call, so the batch
  planner's sketch dedup and list pinning apply *across clients*;
* :mod:`repro.service.server` — a stdlib-only asyncio HTTP/1.1 server
  (``/search``, ``/batch``, ``/health``, ``/stats``) with admission
  control (bounded queue, 429 shed), per-request deadlines, and
  graceful drain on shutdown;
* :mod:`repro.service.client` — a small blocking
  :class:`~repro.service.client.ServiceClient` used by the CLI, the
  tests, and the service benchmark;
* :mod:`repro.service.prefork` — the multi-core deployment shape: a
  supervisor forks N workers over one shared zero-copy index mapping
  and one listening socket, with crash respawn, graceful drain, and
  shared-memory stats aggregated into a ``cluster`` block of
  ``/stats``;
* :mod:`repro.service.shardmap` — which shard owns which texts
  (contiguous text-id ranges + a consistent-hash ring for new keys)
  and which replica endpoints serve each shard, serialized as
  ``shardmap.json`` (format 2; format-1 single-endpoint maps still
  load);
* :mod:`repro.service.aioclient` — the asyncio client with pooled
  keep-alive connections the router fans out through;
* :mod:`repro.service.replicas` — per-replica health (EWMA latency,
  circuit breaker with half-open probing) and the selection policies
  (``pick-first``, ``round-robin``, ``power-of-two``) plus the
  p95-derived hedge-delay bookkeeping;
* :mod:`repro.service.router` — the multi-machine deployment shape: a
  scatter-gather front-end that asks every shard server concurrently
  (balancing each sub-request across the shard's replicas, failing
  over and optionally hedging the slow tail), re-numbers text ids by
  shard offset, merges matches and stats, and answers partially
  (``"partial": true``) when a shard misses its deadline.

Serving is a pure execution strategy: a served query returns exactly
what :meth:`~repro.engine.NearDupEngine.search_raw` returns for the
same query and theta, serialized by
:func:`~repro.service.protocol.result_to_wire`.
"""

from repro.service.aioclient import AsyncServiceClient
from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient
from repro.service.protocol import (
    ProtocolError,
    RemoteError,
    RequestShedError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    result_to_wire,
)
from repro.service.prefork import PreforkServer, SharedServiceStats, StatsSlots
from repro.service.replicas import POLICIES, ReplicaSet, ReplicaState
from repro.service.router import (
    RouterConfig,
    RouterService,
    build_shard_fleet,
    discover_shard_fleet,
)
from repro.service.server import SearchService, ServiceConfig, ServiceRunner
from repro.service.shardmap import (
    HashRing,
    Replica,
    ShardEntry,
    ShardMap,
    with_added_replicas,
)
from repro.service.stats import LatencyHistogram, RouterStats, ServiceStats

__all__ = [
    "POLICIES",
    "AsyncServiceClient",
    "HashRing",
    "LatencyHistogram",
    "MicroBatcher",
    "PreforkServer",
    "ProtocolError",
    "RemoteError",
    "Replica",
    "ReplicaSet",
    "ReplicaState",
    "RequestShedError",
    "RequestTimeoutError",
    "RouterConfig",
    "RouterService",
    "RouterStats",
    "SearchService",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceRunner",
    "ServiceStats",
    "ShardEntry",
    "ShardMap",
    "SharedServiceStats",
    "StatsSlots",
    "build_shard_fleet",
    "discover_shard_fleet",
    "result_to_wire",
    "with_added_replicas",
]
