"""Service observability: counters, latency quantiles, batch sizes.

A deployed search front-end is tuned by three questions — is admission
control shedding, where is the latency, and is micro-batching actually
coalescing?  :class:`ServiceStats` answers all three from O(1) memory:
fixed-bucket histograms instead of reservoirs, so the ``/stats``
endpoint stays cheap no matter how long the server has been up.
"""

from __future__ import annotations

import threading
import time
from collections import Counter


class LatencyHistogram:
    """Fixed geometric-bucket latency histogram with quantile lookup.

    Buckets double from 0.25 ms; 24 buckets cover ~35 minutes, far past
    any sane request deadline.  A quantile is reported as the upper
    bound of the bucket where the cumulative count crosses it — biased
    at most one bucket (2x) high, which is the right fidelity for a
    p99 on a counter budget of ``24 * 8`` bytes.
    """

    FIRST_BOUND_SECONDS = 0.00025
    NUM_BUCKETS = 24

    def __init__(self) -> None:
        self.counts = [0] * self.NUM_BUCKETS
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        bound = self.FIRST_BOUND_SECONDS
        slot = 0
        while seconds > bound and slot < self.NUM_BUCKETS - 1:
            bound *= 2.0
            slot += 1
        self.counts[slot] += 1
        self.total += 1
        self.sum_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def quantile(self, q: float) -> float:
        """Upper bucket bound at cumulative fraction ``q`` (0 if empty)."""
        if self.total == 0:
            return 0.0
        needed = q * self.total
        cumulative = 0
        bound = self.FIRST_BOUND_SECONDS
        for count in self.counts:
            cumulative += count
            if cumulative >= needed:
                return bound
            bound *= 2.0
        return bound / 2.0

    @property
    def mean(self) -> float:
        return self.sum_seconds / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.total,
            "mean_ms": 1e3 * self.mean,
            "p50_ms": 1e3 * self.quantile(0.50),
            "p95_ms": 1e3 * self.quantile(0.95),
            "p99_ms": 1e3 * self.quantile(0.99),
            "max_ms": 1e3 * self.max_seconds,
        }


class ServiceStats:
    """Thread-safe counter block behind the ``/stats`` endpoint.

    Mutated from the event loop (admission, shed, timeouts) and from
    executor threads (batch completion), hence the lock; every method
    is O(1) so contention stays negligible next to a search.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests = 0
        self.completed = 0
        self.errors = 0
        self.shed = 0
        self.timeouts = 0
        self.batches = 0
        self.batched_queries = 0
        self.lists_loaded = 0
        self.point_reads = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.batch_sizes: Counter[int] = Counter()

    # -- recording ------------------------------------------------------
    def record_admitted(self) -> None:
        with self._lock:
            self.requests += 1

    def record_shed(self) -> None:
        with self._lock:
            self.requests += 1
            self.shed += 1

    def record_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_queries += size
            self.batch_sizes[size] += 1

    def record_search_io(self, lists_loaded: int, point_reads: int) -> None:
        """Fold one executed batch's index-read counts in (full-list
        loads vs. zone-map point-read operations)."""
        with self._lock:
            self.lists_loaded += int(lists_loaded)
            self.point_reads += int(point_reads)

    def record_completed(self, latency_seconds: float, queue_seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self.latency.observe(latency_seconds)
            self.queue_wait.observe(queue_seconds)

    # -- reporting ------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.batched_queries / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        """JSON-ready snapshot (the ``/stats`` service block)."""
        with self._lock:
            return {
                "uptime_seconds": time.monotonic() - self.started,
                "requests": self.requests,
                "completed": self.completed,
                "errors": self.errors,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "batches": self.batches,
                "batched_queries": self.batched_queries,
                "lists_loaded": self.lists_loaded,
                "point_reads": self.point_reads,
                "mean_batch_size": self.mean_batch_size,
                "batch_size_distribution": {
                    str(size): count
                    for size, count in sorted(self.batch_sizes.items())
                },
                "latency": self.latency.to_dict(),
                "queue_wait": self.queue_wait.to_dict(),
            }


class RouterStats:
    """Counters behind the router's ``/stats`` endpoint.

    The router's health question is different from a shard's: not "is
    the batcher coalescing" but "how wide is the fan-out spread" —
    end-to-end latency is the *max* over shards, so the gap between the
    per-shard and end-to-end histograms is exactly the price of the
    slowest replica.  Mutated only from the router's event loop, but a
    lock keeps ``snapshot`` safe from other threads (tests, runners).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests = 0
        self.completed = 0
        self.partial = 0
        self.errors = 0
        self.fanout_requests = 0  #: per-shard sub-requests issued
        self.fanout_failures = 0  #: sub-requests that timed out / failed
        self.hedges_fired = 0  #: backup sub-requests sent past the hedge delay
        self.hedge_wins = 0  #: hedges whose answer beat the primary's
        self.failovers = 0  #: sub-requests replayed on another replica
        self.breaker_trips = 0  #: replica breakers opened (incl. re-opens)
        self.latency = LatencyHistogram()  #: end-to-end (max over shards)
        self.shard_latency = LatencyHistogram()  #: every per-shard exchange

    def record_fanout(self, shard_seconds: list[float], failures: int) -> None:
        """Fold one scatter-gather round in (one entry per shard asked)."""
        with self._lock:
            self.fanout_requests += len(shard_seconds) + failures
            self.fanout_failures += failures
            for seconds in shard_seconds:
                self.shard_latency.observe(seconds)

    def record_hedge_fired(self) -> None:
        with self._lock:
            self.hedges_fired += 1

    def record_hedge_win(self) -> None:
        """A hedge's answer was the one used (the primary lost the race)."""
        with self._lock:
            self.hedge_wins += 1

    def record_failover(self) -> None:
        with self._lock:
            self.failovers += 1

    def record_breaker_trip(self) -> None:
        with self._lock:
            self.breaker_trips += 1

    def record_completed(self, seconds: float, *, partial: bool) -> None:
        with self._lock:
            self.requests += 1
            self.completed += 1
            if partial:
                self.partial += 1
            self.latency.observe(seconds)

    def record_error(self) -> None:
        with self._lock:
            self.requests += 1
            self.errors += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": time.monotonic() - self.started,
                "requests": self.requests,
                "completed": self.completed,
                "partial": self.partial,
                "errors": self.errors,
                "fanout_requests": self.fanout_requests,
                "fanout_failures": self.fanout_failures,
                "hedges_fired": self.hedges_fired,
                "hedge_wins": self.hedge_wins,
                "failovers": self.failovers,
                "breaker_trips": self.breaker_trips,
                "latency": self.latency.to_dict(),
                "shard_latency": self.shard_latency.to_dict(),
            }
