"""Per-replica health tracking and replica selection for the router.

One shard, N identical replicas: the router must decide *which* copy
answers each sub-request, and the decision is what turns replication
into tail-latency insurance rather than mere redundancy.  Three pieces:

* :class:`ReplicaState` — everything the router knows about one
  endpoint: an EWMA of observed latency, the in-flight count, and a
  consecutive-failure **circuit breaker** (closed → open after
  ``failure_threshold`` straight failures; open replicas are skipped
  for ``cooldown_s``, then **half-open**: exactly one probe request is
  allowed through, closing the breaker on success and re-arming the
  cooldown on failure).  Counters (picks, failures, hedges, breaker
  trips) feed the router's ``/stats``.

* :class:`ReplicaSet` — the per-shard group with a selection policy:

  - ``pick-first``     — lowest-index available replica (the format-1
    behavior when every replica is healthy; deterministic);
  - ``round-robin``    — rotate over available replicas;
  - ``power-of-two``   — sample two distinct available replicas and
    take the one with the lower ``(inflight + 1) * ewma`` score: the
    classic two-choices result gets exponentially better max-load than
    random placement for one extra comparison, and scoring by EWMA x
    occupancy makes it latency-aware, not just count-aware.

  When every breaker is open the set still answers: it falls back to
  the replica whose cooldown expires soonest, because a guaranteed
  local failure is strictly worse than a probably-failing attempt.

* hedge-delay bookkeeping — the set tracks a latency histogram of its
  *successful* sub-requests; when hedging is in auto mode the router
  fires the backup request after the shard's observed p95, so hedges
  target exactly the slow tail (~5% extra load) instead of doubling
  every request.

Everything here is mutated only from the router's event loop, so there
are no locks; ``snapshot()`` reads plain ints/floats and is safe to
call from test threads.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, Sequence

from repro.exceptions import InvalidParameterError
from repro.service.shardmap import Replica
from repro.service.stats import LatencyHistogram

#: Selection policies a router (or ``repro-cli route --policy``) accepts.
POLICIES = ("pick-first", "round-robin", "power-of-two")

#: Hedge delay used in auto mode before the histogram has enough
#: samples for a meaningful p95 (seconds).
DEFAULT_HEDGE_DELAY_S = 0.025

#: Successful sub-requests required before auto hedging trusts the p95.
HEDGE_WARMUP_SAMPLES = 8

#: Breaker states, in ``snapshot()["breaker"]["state"]``.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class ReplicaState:
    """Health, load, and counters of one replica endpoint.

    The owner attaches a ``client`` (the router hangs its per-replica
    :class:`~repro.service.aioclient.AsyncServiceClient` here); this
    class itself never touches the network, which keeps the breaker and
    policy logic unit-testable with a fake clock.
    """

    def __init__(
        self,
        replica: Replica,
        *,
        failure_threshold: int = 3,
        cooldown_s: float = 2.0,
        ewma_alpha: float = 0.2,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise InvalidParameterError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        self.replica = replica
        self.client = None  #: set by the router (AsyncServiceClient)
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.ewma_alpha = float(ewma_alpha)
        self._clock = clock
        # load + latency
        self.inflight = 0
        self.ewma_s: float | None = None
        # breaker
        self._consecutive_failures = 0
        self._open_until = 0.0
        self._probing = False
        # counters
        self.picks = 0
        self.successes = 0
        self.failures = 0
        self.cancelled = 0
        self.hedges = 0  #: times this replica served as the hedge target
        self.hedge_wins = 0  #: its hedged answer was the one used
        self.breaker_trips = 0

    @property
    def endpoint(self) -> str:
        return self.replica.endpoint

    # -- breaker --------------------------------------------------------
    def breaker_state(self, now: float | None = None) -> str:
        if self._consecutive_failures < self.failure_threshold:
            return CLOSED
        now = self._clock() if now is None else now
        return HALF_OPEN if now >= self._open_until else OPEN

    def available(self, now: float | None = None) -> bool:
        """Whether the policy may route a request here right now.

        Closed breaker: yes.  Open: no.  Half-open: yes, but only for
        one probe at a time — :meth:`on_pick` marks the probe in
        flight, so concurrent requests keep avoiding the replica until
        the probe's verdict is in.
        """
        state = self.breaker_state(now)
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            return not self._probing
        return False

    # -- request lifecycle ---------------------------------------------
    def on_pick(self) -> None:
        """The router chose this replica for a sub-request."""
        if self.breaker_state() == HALF_OPEN:
            self._probing = True
        self.inflight += 1
        self.picks += 1

    def on_success(self, seconds: float) -> None:
        self.inflight -= 1
        self._consecutive_failures = 0
        self._probing = False
        self.successes += 1
        if self.ewma_s is None:
            self.ewma_s = float(seconds)
        else:
            self.ewma_s += self.ewma_alpha * (float(seconds) - self.ewma_s)

    def on_failure(self, *, breaker: bool = True) -> bool:
        """Record one failed exchange; ``True`` when the breaker trips.

        A failure while half-open re-opens immediately (the probe
        proved the replica is still bad) and counts as a fresh trip.
        ``breaker=False`` counts the failure but leaves the breaker
        alone — a 4xx means the replica *answered*; the request was
        bad, not the endpoint.
        """
        self.inflight -= 1
        self._probing = False
        self.failures += 1
        if not breaker:
            self._consecutive_failures = 0
            return False
        was_open = self._consecutive_failures >= self.failure_threshold
        self._consecutive_failures += 1
        tripped = (
            self._consecutive_failures >= self.failure_threshold
            and (not was_open or self._clock() >= self._open_until)
        )
        if self._consecutive_failures >= self.failure_threshold:
            self._open_until = self._clock() + self.cooldown_s
        if tripped:
            self.breaker_trips += 1
        return tripped

    def on_cancelled(self, seconds: float | None = None) -> None:
        """The router abandoned the exchange (hedge lost / deadline).

        Not a breaker signal: the replica may have been about to
        answer.  But the elapsed time *is* latency information — the
        replica provably took at least that long — so when it exceeds
        the current EWMA it is folded in as a lower-bound sample.
        Without this a consistently-slow replica whose requests always
        lose the hedge race would never record a latency at all and
        keep scoring as unmeasured (0), so power-of-two would keep
        picking it forever.
        """
        self.inflight -= 1
        self._probing = False
        self.cancelled += 1
        if seconds is not None and (
            self.ewma_s is None or float(seconds) > self.ewma_s
        ):
            if self.ewma_s is None:
                self.ewma_s = float(seconds)
            else:
                self.ewma_s += self.ewma_alpha * (float(seconds) - self.ewma_s)

    # -- scoring --------------------------------------------------------
    def score(self) -> float:
        """Load-and-latency score; lower is better.

        ``(inflight + 1) * ewma``: a replica answering in 2 ms with 3
        requests queued scores like an idle one answering in 8 ms.  An
        unmeasured replica scores 0 so new capacity gets probed first.
        """
        return (self.inflight + 1) * (self.ewma_s or 0.0)

    def snapshot(self) -> dict:
        pool = {}
        if self.client is not None:
            pool = self.client.pool_stats()
        return {
            "endpoint": self.endpoint,
            "inflight": self.inflight,
            "ewma_ms": 1e3 * self.ewma_s if self.ewma_s is not None else None,
            "picks": self.picks,
            "successes": self.successes,
            "failures": self.failures,
            "cancelled": self.cancelled,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "breaker": {
                "state": self.breaker_state(),
                "trips": self.breaker_trips,
                "consecutive_failures": self._consecutive_failures,
            },
            "pool": pool,
        }


class ReplicaSet:
    """One shard's replicas + the selection policy over them."""

    def __init__(
        self,
        replicas: Sequence[ReplicaState],
        *,
        policy: str = "pick-first",
        rng: random.Random | None = None,
        clock=time.monotonic,
    ) -> None:
        if not replicas:
            raise InvalidParameterError("a replica set needs at least one replica")
        if policy not in POLICIES:
            raise InvalidParameterError(
                f"unknown policy {policy!r}; choose from {list(POLICIES)}"
            )
        self.replicas = list(replicas)
        self.policy = policy
        self._rng = rng or random.Random()
        self._clock = clock
        self._rotation = 0
        self.latency = LatencyHistogram()  #: successful sub-request latencies

    def __len__(self) -> int:
        return len(self.replicas)

    @property
    def primary(self) -> ReplicaState:
        """The writer replica — non-idempotent requests go only here."""
        return self.replicas[0]

    # -- selection ------------------------------------------------------
    def pick(
        self, *, exclude: Iterable[ReplicaState] = ()
    ) -> ReplicaState | None:
        """Choose a replica by policy, or ``None`` if all are excluded.

        Only replicas whose breaker admits traffic are candidates; when
        *none* does, the least-recently-tripped survivor is returned
        anyway (its attempt doubles as an early probe) — the router
        should fail a shard because its replicas failed, not because a
        bookkeeping state said so.
        """
        excluded = set(map(id, exclude))
        pool = [r for r in self.replicas if id(r) not in excluded]
        if not pool:
            return None
        now = self._clock()
        candidates = [r for r in pool if r.available(now)]
        if not candidates:
            return min(pool, key=lambda r: r._open_until)
        if self.policy == "pick-first" or len(candidates) == 1:
            return candidates[0]
        if self.policy == "round-robin":
            choice = candidates[self._rotation % len(candidates)]
            self._rotation += 1
            return choice
        first, second = self._rng.sample(candidates, 2)
        return first if first.score() <= second.score() else second

    # -- hedge delay ----------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        """Fold one successful sub-request latency into the p95 basis."""
        self.latency.observe(seconds)

    def hedge_delay(self, hedge_after_ms: float) -> float:
        """Seconds to wait before firing the backup request.

        ``hedge_after_ms > 0`` is a fixed operator-chosen delay;
        ``hedge_after_ms == 0`` is auto mode — the shard's observed p95
        (so ~5% of requests hedge), falling back to a small constant
        until enough samples have landed to trust the histogram.
        """
        if hedge_after_ms > 0:
            return hedge_after_ms / 1e3
        if self.latency.total < HEDGE_WARMUP_SAMPLES:
            return DEFAULT_HEDGE_DELAY_S
        return max(self.latency.quantile(0.95), 1e-4)

    def snapshot(self) -> dict:
        return {
            "policy": self.policy,
            "latency": self.latency.to_dict(),
            "replicas": [replica.snapshot() for replica in self.replicas],
        }
