"""Blocking HTTP client for the search service.

A thin wrapper over :mod:`http.client` (stdlib, keep-alive): one
:class:`ServiceClient` owns one connection, so N concurrent clients are
N threads each holding their own instance — exactly the shape the
service benchmark and the CLI ``remote-query`` subcommand need.

Error responses are raised as typed exceptions
(:class:`~repro.service.protocol.RequestShedError` for 429,
:class:`~repro.service.protocol.RequestTimeoutError` for 504,
:class:`~repro.service.protocol.ServiceClosedError` for 503,
:class:`~repro.service.protocol.RemoteError` otherwise) so callers can
implement backoff on shed without string-matching.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Sequence

import numpy as np

from repro.service.protocol import (
    RemoteError,
    RequestShedError,
    RequestTimeoutError,
    ServiceClosedError,
)

_ERRORS_BY_STATUS = {
    429: RequestShedError,
    503: ServiceClosedError,
    504: RequestTimeoutError,
}


class ServiceClient:
    """One keep-alive connection to a running search service."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._connection: http.client.HTTPConnection | None = None

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(method, path, body=payload, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException):
            # Drop the (possibly half-dead) connection so the next call
            # reconnects instead of failing on a stale socket.
            self.close()
            raise
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise RemoteError(
                f"non-JSON response ({response.status}): {exc}", response.status
            )
        if response.status != 200 or not decoded.get("ok", False):
            message = decoded.get("error", f"HTTP {response.status}")
            error_type = _ERRORS_BY_STATUS.get(response.status, RemoteError)
            if error_type is RemoteError:
                raise RemoteError(message, response.status)
            raise error_type(message)
        return decoded

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------
    def search(
        self,
        query: str | Sequence[int] | np.ndarray,
        theta: float | None = None,
        *,
        verify: bool = False,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """One query; returns the full response body (``result`` inside).

        A string query is tokenized server-side (the engine must own a
        tokenizer); anything else is sent as a token-id list.
        """
        body: dict[str, Any] = {}
        if isinstance(query, str):
            body["text"] = query
        else:
            body["query"] = [int(token) for token in np.asarray(query).tolist()]
        if theta is not None:
            body["theta"] = float(theta)
        if verify:
            body["verify"] = True
        if timeout_ms is not None:
            body["timeout_ms"] = float(timeout_ms)
        return self._request("POST", "/search", body)

    def batch(
        self,
        queries: Sequence[Sequence[int] | np.ndarray],
        theta: float | None = None,
        *,
        verify: bool = False,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """A client-side batch; returns ``results`` in input order."""
        body: dict[str, Any] = {
            "queries": [
                [int(token) for token in np.asarray(query).tolist()]
                for query in queries
            ]
        }
        if theta is not None:
            body["theta"] = float(theta)
        if verify:
            body["verify"] = True
        if timeout_ms is not None:
            body["timeout_ms"] = float(timeout_ms)
        return self._request("POST", "/batch", body)

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")
