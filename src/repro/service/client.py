"""Blocking HTTP client for the search service.

A thin wrapper over :mod:`http.client` (stdlib, keep-alive): one
:class:`ServiceClient` owns one connection, so N concurrent clients are
N threads each holding their own instance — exactly the shape the
service benchmark and the CLI ``remote-query`` subcommand need.

Error responses are raised as typed exceptions
(:class:`~repro.service.protocol.RequestShedError` for 429,
:class:`~repro.service.protocol.RequestTimeoutError` for 504,
:class:`~repro.service.protocol.ServiceClosedError` for 503,
:class:`~repro.service.protocol.RemoteError` otherwise) so callers can
implement backoff on shed without string-matching — or let the client
do it: ``retries=N`` (default 0, off) re-issues a request shed by
admission control up to N times with jittered exponential backoff.  A
429 is the one failure that is *safe* to retry blindly — the server
sheds before planning or executing anything — and the jitter keeps a
shed fleet from re-converging on the same instant.  Under the same
budget, idempotent requests (search, batch, health, stats) also retry
``ConnectionResetError``/``BrokenPipeError`` — a keep-alive connection
a restarting or drained server closed under the client; non-idempotent
``/ingest`` never does (the server may have committed the append
before the connection died, and a replay would assign fresh ids).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Sequence

import numpy as np

from repro.service.protocol import (
    RemoteError,
    RequestShedError,
    RequestTimeoutError,
    ServiceClosedError,
)

_ERRORS_BY_STATUS = {
    429: RequestShedError,
    503: ServiceClosedError,
    504: RequestTimeoutError,
}


def raise_for_response(status: int, decoded: Any) -> None:
    """Raise the typed error for a non-OK decoded response body.

    Shared by the blocking and asyncio clients so both surface the same
    exception types for the same wire statuses.
    """
    if status == 200 and isinstance(decoded, dict) and decoded.get("ok", False):
        return
    if isinstance(decoded, dict):
        message = decoded.get("error", f"HTTP {status}")
    else:
        message = f"HTTP {status}"
    error_type = _ERRORS_BY_STATUS.get(status, RemoteError)
    if error_type is RemoteError:
        raise RemoteError(message, status)
    raise error_type(message)


class ServiceClient:
    """One keep-alive connection to a running search service.

    ``retries`` > 0 opts into automatic retry of requests shed with 429
    (:class:`~repro.service.protocol.RequestShedError` only — other
    errors always surface immediately): attempt ``i`` sleeps
    ``backoff_ms * 2**i`` capped at ``max_backoff_ms``, scaled by a
    uniform jitter in ``[0.5, 1.0)``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        *,
        retries: int = 0,
        backoff_ms: float = 50.0,
        max_backoff_ms: float = 2000.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.backoff_ms = float(backoff_ms)
        self.max_backoff_ms = float(max_backoff_ms)
        self._rng = random.Random()
        self._connection: http.client.HTTPConnection | None = None

    # -- transport ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        idempotent: bool = True,
    ) -> dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except (
                RequestShedError,
                ConnectionResetError,
                BrokenPipeError,
            ) as exc:
                # A shed (429) is always safe to retry: the server
                # refused before doing anything.  A reset/broken pipe is
                # ambiguous — the server may have executed the request
                # before the connection died — so it is retried only for
                # idempotent requests (search/batch/health/stats, never
                # ingest, which would assign fresh text ids on replay).
                if not idempotent and not isinstance(exc, RequestShedError):
                    raise
                if attempt >= self.retries:
                    raise
                delay = min(
                    self.backoff_ms * (2.0 ** attempt), self.max_backoff_ms
                )
                time.sleep(delay * self._rng.uniform(0.5, 1.0) / 1e3)
                attempt += 1

    def _request_once(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(method, path, body=payload, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException):
            # Drop the (possibly half-dead) connection so the next call
            # reconnects instead of failing on a stale socket.
            self.close()
            raise
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise RemoteError(
                f"non-JSON response ({response.status}): {exc}", response.status
            )
        raise_for_response(response.status, decoded)
        return decoded

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------
    def search(
        self,
        query: str | Sequence[int] | np.ndarray,
        theta: float | None = None,
        *,
        verify: bool = False,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """One query; returns the full response body (``result`` inside).

        A string query is tokenized server-side (the engine must own a
        tokenizer); anything else is sent as a token-id list.
        """
        body: dict[str, Any] = {}
        if isinstance(query, str):
            body["text"] = query
        else:
            body["query"] = [int(token) for token in np.asarray(query).tolist()]
        if theta is not None:
            body["theta"] = float(theta)
        if verify:
            body["verify"] = True
        if timeout_ms is not None:
            body["timeout_ms"] = float(timeout_ms)
        return self._request("POST", "/search", body)

    def batch(
        self,
        queries: Sequence[Sequence[int] | np.ndarray],
        theta: float | None = None,
        *,
        verify: bool = False,
        timeout_ms: float | None = None,
    ) -> dict[str, Any]:
        """A client-side batch; returns ``results`` in input order."""
        body: dict[str, Any] = {
            "queries": [
                [int(token) for token in np.asarray(query).tolist()]
                for query in queries
            ]
        }
        if theta is not None:
            body["theta"] = float(theta)
        if verify:
            body["verify"] = True
        if timeout_ms is not None:
            body["timeout_ms"] = float(timeout_ms)
        return self._request("POST", "/batch", body)

    def ingest(
        self, texts: Sequence[str | Sequence[int] | np.ndarray]
    ) -> dict[str, Any]:
        """Append a batch to a live-served index; returns assigned ids.

        String entries are tokenized server-side.  The request is *not*
        idempotent (a replay would assign fresh ids), so connection
        failures are never auto-retried — only a 429 shed, which the
        server raises before touching the WAL, is.
        """
        wire: list[Any] = []
        for text in texts:
            if isinstance(text, str):
                wire.append(text)
            else:
                wire.append([int(token) for token in np.asarray(text).tolist()])
        return self._request(
            "POST", "/ingest", {"texts": wire}, idempotent=False
        )

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")
