"""Stdlib-only asyncio HTTP/1.1 front-end over a ``NearDupEngine``.

One process loads the engine directory once, warms the list cache with
the Zipf-head lists, and serves:

* ``POST /search`` — one query, admitted through the micro-batcher so
  concurrent clients coalesce into planned executor batches;
* ``POST /batch``  — a client-side batch, executed as one planned call;
* ``GET  /health`` — liveness plus index identity;
* ``GET  /stats``  — :class:`~repro.service.stats.ServiceStats`
  snapshot, cache pressure, and engine metadata.

The HTTP layer is deliberately minimal (request line, headers,
``Content-Length`` bodies, keep-alive) — no dependency beyond
``asyncio`` — because the interesting machinery is behind it: admission
control, deadlines, micro-batching, and graceful drain.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import logging
import os
import socket
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.engine import NearDupEngine
from repro.service.batcher import MicroBatcher
from repro.service.protocol import (
    ProtocolError,
    ServiceClosedError,
    error_body,
    parse_flag,
    parse_theta,
    parse_timeout,
    parse_tokens,
    result_to_wire,
    stats_to_wire,
)
from repro.service.stats import ServiceStats

logger = logging.getLogger(__name__)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADERS = 64


@dataclass
class ServiceConfig:
    """Tuning knobs of one service instance (see ``docs/SERVICE.md``)."""

    host: str = "127.0.0.1"
    port: int = 8080  #: 0 = ephemeral (the bound port lands in ``service.port``)
    workers: int = 2  #: batcher threads per server process
    procs: int = 1  #: prefork worker processes (1 = single in-process server)
    reuse_port: bool = False  #: per-worker SO_REUSEPORT sockets instead of one shared accept socket
    max_batch: int = 16
    linger_ms: float = 8.0
    max_queue: int = 128
    timeout_ms: float = 30000.0
    cache_bytes: int = 64 * 1024 * 1024
    cache_policy: str = "lru"  #: list/block-tier admission: ``lru`` or ``tinylfu``
    block_cache_bytes: int = 0  #: decoded-block tier budget; 0 disables
    result_cache: bool | None = None  #: None = on for live backends, off for static
    warmup_lists: int = 64  #: hot lists preloaded at startup; 0 disables
    theta: float = 0.8  #: default threshold when a request omits it
    max_body_bytes: int = 8 * 1024 * 1024


class HttpServiceBase:
    """Minimal asyncio HTTP/1.1 plumbing shared by front-end services.

    Subclasses (the search service, the shard router) implement
    ``_route(method, path, body) -> (status, payload)`` and reuse the
    connection handling: request-line/header/body parsing with bounded
    sizes, keep-alive, JSON responses, and protocol-error mapping.  A
    subclass's ``config`` must carry ``host``, ``port``, and
    ``max_body_bytes``.
    """

    config: Any

    def __init__(self) -> None:
        self._server: asyncio.Server | None = None
        self._draining = False
        self.port: int | None = None

    # -- lifecycle ------------------------------------------------------
    async def _start_listener(self, *, sock: socket.socket | None = None) -> None:
        """Bind (or adopt ``sock``) and record the live port."""
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.config.host,
                self.config.port,
                reuse_port=getattr(self.config, "reuse_port", False) or None,
            )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def _close_listener(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- routing hook ---------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        raise NotImplementedError

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, payload = await self._route(method, path, body)
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except ProtocolError as exc:
            status, payload = error_body(exc)
            try:
                self._write_response(writer, status, payload, keep_alive=False)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown cancels idle keep-alive handlers;
            # finish normally (closing the socket below) instead of
            # letting the protocol callback log the cancellation.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(f"malformed request line {line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, separator, value = header.decode("latin-1").partition(":")
            if not separator:
                raise ProtocolError(f"malformed header {header!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ProtocolError(f"more than {_MAX_HEADERS} headers")
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(f"bad Content-Length {length_text!r}")
        if length < 0 or length > self.config.max_body_bytes:
            raise ProtocolError(
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    @staticmethod
    def _decode(body: bytes) -> dict[str, Any]:
        try:
            decoded = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}")
        if not isinstance(decoded, dict):
            raise ProtocolError("body must be a JSON object")
        return decoded


class SearchService(HttpServiceBase):
    """The served engine: routes requests into the micro-batcher."""

    def __init__(
        self,
        engine: NearDupEngine,
        config: ServiceConfig | None = None,
        *,
        stats: ServiceStats | None = None,
    ):
        super().__init__()
        self.engine = engine
        self.config = config or ServiceConfig()
        # Prefork workers inject a shared-memory-backed stats block so
        # the supervisor's cluster view sees every worker's counters.
        self.stats = stats or ServiceStats()
        #: Optional cluster aggregation hook (set by the prefork
        #: worker); when present, ``/stats`` adds a ``cluster`` block.
        self.cluster: Callable[[], dict[str, Any]] | None = None
        self.searcher = engine.cached_searcher(
            cache_bytes=self.config.cache_bytes,
            cache_policy=self.config.cache_policy,
            block_cache_bytes=self.config.block_cache_bytes,
            result_cache=self.config.result_cache,
        )
        self.batcher = MicroBatcher(
            self.searcher,
            max_batch=self.config.max_batch,
            linger_ms=self.config.linger_ms,
            max_queue=self.config.max_queue,
            workers=self.config.workers,
            stats=self.stats,
        )
        self.warmed_lists = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self, *, sock: socket.socket | None = None) -> None:
        """Warm the cache, start the batcher, and bind the socket.

        ``sock`` lets a prefork supervisor pass one already-bound
        listening socket shared by every forked worker (a shared accept
        loop); with ``config.reuse_port`` each worker instead binds its
        own ``SO_REUSEPORT`` socket and the kernel spreads accepts.
        """
        if self.config.warmup_lists > 0:
            self.warmed_lists = self.engine.warmup(
                self.searcher, max_lists=self.config.warmup_lists
            )
        await self.batcher.start()
        await self._start_listener(sock=sock)
        logger.info(
            "serving %d texts / %d postings on %s:%d (%d lists warm)",
            self.engine.num_texts,
            self.engine.index.num_postings,
            self.config.host,
            self.port,
            self.warmed_lists,
        )

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish everything admitted."""
        await self._close_listener()
        await self.batcher.close(drain=True)
        if getattr(self.engine, "backend", "static") == "live":
            # Final WAL fsync + compactor join so nothing acknowledged
            # is left riding on the page cache.
            await asyncio.get_running_loop().run_in_executor(
                None, self.engine.close
            )

    # -- routing --------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        try:
            if path == "/health" and method == "GET":
                return 200, self._health_payload()
            if path == "/stats" and method == "GET":
                return 200, self._stats_payload()
            if path == "/search" and method == "POST":
                if self._draining:
                    raise ServiceClosedError("service is draining")
                return 200, await self._search(self._decode(body))
            if path == "/batch" and method == "POST":
                if self._draining:
                    raise ServiceClosedError("service is draining")
                return 200, await self._batch(self._decode(body))
            if path == "/ingest" and method == "POST":
                if self._draining:
                    raise ServiceClosedError("service is draining")
                return 200, await self._ingest(self._decode(body))
            if path in ("/health", "/stats", "/search", "/batch", "/ingest"):
                raise ProtocolError(f"{method} not allowed on {path}", status=405)
            raise ProtocolError(f"unknown path {path!r}", status=404)
        except (asyncio.TimeoutError, TimeoutError):
            self.stats.record_timeout()
            return 504, {
                "ok": False,
                "error": "deadline exceeded before execution",
                "code": 504,
            }
        except Exception as exc:  # noqa: BLE001 - mapped to a JSON error
            status, payload = error_body(exc)
            if status >= 500 and not isinstance(exc, ServiceClosedError):
                self.stats.record_error()
                logger.exception("request failed")
            return status, payload

    # -- endpoints ------------------------------------------------------
    def _query_tokens(self, body: dict[str, Any]):
        if "text" in body:
            if not isinstance(body["text"], str) or not body["text"]:
                raise ProtocolError("'text' must be a non-empty string")
            if self.engine.tokenizer is None:
                raise ProtocolError(
                    "this engine has no tokenizer; send token ids in 'query'"
                )
            return self.engine.tokenizer.encode(body["text"])
        return parse_tokens(body.get("query"))

    async def _search(self, body: dict[str, Any]) -> dict[str, Any]:
        tokens = self._query_tokens(body)
        theta = parse_theta(body, self.config.theta)
        verify = parse_flag(body, "verify")
        timeout = parse_timeout(body, self.config.timeout_ms)
        loop = asyncio.get_running_loop()
        begin = loop.time()
        result, batched_with, queue_wait = await self.batcher.submit(
            tokens, theta, verify=verify, timeout=timeout
        )
        total = loop.time() - begin
        self.stats.record_completed(total, queue_wait)
        return {
            "ok": True,
            "result": result_to_wire(result),
            "server": {
                "batched_with": batched_with,
                "queue_ms": 1e3 * queue_wait,
                "total_ms": 1e3 * total,
                "stats": stats_to_wire(result.stats),
            },
        }

    async def _batch(self, body: dict[str, Any]) -> dict[str, Any]:
        raw = body.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'queries' must be a non-empty list")
        queries = [
            parse_tokens(entry, field=f"queries[{position}]")
            for position, entry in enumerate(raw)
        ]
        theta = parse_theta(body, self.config.theta)
        verify = parse_flag(body, "verify")
        timeout = parse_timeout(body, self.config.timeout_ms)
        loop = asyncio.get_running_loop()
        begin = loop.time()
        batch = await self.batcher.submit_batch(
            queries, theta, verify=verify, timeout=timeout
        )
        total = loop.time() - begin
        for result in batch.results:
            self.stats.record_completed(total, 0.0)
        return {
            "ok": True,
            "results": [result_to_wire(result) for result in batch.results],
            "server": {
                "batched_with": len(queries),
                "unique_queries": batch.stats.unique_queries,
                "total_ms": 1e3 * total,
                "stats": [stats_to_wire(result.stats) for result in batch.results],
            },
        }

    async def _ingest(self, body: dict[str, Any]) -> dict[str, Any]:
        """Durable streaming append (live engines only).

        Not idempotent: replaying the same request assigns fresh text
        ids, so clients must not auto-retry it on ambiguous transport
        failures (see :meth:`repro.service.client.ServiceClient.ingest`).
        """
        if getattr(self.engine, "backend", "static") != "live":
            raise ProtocolError(
                "this engine is static; /ingest requires serving a live "
                "index root (repro-cli serve <live-root>)"
            )
        raw = body.get("texts")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'texts' must be a non-empty list")
        texts = []
        for position, entry in enumerate(raw):
            if isinstance(entry, str):
                if self.engine.tokenizer is None:
                    raise ProtocolError(
                        "this engine has no tokenizer; send token ids in "
                        f"'texts[{position}]'"
                    )
                texts.append(self.engine.tokenizer.encode(entry))
            else:
                texts.append(parse_tokens(entry, field=f"texts[{position}]"))
        loop = asyncio.get_running_loop()
        begin = loop.time()
        # The live index serialises appends internally; run on the
        # default executor so the event loop keeps serving queries
        # while the WAL fsyncs.
        ids = await loop.run_in_executor(None, self.engine.append_texts, texts)
        total = loop.time() - begin
        live = self.engine.live_index
        return {
            "ok": True,
            "ids": ids,
            "accepted": sum(1 for text_id in ids if text_id is not None),
            "deduped": sum(1 for text_id in ids if text_id is None),
            "next_text_id": live.num_texts,
            "generation": live.manifest.generation,
            "server": {"total_ms": 1e3 * total},
        }

    def _health_payload(self) -> dict[str, Any]:
        return {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "pid": os.getpid(),
            "texts": self.engine.num_texts,
            "postings": self.engine.index.num_postings,
            "k": self.engine.index.family.k,
            "t": self.engine.index.t,
            "backend": getattr(self.engine, "backend", "static"),
        }

    def _block_cache(self):
        """The decoded-block tier, wherever the searcher shape put it."""
        block_cache = getattr(self.searcher, "block_cache", None)
        if block_cache is not None:
            return block_cache
        reader = getattr(self.searcher, "index", None)
        inner = getattr(reader, "inner", reader)
        return getattr(inner, "block_cache", None)

    def _stats_payload(self) -> dict[str, Any]:
        payload = {
            "ok": True,
            "service": self.stats.snapshot(),
            "cache": self.searcher.index.stats().to_dict(),
            "queue_depth": self.batcher.depth,
            "warmed_lists": self.warmed_lists,
            "engine": self._health_payload(),
            "config": {
                "workers": self.config.workers,
                "procs": self.config.procs,
                "max_batch": self.config.max_batch,
                "linger_ms": self.config.linger_ms,
                "max_queue": self.config.max_queue,
                "timeout_ms": self.config.timeout_ms,
                "cache_bytes": self.config.cache_bytes,
                "cache_policy": self.config.cache_policy,
                "block_cache_bytes": self.config.block_cache_bytes,
                "result_cache": self.config.result_cache,
            },
        }
        block_cache = self._block_cache()
        if block_cache is not None:
            payload["block_cache"] = block_cache.stats().to_dict()
        result_cache = getattr(self.searcher, "result_cache", None)
        if result_cache is not None:
            payload["result_cache"] = result_cache.stats().to_dict()
        if getattr(self.engine, "backend", "static") == "live":
            payload["live"] = self.engine.live_index.status()
        if self.cluster is not None:
            payload["cluster"] = self.cluster()
        return payload


# ----------------------------------------------------------------------
# Embedding helpers
# ----------------------------------------------------------------------
class ServiceRunner:
    """Run a service on a background thread.

    Tests and benchmarks need a live server inside one process: the
    runner owns a thread with its own event loop, starts the service on
    it, exposes ``host``/``port``, and tears everything down through
    the same graceful-drain path the CLI uses.  The default service is
    a :class:`SearchService` over ``engine``; pass ``service=`` to run
    any other :class:`HttpServiceBase` (e.g. the shard router) — it
    must expose async ``start()``/``shutdown()``.
    """

    def __init__(
        self,
        engine: NearDupEngine | None = None,
        config: ServiceConfig | None = None,
        *,
        service: HttpServiceBase | None = None,
    ):
        if service is None:
            assert engine is not None, "pass an engine or a service"
            service = SearchService(engine, config)
        self.service = service
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def port(self) -> int:
        assert self.service.port is not None, "runner is not started"
        return self.service.port

    def start(self, timeout: float = 10.0) -> "ServiceRunner":
        self._thread = threading.Thread(
            target=self._main, name="repro-service-runner", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._error is not None:
            raise self._error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def call(self, fn, timeout: float = 10.0):
        """Run ``fn()`` on the service's event-loop thread and wait."""
        assert self._loop is not None
        done: concurrent.futures.Future = concurrent.futures.Future()

        def run() -> None:
            try:
                done.set_result(fn())
            except BaseException as exc:  # noqa: BLE001 - forwarded
                done.set_exception(exc)

        self._loop.call_soon_threadsafe(run)
        return done.result(timeout)

    def submit(self, coro) -> concurrent.futures.Future:
        """Schedule a coroutine on the service loop (returns its future)."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._started.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start()
        except Exception as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.service.shutdown()

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


async def _serve_until_cancelled(service: SearchService, banner: bool) -> None:
    await service.start()
    if banner:
        print(
            f"repro service: {service.engine.num_texts} texts / "
            f"{service.engine.index.num_postings} postings on "
            f"{service.config.host}:{service.port} "
            f"({service.warmed_lists} lists warm); Ctrl-C drains and exits"
        )
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.shutdown()


def load_served_engine(
    directory: str, corpus_dir: str | None = None
) -> NearDupEngine:
    """Open what ``serve`` was pointed at.

    Accepts a full saved-engine directory (:meth:`NearDupEngine.save`),
    a live-index root (``MANIFEST.json``; served with streaming
    ``/ingest`` enabled), or a bare index directory from
    ``repro-cli build`` paired with its corpus via ``corpus_dir``.
    """
    from pathlib import Path

    from repro.corpus.store import DiskCorpus
    from repro.exceptions import InvalidParameterError
    from repro.index.lsm import manifest_exists
    from repro.index.storage import DiskInvertedIndex

    path = Path(directory)
    if (path / "engine.meta.json").exists():
        return NearDupEngine.load(path)
    if manifest_exists(path):
        return NearDupEngine.live(path)
    if corpus_dir is None:
        raise InvalidParameterError(
            f"{directory} is a bare index directory; pass its corpus via --corpus"
        )
    return NearDupEngine(DiskCorpus(corpus_dir), DiskInvertedIndex(path))


def serve(
    index_dir: str,
    *,
    corpus_dir: str | None = None,
    config: ServiceConfig | None = None,
    banner: bool = True,
) -> int:
    """Blocking entry point of ``repro-cli serve``.

    Loads the engine, runs the service until interrupted, then drains
    in-flight requests before returning.  With ``config.procs > 1`` the
    engine is loaded once (mmap) and served by a
    :class:`~repro.service.prefork.PreforkServer` fleet of forked
    workers sharing that mapping.
    """
    engine = load_served_engine(index_dir, corpus_dir)
    if config is not None and config.procs > 1:
        if getattr(engine, "backend", "static") == "live":
            from repro.exceptions import InvalidParameterError

            raise InvalidParameterError(
                "a live index has a single writer (its WAL); serve it with "
                "procs=1"
            )
        from repro.service.prefork import PreforkServer

        return PreforkServer(engine, config).run_forever(banner=banner)
    service = SearchService(engine, config)
    try:
        asyncio.run(_serve_until_cancelled(service, banner))
    except KeyboardInterrupt:
        pass
    return 0
