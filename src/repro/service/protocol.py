"""JSON wire format of the search service.

Every body is a single JSON object.  The served result of a query is
:func:`result_to_wire` applied to the exact
:class:`~repro.core.search.SearchResult` the engine would return
locally — the service layer adds timing/batching metadata in a sibling
``server`` object, never inside ``result``, so clients (and the tests)
can compare served results byte-for-byte against a direct search.

Requests
--------
``POST /search``::

    {"query": [17, 4, ...],      # token ids (uint32 range), or
     "text": "raw string",       # requires the engine to own a tokenizer
     "theta": 0.8,               # optional, default from the server
     "verify": false,            # optional exact-Jaccard post-filter
     "timeout_ms": 2000}         # optional per-request deadline

``POST /batch``::

    {"queries": [[...], ...],    # list of token-id sequences
     "theta": 0.8, "verify": false, "timeout_ms": 10000}

Responses carry ``{"ok": true, ...}`` on success; errors are
``{"ok": false, "error": "...", "code": <http status>}`` with the same
status on the HTTP line (400 malformed, 404 unknown path, 429 shed,
503 draining, 504 deadline exceeded, 500 internal).
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.core.search import QueryStats, SearchResult
from repro.exceptions import ReproError


class ServiceError(ReproError):
    """Base class of service-layer failures; carries an HTTP status."""

    status = 500


class ProtocolError(ServiceError):
    """The request body or path is malformed (HTTP 400/404)."""

    status = 400

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class RequestShedError(ServiceError):
    """Admission control rejected the request: the queue is full (429)."""

    status = 429


class RequestTimeoutError(ServiceError):
    """The per-request deadline elapsed before execution (504)."""

    status = 504


class ServiceClosedError(ServiceError):
    """The service is draining and refuses new work (503)."""

    status = 503


class RemoteError(ServiceError):
    """Client-side wrapper of any error response from the server."""

    def __init__(self, message: str, status: int = 500) -> None:
        super().__init__(message)
        self.status = status


# ----------------------------------------------------------------------
# Result serialization
# ----------------------------------------------------------------------
def result_to_wire(result: SearchResult) -> dict[str, Any]:
    """Serialize one search result (deterministic, stats excluded).

    Per-query stats depend on cache temperature and batching context,
    so they live in the response's ``server`` block; everything here is
    a pure function of (index, query, theta) and therefore byte-equal
    between a served query and a direct ``engine.search_raw``.
    """
    return {
        "k": result.k,
        "theta": result.theta,
        "beta": result.beta,
        "t": result.t,
        "num_texts": result.num_texts,
        "matches": [
            {
                "text_id": match.text_id,
                "rectangles": [
                    {
                        "i_lo": rect.i_lo,
                        "i_hi": rect.i_hi,
                        "j_lo": rect.j_lo,
                        "j_hi": rect.j_hi,
                        "count": rect.count,
                    }
                    for rect in match.rectangles
                ],
            }
            for match in result.matches
        ],
        "spans": [
            [span.text_id, span.start, span.end]
            for span in result.merged_spans()
        ],
    }


def stats_to_wire(stats: QueryStats) -> dict[str, Any]:
    """Serialize per-query stats for the response's ``server`` block.

    Field-driven (like :meth:`QueryStats.merge`), so a counter added to
    :class:`QueryStats` later crosses the wire automatically.
    """
    return dataclasses.asdict(stats)


def stats_from_wire(raw: Any) -> QueryStats:
    """Rebuild :class:`QueryStats` from a ``server.stats`` wire dict.

    Unknown keys are ignored and missing ones default to zero, so a
    router can merge stats from shard servers one format revision away.
    """
    if not isinstance(raw, dict):
        return QueryStats()
    known = {spec.name for spec in dataclasses.fields(QueryStats)}
    return QueryStats(**{key: raw[key] for key in raw.keys() & known})


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------
def parse_tokens(value: Any, *, field: str = "query") -> np.ndarray:
    """Validate one token-id sequence from a decoded JSON body."""
    if not isinstance(value, list) or not value:
        raise ProtocolError(f"'{field}' must be a non-empty list of token ids")
    try:
        tokens = np.asarray(value, dtype=np.uint32)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"'{field}' is not a token-id sequence: {exc}")
    if tokens.ndim != 1:
        raise ProtocolError(f"'{field}' must be a flat list of token ids")
    return tokens


def parse_theta(body: dict[str, Any], default: float) -> float:
    theta = body.get("theta", default)
    if not isinstance(theta, (int, float)) or not 0.0 < float(theta) <= 1.0:
        raise ProtocolError(f"'theta' must be in (0, 1], got {theta!r}")
    return float(theta)


def parse_timeout(body: dict[str, Any], default_ms: float) -> float:
    """Per-request deadline in seconds (``timeout_ms`` on the wire)."""
    timeout_ms = body.get("timeout_ms", default_ms)
    if not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0:
        raise ProtocolError(f"'timeout_ms' must be positive, got {timeout_ms!r}")
    return float(timeout_ms) / 1e3


def parse_policy(value: Any) -> str:
    """Validate a replica-selection policy name (router config / CLI)."""
    from repro.service.replicas import POLICIES

    if not isinstance(value, str) or value not in POLICIES:
        raise ProtocolError(
            f"unknown routing policy {value!r}; choose from {list(POLICIES)}"
        )
    return value


def parse_hedge_after_ms(value: Any) -> float | None:
    """Validate a hedge delay: ``None`` off, ``0`` auto (p95), ``>0`` fixed."""
    if value is None:
        return None
    if not isinstance(value, (int, float)) or value < 0:
        raise ProtocolError(
            f"'hedge_after_ms' must be >= 0 (0 = auto from the shard's "
            f"observed p95), got {value!r}"
        )
    return float(value)


def parse_flag(body: dict[str, Any], name: str) -> bool:
    value = body.get(name, False)
    if not isinstance(value, bool):
        raise ProtocolError(f"'{name}' must be a boolean, got {value!r}")
    return value


def error_body(exc: Exception) -> tuple[int, dict[str, Any]]:
    """Map an exception to ``(http status, response body)``."""
    status = getattr(exc, "status", None)
    if not isinstance(status, int):
        status = 400 if isinstance(exc, ReproError) else 500
    return status, {"ok": False, "error": str(exc), "code": status}
