"""Micro-batching: coalesce concurrent requests into planned batches.

PR 1's measurement was that a *batch* of queries planned together costs
a fraction of the same queries run independently — sketch dedup answers
repeated queries once, and shared Zipf-head lists are pinned and read
once.  An online service receives exactly that workload, just spread
across concurrent clients instead of one caller.  The micro-batcher
recreates the batch boundary at the server: an arriving request is
sketched immediately and parked in a bounded queue; the dispatch loop
gathers up to ``max_batch`` requests, waiting at most ``linger_ms``
beyond the first, and hands each same-``(theta, verify)`` group to one
:meth:`~repro.query.executor.BatchQueryExecutor.execute_plan` call on a
worker thread pool.

Admission control and deadlines live here too: a full queue sheds the
request immediately (the caller maps that to HTTP 429), and a request
whose deadline passes while still queued is skipped at dispatch time —
its planning and execution never happen.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.query.executor import BatchQueryExecutor
from repro.query.planner import plan_batch
from repro.query.results import BatchResult
from repro.service.protocol import RequestShedError, ServiceClosedError
from repro.service.stats import ServiceStats


@dataclass
class _Pending:
    """One admitted single-query request waiting for its batch."""

    tokens: np.ndarray
    sketch: np.ndarray
    theta: float
    verify: bool
    future: asyncio.Future
    enqueued: float


class MicroBatcher:
    """Coalesce concurrent in-flight requests into executor batches.

    Parameters
    ----------
    searcher:
        The shared searcher, normally from
        :meth:`~repro.engine.NearDupEngine.cached_searcher` so every
        batch pins into one thread-safe LRU cache.
    max_batch:
        Upper bound on requests coalesced into one executor call.
    linger_ms:
        How long the dispatcher waits for more requests after the
        first one of a batch arrives.  The knob trades tail latency
        (each request can wait up to one linger) for coalescing.
    max_queue:
        Admission bound: requests beyond this many queued are shed
        with :class:`~repro.service.protocol.RequestShedError`.
    workers:
        Threads executing batches.  Batches run concurrently when more
        than one group (or a long-running batch) is in flight.
    """

    def __init__(
        self,
        searcher,
        *,
        max_batch: int = 16,
        linger_ms: float = 8.0,
        max_queue: int = 128,
        workers: int = 2,
        stats: ServiceStats | None = None,
    ) -> None:
        if max_batch < 1:
            raise InvalidParameterError(f"max_batch must be >= 1, got {max_batch}")
        if linger_ms < 0:
            raise InvalidParameterError(f"linger_ms must be >= 0, got {linger_ms}")
        if max_queue < 1:
            raise InvalidParameterError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.searcher = searcher
        self.max_batch = int(max_batch)
        self.linger = float(linger_ms) / 1e3
        self.max_queue = int(max_queue)
        self.stats = stats or ServiceStats()
        self.executor = BatchQueryExecutor(searcher, workers=1)
        self._pool = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="repro-service"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[_Pending] | None = None
        self._gate: asyncio.Event | None = None
        self._runner: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and start the dispatch task."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._gate = asyncio.Event()
        self._gate.set()
        self._runner = asyncio.create_task(self._run(), name="micro-batcher")

    async def close(self, *, drain: bool = True) -> None:
        """Refuse new requests; optionally finish the queued ones.

        With ``drain=True`` (graceful shutdown) every already-admitted
        request is still executed and answered; with ``drain=False``
        queued requests fail with :class:`ServiceClosedError`.
        """
        self._closed = True
        assert self._queue is not None and self._runner is not None
        if drain:
            self._gate.set()
            while not self._queue.empty():
                await asyncio.sleep(0.005)
        self._runner.cancel()
        try:
            await self._runner
        except asyncio.CancelledError:
            pass
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if not item.future.done():
                item.future.set_exception(ServiceClosedError("service is shutting down"))
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        self._pool.shutdown(wait=True)
        self.executor.close()

    def pause(self) -> None:
        """Hold dispatch (requests keep queueing).  Test/benchmark hook."""
        assert self._gate is not None
        self._gate.clear()

    def resume(self) -> None:
        assert self._gate is not None
        self._gate.set()

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet dispatched)."""
        return self._queue.qsize() if self._queue is not None else 0

    # -- submission -----------------------------------------------------
    async def submit(
        self,
        tokens: np.ndarray,
        theta: float,
        *,
        verify: bool = False,
        timeout: float | None = None,
    ) -> tuple[object, int, float]:
        """Admit one query; returns ``(SearchResult, batch_size, queue_wait_s)``.

        Raises :class:`RequestShedError` when the queue is full,
        :class:`ServiceClosedError` when draining, and
        :class:`asyncio.TimeoutError` when ``timeout`` elapses first
        (the request is cancelled; if still queued it is skipped before
        any planning work happens).
        """
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        assert self._loop is not None and self._queue is not None
        # Sketch on arrival: by dispatch time the whole lingering batch
        # is pre-sketched and the planner's sketch pass is free.
        sketch = self.searcher.family.sketch(np.asarray(tokens, dtype=np.uint32))
        item = _Pending(
            tokens=np.asarray(tokens, dtype=np.uint32),
            sketch=sketch,
            theta=float(theta),
            verify=bool(verify),
            future=self._loop.create_future(),
            enqueued=self._loop.time(),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats.record_shed()
            raise RequestShedError(
                f"request queue is full ({self.max_queue} waiting)"
            ) from None
        self.stats.record_admitted()
        if timeout is None:
            return await item.future
        return await asyncio.wait_for(item.future, timeout)

    async def submit_batch(
        self,
        queries: list[np.ndarray],
        theta: float,
        *,
        verify: bool = False,
        timeout: float | None = None,
    ) -> BatchResult:
        """Run a client-supplied batch directly (no linger needed).

        The batch bypasses the coalescing queue — it already *is* a
        batch — but shares the worker pool, the pinned cache, and the
        stats block with micro-batched traffic.
        """
        if self._closed:
            raise ServiceClosedError("service is shutting down")
        assert self._loop is not None
        for _ in queries:
            self.stats.record_admitted()
        self.stats.record_batch(len(queries))
        queries = [np.asarray(query, dtype=np.uint32) for query in queries]
        call = self._loop.run_in_executor(
            self._pool, lambda: self.executor.execute(queries, theta, verify=verify)
        )
        if timeout is not None:
            call = asyncio.wait_for(call, timeout)
        batch = await call
        self.stats.record_search_io(
            batch.stats.lists_loaded, batch.stats.point_reads
        )
        return batch

    # -- dispatch loop --------------------------------------------------
    async def _run(self) -> None:
        assert self._queue is not None and self._gate is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            try:
                # The gate sits between dequeue and dispatch so pause()
                # (tests, benchmarks) holds a fully observable state:
                # one request held here, the rest queued behind
                # admission control.
                await self._gate.wait()
                deadline = loop.time() + self.linger
                while len(batch) < self.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            finally:
                # Dispatch even when the loop is cancelled mid-linger
                # (graceful drain): admitted requests are never dropped.
                self._spawn_dispatch(batch, loop)

    def _spawn_dispatch(
        self, batch: list[_Pending], loop: asyncio.AbstractEventLoop
    ) -> None:
        # Same-parameter requests coalesce; a mixed drain dispatches
        # one executor call per (theta, verify) group, concurrently.
        groups: dict[tuple[float, bool], list[_Pending]] = {}
        for item in batch:
            groups.setdefault((item.theta, item.verify), []).append(item)
        for group in groups.values():
            task = loop.create_task(self._dispatch(group))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, group: list[_Pending]) -> None:
        assert self._loop is not None
        # A request whose deadline already fired was cancelled by its
        # submit(); skipping it here cancels its planning-stage work.
        live = [item for item in group if not item.future.done()]
        if not live:
            return
        self.stats.record_batch(len(live))
        try:
            batch = await self._loop.run_in_executor(
                self._pool, self._execute, live
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to every caller
            for item in live:
                if not item.future.done():
                    self.stats.record_error()
                    item.future.set_exception(exc)
            return
        self.stats.record_search_io(
            batch.stats.lists_loaded, batch.stats.point_reads
        )
        now = self._loop.time()
        for item, result in zip(live, batch.results):
            if not item.future.done():
                item.future.set_result((result, len(live), now - item.enqueued))

    def _execute(self, items: list[_Pending]) -> BatchResult:
        """Worker-thread body: plan from the pre-computed sketches, run."""
        theta = items[0].theta
        verify = items[0].verify
        plan = plan_batch(
            self.searcher,
            [item.tokens for item in items],
            theta,
            verify=verify,
            sketches=[item.sketch for item in items],
        )
        return self.executor.execute_plan(plan, theta, verify=verify)
