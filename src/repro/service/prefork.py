"""Prefork multi-worker serving over one shared, zero-copy index mapping.

The query path is embarrassingly parallel across requests, but one
asyncio process tops out near single-core throughput: every fused
sweep kernel runs under one GIL.  The prefork server scales the same
service across cores the classic Unix way:

* the supervisor loads the engine **once** — payload and directory are
  ``mmap``-ed (:mod:`repro.index.sidecar`), so the index costs one
  page-cache copy no matter how many workers serve it;
* it binds **one** listening socket and forks N workers; each worker
  runs the unmodified :class:`~repro.service.server.SearchService`
  (asyncio front-end + micro-batcher) with an accept loop on the
  shared socket, so the kernel hands each connection to exactly one
  worker.  With ``config.reuse_port`` the workers instead bind their
  own ``SO_REUSEPORT`` sockets and the kernel hash-balances accepts;
* a watcher thread respawns any worker that dies (the replacement
  forks from the supervisor, so it inherits the warm mapping and the
  listening socket; its stats slot restarts from zero);
* ``stop()`` propagates graceful drain — SIGTERM to every worker, each
  finishes its admitted requests through the normal
  :meth:`~repro.service.server.SearchService.shutdown` path — and
  escalates to SIGKILL only past the drain timeout;
* per-worker counters live in one shared-memory block
  (:class:`StatsSlots`, a ``multiprocessing.RawArray``), each worker
  publishing write-through from its own slot, so ``/stats`` answered
  by *any* worker carries an aggregated ``cluster`` view of the fleet.

Fork start method only (the engine and socket must be inherited, not
pickled), which is also what keeps the index zero-copy: forked page
tables point at the supervisor's mapping.
"""

from __future__ import annotations

import asyncio
import http.client
import logging
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import replace
from multiprocessing import connection
from typing import Any

import numpy as np

from repro.engine import NearDupEngine
from repro.exceptions import InvalidParameterError
from repro.index.cache import CachedIndexReader
from repro.service.client import ServiceClient
from repro.service.server import SearchService, ServiceConfig
from repro.service.stats import LatencyHistogram, ServiceStats

logger = logging.getLogger(__name__)

#: Scalar fields of one worker's stats slot, in layout order; the
#: latency histogram buckets follow them.
_FIELDS = (
    "requests",
    "completed",
    "errors",
    "shed",
    "timeouts",
    "batches",
    "batched_queries",
    "lists_loaded",
    "point_reads",
    "latency_count",
    "latency_sum",
    "latency_max",
    "queue_count",
    "queue_sum",
    "cache_hits",
    "cache_misses",
    "cache_bytes",
    "cache_lists",
    "cache_admission_rejections",
    "cache_singleflight_waits",
    "pid",
    "generation",
)
_INDEX = {name: position for position, name in enumerate(_FIELDS)}
_BUCKETS_AT = len(_FIELDS)
_SLOT_WIDTH = len(_FIELDS) + LatencyHistogram.NUM_BUCKETS


class StatsSlots:
    """Fixed-layout shared-memory stats: one float64 row per worker.

    Single writer per row (the owning worker), any reader (every
    worker's ``/stats``, the supervisor); aligned 8-byte stores are
    atomic on every platform we target, so no cross-process lock is
    needed for monotonic counters.
    """

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)
        self._array = multiprocessing.RawArray("d", self.workers * _SLOT_WIDTH)

    def view(self) -> np.ndarray:
        """A ``(workers, width)`` float64 view over the shared block."""
        return np.frombuffer(self._array, dtype=np.float64).reshape(
            self.workers, _SLOT_WIDTH
        )

    def reset(self, slot: int) -> None:
        self.view()[slot, :] = 0.0

    def aggregate(self) -> dict[str, Any]:
        """The ``cluster`` block of ``/stats``: fleet-wide totals.

        Counters sum across slots; latency quantiles come from the
        *summed* histogram buckets (geometric buckets aggregate
        exactly — the whole point of fixed buckets over reservoirs).
        """
        rows = np.array(self.view())  # one snapshot copy
        live = rows[rows[:, _INDEX["pid"]] > 0]
        histogram = LatencyHistogram()
        histogram.counts = [
            int(count) for count in live[:, _BUCKETS_AT:].sum(axis=0)
        ] if live.size else histogram.counts
        histogram.total = int(live[:, _INDEX["latency_count"]].sum()) if live.size else 0
        histogram.sum_seconds = float(live[:, _INDEX["latency_sum"]].sum()) if live.size else 0.0
        histogram.max_seconds = float(live[:, _INDEX["latency_max"]].max()) if live.size else 0.0

        def total(name: str) -> int:
            return int(live[:, _INDEX[name]].sum()) if live.size else 0

        queue_count = total("queue_count")
        queue_sum = float(live[:, _INDEX["queue_sum"]].sum()) if live.size else 0.0
        return {
            "procs": int(self.workers),
            "alive": int(live.shape[0]),
            "workers": [
                {
                    "pid": int(row[_INDEX["pid"]]),
                    "generation": int(row[_INDEX["generation"]]),
                    "requests": int(row[_INDEX["requests"]]),
                    "completed": int(row[_INDEX["completed"]]),
                }
                for row in live
            ],
            "requests": total("requests"),
            "completed": total("completed"),
            "errors": total("errors"),
            "shed": total("shed"),
            "timeouts": total("timeouts"),
            "batches": total("batches"),
            "batched_queries": total("batched_queries"),
            "lists_loaded": total("lists_loaded"),
            "point_reads": total("point_reads"),
            "latency": histogram.to_dict(),
            "queue_wait": {
                "count": queue_count,
                "mean_ms": 1e3 * queue_sum / queue_count if queue_count else 0.0,
            },
            "cache": {
                "hits": total("cache_hits"),
                "misses": total("cache_misses"),
                "cached_bytes": total("cache_bytes"),
                "cached_lists": total("cache_lists"),
                "admission_rejections": total("cache_admission_rejections"),
                "singleflight_waits": total("cache_singleflight_waits"),
            },
        }


class SharedServiceStats(ServiceStats):
    """A :class:`ServiceStats` that mirrors itself into a stats slot.

    Every ``record_*`` call publishes the full counter row after the
    normal in-process update, so the shared block is at least as fresh
    as any response the worker has produced.
    """

    def __init__(self, slots: StatsSlots, slot: int, generation: int) -> None:
        super().__init__()
        self._slots = slots
        self._slot = int(slot)
        self._generation = int(generation)
        self._cache_reader: CachedIndexReader | None = None

    def attach_cache(self, reader) -> None:
        """Start mirroring ``reader``'s cache counters (if it has any)."""
        if isinstance(reader, CachedIndexReader):
            self._cache_reader = reader

    def publish(self) -> None:
        row = self._slots.view()[self._slot]
        with self._lock:
            row[_INDEX["requests"]] = self.requests
            row[_INDEX["completed"]] = self.completed
            row[_INDEX["errors"]] = self.errors
            row[_INDEX["shed"]] = self.shed
            row[_INDEX["timeouts"]] = self.timeouts
            row[_INDEX["batches"]] = self.batches
            row[_INDEX["batched_queries"]] = self.batched_queries
            row[_INDEX["lists_loaded"]] = self.lists_loaded
            row[_INDEX["point_reads"]] = self.point_reads
            row[_INDEX["latency_count"]] = self.latency.total
            row[_INDEX["latency_sum"]] = self.latency.sum_seconds
            row[_INDEX["latency_max"]] = self.latency.max_seconds
            row[_INDEX["queue_count"]] = self.queue_wait.total
            row[_INDEX["queue_sum"]] = self.queue_wait.sum_seconds
            row[_BUCKETS_AT:] = self.latency.counts
            row[_INDEX["pid"]] = os.getpid()
            row[_INDEX["generation"]] = self._generation
        if self._cache_reader is not None:
            cache = self._cache_reader.stats()
            row[_INDEX["cache_hits"]] = cache.hits
            row[_INDEX["cache_misses"]] = cache.misses
            row[_INDEX["cache_bytes"]] = cache.cached_bytes
            row[_INDEX["cache_lists"]] = cache.cached_lists
            row[_INDEX["cache_admission_rejections"]] = cache.admission_rejections
            row[_INDEX["cache_singleflight_waits"]] = cache.singleflight_waits

    def record_admitted(self) -> None:
        super().record_admitted()
        self.publish()

    def record_shed(self) -> None:
        super().record_shed()
        self.publish()

    def record_timeout(self) -> None:
        super().record_timeout()
        self.publish()

    def record_error(self) -> None:
        super().record_error()
        self.publish()

    def record_batch(self, size: int) -> None:
        super().record_batch(size)
        self.publish()

    def record_search_io(self, lists_loaded: int, point_reads: int) -> None:
        super().record_search_io(lists_loaded, point_reads)
        self.publish()

    def record_completed(
        self, latency_seconds: float, queue_seconds: float
    ) -> None:
        super().record_completed(latency_seconds, queue_seconds)
        self.publish()


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _worker_main(
    engine: NearDupEngine,
    config: ServiceConfig,
    sock: socket.socket | None,
    slots: StatsSlots,
    slot: int,
    generation: int,
) -> None:
    """Forked child entry: one full asyncio server over the shared map."""
    try:
        asyncio.run(_worker_amain(engine, config, sock, slots, slot, generation))
    except KeyboardInterrupt:  # pragma: no cover - race with the handler
        pass


async def _worker_amain(
    engine: NearDupEngine,
    config: ServiceConfig,
    sock: socket.socket | None,
    slots: StatsSlots,
    slot: int,
    generation: int,
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    stats = SharedServiceStats(slots, slot, generation)
    service = SearchService(engine, config, stats=stats)
    service.cluster = slots.aggregate
    await service.start(sock=sock)
    stats.attach_cache(service.searcher.index)
    stats.publish()
    await stop.wait()
    await service.shutdown()
    stats.publish()


class PreforkServer:
    """Supervisor: shared socket, N forked workers, respawn, drain.

    Parameters
    ----------
    engine:
        The loaded engine.  Open it *before* constructing the server —
        every worker inherits the mapping through fork.
    config:
        ``config.procs`` workers are spawned.  ``config.reuse_port``
        switches from the shared accept socket to per-worker
        ``SO_REUSEPORT`` sockets.
    """

    def __init__(
        self, engine: NearDupEngine, config: ServiceConfig | None = None
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self.procs = max(1, int(self.config.procs))
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-Unix
            raise InvalidParameterError(
                "prefork serving requires the fork start method (Unix)"
            ) from exc
        if self.config.reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise InvalidParameterError(
                "SO_REUSEPORT is not available on this platform; "
                "use the shared accept socket (reuse_port=False)"
            )
        self.port: int | None = None
        self.slots = StatsSlots(self.procs)
        self._sock: socket.socket | None = None
        self._workers: list = [None] * self.procs
        self._generation = 0
        self._stopping = threading.Event()
        self._watcher: threading.Thread | None = None
        self._wake_r, self._wake_w = None, None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "PreforkServer":
        """Bind, fork the fleet, and start the respawn watcher."""
        self._stopping.clear()
        if self.config.reuse_port:
            # Resolve an ephemeral port with a throwaway SO_REUSEPORT
            # bind, then let each worker bind its own socket to it.
            # (A probe left open would enter the kernel's accept
            # balancing and swallow connections it never accepts.)
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            probe.bind((self.config.host, self.config.port))
            self.port = probe.getsockname()[1]
            probe.close()
            self.config = replace(self.config, port=self.port)
            self._sock = None
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.config.host, self.config.port))
            sock.listen(128)
            self.port = sock.getsockname()[1]
            self._sock = sock
        for slot in range(self.procs):
            self._spawn(slot)
        self._wake_r, self._wake_w = multiprocessing.Pipe(duplex=False)
        self._watcher = threading.Thread(
            target=self._watch, name="prefork-watcher", daemon=True
        )
        self._watcher.start()
        return self

    def _spawn(self, slot: int) -> None:
        self.slots.reset(slot)
        self._generation += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.engine,
                self.config,
                self._sock,
                self.slots,
                slot,
                self._generation,
            ),
            name=f"repro-serve-worker-{slot}",
        )
        process.start()
        self._workers[slot] = process

    def _watch(self) -> None:
        """Respawn crashed workers until the supervisor stops."""
        while not self._stopping.is_set():
            sentinels = [process.sentinel for process in self._workers]
            connection.wait([*sentinels, self._wake_r], timeout=1.0)
            if self._stopping.is_set():
                return
            for slot, process in enumerate(self._workers):
                if process.is_alive() or self._stopping.is_set():
                    continue
                logger.warning(
                    "worker %d (pid %s) exited with code %s; respawning",
                    slot,
                    process.pid,
                    process.exitcode,
                )
                self._spawn(slot)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain: SIGTERM the fleet, join, escalate past timeout."""
        self._stopping.set()
        if self._wake_w is not None:
            try:
                self._wake_w.send(b"x")
            except (OSError, ValueError):  # pragma: no cover
                pass
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
        for process in self._workers:
            if process is not None and process.is_alive():
                os.kill(process.pid, signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for process in self._workers:
            if process is None:
                continue
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - drain overrun
                logger.error("worker pid %s did not drain; killing", process.pid)
                process.kill()
                process.join(5.0)
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        for end in (self._wake_r, self._wake_w):
            if end is not None:
                end.close()
        self._wake_r = self._wake_w = None

    # -- observability --------------------------------------------------
    def worker_pids(self) -> list[int]:
        return [
            process.pid
            for process in self._workers
            if process is not None and process.pid is not None
        ]

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the fleet answers ``/health`` (or raise)."""
        client = ServiceClient("127.0.0.1", self.port, timeout=2.0)
        deadline = time.monotonic() + timeout
        try:
            while time.monotonic() < deadline:
                try:
                    if client.health().get("status") == "serving":
                        return
                except (OSError, http.client.HTTPException):
                    time.sleep(0.05)
            raise TimeoutError(
                f"prefork fleet not healthy within {timeout:.0f}s"
            )
        finally:
            client.close()

    def __enter__(self) -> "PreforkServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- CLI entry ------------------------------------------------------
    def run_forever(self, banner: bool = True) -> int:
        """Blocking supervisor loop: serve until SIGINT/SIGTERM, drain."""
        interrupted = threading.Event()

        def on_signal(signum, frame):  # noqa: ARG001
            interrupted.set()

        previous = {
            signum: signal.signal(signum, on_signal)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        self.start()
        try:
            self.wait_ready()
            if banner:
                print(
                    f"repro service: {self.engine.num_texts} texts / "
                    f"{self.engine.index.num_postings} postings on "
                    f"{self.config.host}:{self.port} across {self.procs} "
                    f"workers ({'SO_REUSEPORT' if self.config.reuse_port else 'shared accept socket'}); "
                    "Ctrl-C drains and exits"
                )
            interrupted.wait()
        finally:
            self.stop()
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return 0
