"""Scatter-gather router: one endpoint over a fleet of shard servers.

A corpus too big for one machine is split into contiguous text-id
shards (:func:`~repro.index.sharded.shard_ranges`), each served by its
own :class:`~repro.service.server.SearchService`.  The router owns the
:class:`~repro.service.shardmap.ShardMap` and presents the union as a
single service speaking the exact same protocol: a ``/search`` request
fans out to every shard concurrently over pooled keep-alive
connections (:class:`~repro.service.aioclient.AsyncServiceClient`),
the per-shard answers come back numbered in each shard's local id
space, and the router adds each shard's ``first_text`` offset and
concatenates in shard order — matches are sorted by local id within a
shard and shard ranges ascend, so the merged list is globally sorted
without re-sorting, byte-identical to what one in-process
:class:`~repro.index.sharded.ShardedSearcher` over the same partition
would serve.

Latency is the point: the fleet answers in ``max`` (slowest shard)
rather than ``sum`` (a serial loop over shards), so a fan-out of N
approaches N-fold throughput for shard-bound queries.  The failure
model follows from fan-out too — any shard can miss the deadline, and
a router that failed the whole query on one slow shard would multiply
the fleet's tail.  Instead each shard gets its own deadline carved
from the request budget, and when ``partial_results`` is on (default)
the router returns what the healthy shards found with ``"partial":
true`` and the list of shards that failed, letting the caller decide
whether a subset of the corpus is good enough.

Queries must be token ids (``"query"``): the router owns no tokenizer,
and shard engines' tokenizers are not guaranteed to agree, so
``"text"`` bodies are rejected with 400 rather than silently answered
against whichever vocabulary a shard happens to have.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.service.aioclient import AsyncServiceClient
from repro.service.protocol import (
    ProtocolError,
    RemoteError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    error_body,
    parse_flag,
    parse_theta,
    parse_timeout,
    parse_tokens,
    stats_from_wire,
    stats_to_wire,
)
from repro.service.server import HttpServiceBase
from repro.service.shardmap import ShardEntry, ShardMap
from repro.service.stats import RouterStats

logger = logging.getLogger(__name__)

SHARD_MAP_FILE = "shardmap.json"


@dataclass
class RouterConfig:
    """Tuning knobs of one router instance (see ``docs/SERVICE.md``)."""

    host: str = "127.0.0.1"
    port: int = 8080  #: 0 = ephemeral (the bound port lands in ``router.port``)
    timeout_ms: float = 30000.0  #: default end-to-end budget per request
    shard_timeout_ms: float | None = None  #: per-shard cap; None = whole budget
    connect_timeout_ms: float = 5000.0
    max_connections: int = 16  #: pooled keep-alive connections per shard
    partial_results: bool = True  #: answer from healthy shards on failure
    health_timeout_ms: float = 2000.0  #: budget of /health and /stats fan-outs
    max_body_bytes: int = 8 * 1024 * 1024


class RouterService(HttpServiceBase):
    """The scatter-gather front-end over one :class:`ShardMap`."""

    def __init__(self, shard_map: ShardMap, config: RouterConfig | None = None):
        super().__init__()
        self.shard_map = shard_map
        self.config = config or RouterConfig()
        self.stats = RouterStats()
        self._clients: dict[str, AsyncServiceClient] = {}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        for entry in self.shard_map:
            self._clients[entry.name] = AsyncServiceClient(
                entry.host,
                entry.port,
                timeout=self.config.timeout_ms / 1e3,
                connect_timeout=self.config.connect_timeout_ms / 1e3,
                max_connections=self.config.max_connections,
            )
        await self._start_listener()
        logger.info(
            "routing %d texts across %d shards on %s:%d",
            self.shard_map.num_texts,
            len(self.shard_map),
            self.config.host,
            self.port,
        )

    async def shutdown(self) -> None:
        await self._close_listener()
        for client in self._clients.values():
            await client.close()
        self._clients.clear()

    # -- scatter-gather core --------------------------------------------
    def _shard_deadline(self, budget: float) -> float:
        """Seconds each shard gets, carved from the request budget."""
        if self.config.shard_timeout_ms is not None:
            return min(budget, self.config.shard_timeout_ms / 1e3)
        return budget

    async def _fan_out(
        self, path: str, body: dict[str, Any], timeout: float
    ) -> tuple[list[tuple[ShardEntry, dict[str, Any]]], list[dict[str, Any]]]:
        """Ask every shard; return (successes in shard order, failures).

        Each sub-request runs under the per-shard deadline; a shard
        that times out, refuses, or errors lands in the failure list
        (name + error + status) instead of poisoning the gather.
        """
        loop = asyncio.get_running_loop()
        deadline = self._shard_deadline(timeout)
        shard_body = dict(body)
        shard_body["timeout_ms"] = deadline * 1e3

        async def ask(entry: ShardEntry):
            begin = loop.time()
            response = await self._clients[entry.name].request(
                "POST", path, shard_body, timeout=deadline
            )
            return response, loop.time() - begin

        outcomes = await asyncio.gather(
            *(ask(entry) for entry in self.shard_map), return_exceptions=True
        )
        successes: list[tuple[ShardEntry, dict[str, Any]]] = []
        failures: list[dict[str, Any]] = []
        latencies: list[float] = []
        for entry, outcome in zip(self.shard_map, outcomes):
            if isinstance(outcome, BaseException):
                if isinstance(outcome, (asyncio.TimeoutError, TimeoutError)):
                    reason, code = "shard deadline exceeded", 504
                elif isinstance(outcome, ServiceError):
                    reason, code = str(outcome), outcome.status
                elif isinstance(outcome, OSError):
                    reason, code = f"shard unreachable: {outcome}", 502
                else:
                    raise outcome
                failures.append(
                    {"shard": entry.name, "error": reason, "code": code}
                )
            else:
                response, seconds = outcome
                successes.append((entry, response))
                latencies.append(seconds)
        self.stats.record_fanout(latencies, len(failures))
        if not successes:
            codes = {failure["code"] for failure in failures}
            detail = "; ".join(
                f"{failure['shard']}: {failure['error']}" for failure in failures
            )
            if codes == {504}:
                raise RequestTimeoutError(f"all shards failed ({detail})")
            raise RemoteError(f"all shards failed ({detail})", 502)
        if failures and not self.config.partial_results:
            worst = failures[0]
            raise RemoteError(
                f"shard {worst['shard']} failed: {worst['error']}",
                worst["code"],
            )
        return successes, failures

    @staticmethod
    def _merge_results(
        shard_results: list[tuple[ShardEntry, dict[str, Any]]],
    ) -> dict[str, Any]:
        """Fuse per-shard ``result`` blocks into one global block.

        Text ids are re-numbered by each shard's ``first_text``;
        concatenation in shard order keeps matches and spans globally
        sorted (contiguous ascending ranges), so the output matches
        ``result_to_wire`` of a direct sharded search byte for byte.
        """
        matches: list[dict[str, Any]] = []
        spans: list[list[int]] = []
        k = beta = t = 0
        theta = 0.0
        for entry, result in shard_results:
            k, theta, beta, t = (
                result["k"],
                result["theta"],
                result["beta"],
                result["t"],
            )
            for match in result["matches"]:
                matches.append(
                    {
                        "text_id": match["text_id"] + entry.first_text,
                        "rectangles": match["rectangles"],
                    }
                )
            for span in result["spans"]:
                spans.append([span[0] + entry.first_text, span[1], span[2]])
        return {
            "k": k,
            "theta": theta,
            "beta": beta,
            "t": t,
            "num_texts": len(matches),
            "matches": matches,
            "spans": spans,
        }

    @staticmethod
    def _merge_stats(stats_blocks: list[Any], texts_matched: int) -> dict[str, Any]:
        """Fold per-shard ``server.stats`` dicts via ``QueryStats.merge``."""
        merged = None
        for block in stats_blocks:
            shard_stats = stats_from_wire(block)
            if merged is None:
                merged = shard_stats
            else:
                merged.merge(shard_stats)
        if merged is None:
            return {}
        merged.texts_matched = texts_matched
        return stats_to_wire(merged)

    # -- routing --------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        try:
            if path == "/health" and method == "GET":
                return 200, await self._health()
            if path == "/stats" and method == "GET":
                return 200, await self._stats()
            if path == "/search" and method == "POST":
                if self._draining:
                    raise ServiceClosedError("router is draining")
                return 200, await self._search(self._decode(body))
            if path == "/batch" and method == "POST":
                if self._draining:
                    raise ServiceClosedError("router is draining")
                return 200, await self._batch(self._decode(body))
            if path in ("/health", "/stats", "/search", "/batch"):
                raise ProtocolError(f"{method} not allowed on {path}", status=405)
            raise ProtocolError(f"unknown path {path!r}", status=404)
        except Exception as exc:  # noqa: BLE001 - mapped to a JSON error
            status, payload = error_body(exc)
            self.stats.record_error()
            if status >= 500 and not isinstance(exc, ServiceError):
                logger.exception("routed request failed")
            return status, payload

    def _validated(self, body: dict[str, Any]) -> tuple[dict[str, Any], float]:
        """Validate at the router so bad requests never fan out."""
        if "text" in body:
            raise ProtocolError(
                "the router has no tokenizer; send token ids in 'query'"
            )
        timeout = parse_timeout(body, self.config.timeout_ms)
        forward: dict[str, Any] = {}
        if "theta" in body:
            forward["theta"] = parse_theta(body, 0.8)
        if parse_flag(body, "verify"):
            forward["verify"] = True
        return forward, timeout

    async def _search(self, body: dict[str, Any]) -> dict[str, Any]:
        forward, timeout = self._validated(body)
        parse_tokens(body.get("query"))
        forward["query"] = body["query"]
        loop = asyncio.get_running_loop()
        begin = loop.time()
        successes, failures = await self._fan_out("/search", forward, timeout)
        merged = self._merge_results(
            [(entry, response["result"]) for entry, response in successes]
        )
        total = loop.time() - begin
        self.stats.record_completed(total, partial=bool(failures))
        payload: dict[str, Any] = {
            "ok": True,
            "result": merged,
            "server": {
                "shards_asked": len(self.shard_map),
                "shards_answered": len(successes),
                "total_ms": 1e3 * total,
                "stats": self._merge_stats(
                    [
                        response["server"].get("stats")
                        for _, response in successes
                    ],
                    merged["num_texts"],
                ),
            },
        }
        if failures:
            payload["partial"] = True
            payload["failed_shards"] = failures
        return payload

    async def _batch(self, body: dict[str, Any]) -> dict[str, Any]:
        forward, timeout = self._validated(body)
        raw = body.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'queries' must be a non-empty list")
        for position, entry in enumerate(raw):
            parse_tokens(entry, field=f"queries[{position}]")
        forward["queries"] = raw
        loop = asyncio.get_running_loop()
        begin = loop.time()
        successes, failures = await self._fan_out("/batch", forward, timeout)
        merged_results = []
        merged_stats = []
        for position in range(len(raw)):
            per_shard = [
                (entry, response["results"][position])
                for entry, response in successes
            ]
            merged = self._merge_results(per_shard)
            merged_results.append(merged)
            merged_stats.append(
                self._merge_stats(
                    [
                        response["server"].get("stats", [None] * len(raw))[position]
                        for _, response in successes
                    ],
                    merged["num_texts"],
                )
            )
        total = loop.time() - begin
        self.stats.record_completed(total, partial=bool(failures))
        payload: dict[str, Any] = {
            "ok": True,
            "results": merged_results,
            "server": {
                "shards_asked": len(self.shard_map),
                "shards_answered": len(successes),
                "total_ms": 1e3 * total,
                "stats": merged_stats,
            },
        }
        if failures:
            payload["partial"] = True
            payload["failed_shards"] = failures
        return payload

    async def _probe_shards(self, ask) -> list[tuple[ShardEntry, Any]]:
        """Best-effort concurrent GET against every shard (health/stats)."""
        deadline = self.config.health_timeout_ms / 1e3

        async def one(entry: ShardEntry):
            return await ask(self._clients[entry.name], deadline)

        outcomes = await asyncio.gather(
            *(one(entry) for entry in self.shard_map), return_exceptions=True
        )
        return list(zip(self.shard_map, outcomes))

    async def _health(self) -> dict[str, Any]:
        probed = await self._probe_shards(
            lambda client, deadline: client.health(timeout=deadline)
        )
        shards = []
        healthy = 0
        for entry, outcome in probed:
            ok = not isinstance(outcome, BaseException)
            healthy += ok
            shards.append(
                {
                    "name": entry.name,
                    "host": entry.host,
                    "port": entry.port,
                    "first_text": entry.first_text,
                    "count": entry.count,
                    "ok": ok,
                    "detail": (
                        {
                            "status": outcome.get("status"),
                            "pid": outcome.get("pid"),
                            "texts": outcome.get("texts"),
                        }
                        if ok
                        else str(outcome)
                    ),
                }
            )
        return {
            "ok": True,
            "role": "router",
            "status": "draining" if self._draining else "serving",
            "texts": self.shard_map.num_texts,
            "shards_healthy": healthy,
            "shards_total": len(self.shard_map),
            "shards": shards,
        }

    async def _stats(self) -> dict[str, Any]:
        probed = await self._probe_shards(
            lambda client, deadline: client.stats(timeout=deadline)
        )
        per_shard: dict[str, Any] = {}
        aggregate = {
            "requests": 0,
            "completed": 0,
            "errors": 0,
            "shed": 0,
            "timeouts": 0,
            "lists_loaded": 0,
            "point_reads": 0,
        }
        for entry, outcome in probed:
            if isinstance(outcome, BaseException):
                per_shard[entry.name] = {"ok": False, "error": str(outcome)}
                continue
            service = outcome.get("service", {})
            per_shard[entry.name] = {"ok": True, "service": service}
            for key in aggregate:
                aggregate[key] += int(service.get(key, 0))
        pooled = {
            name: client.pooled_connections
            for name, client in self._clients.items()
        }
        return {
            "ok": True,
            "router": self.stats.snapshot(),
            "aggregate": aggregate,
            "shards": per_shard,
            "pooled_connections": pooled,
            "config": {
                "timeout_ms": self.config.timeout_ms,
                "shard_timeout_ms": self.config.shard_timeout_ms,
                "max_connections": self.config.max_connections,
                "partial_results": self.config.partial_results,
            },
        }


# ----------------------------------------------------------------------
# Fleet building and serving
# ----------------------------------------------------------------------
def build_shard_fleet(
    engine,
    root: str | Path,
    *,
    num_shards: int = 4,
    host: str = "127.0.0.1",
    base_port: int = 8101,
) -> ShardMap:
    """Split a built engine into ``num_shards`` saved shard engines.

    Writes ``root/shard<i>/`` (one full saved engine each, loadable by
    ``repro-cli serve``) plus ``root/shardmap.json``.  The partition is
    :func:`~repro.index.sharded.shard_ranges` — the same ceil-division
    ``ShardedIndex.build`` uses — so a router over this fleet and an
    in-process ``ShardedSearcher`` over the same corpus agree exactly.
    """
    import numpy as np

    from repro.corpus.corpus import InMemoryCorpus, infer_vocab_size
    from repro.engine import NearDupEngine
    from repro.index.builder import build_memory_index
    from repro.index.sharded import shard_ranges

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    family = engine.index.family
    t = engine.index.t
    vocab_size = infer_vocab_size(engine.corpus)
    entries = []
    for shard_id, (start, count) in enumerate(
        shard_ranges(len(engine.corpus), num_shards)
    ):
        local = InMemoryCorpus(
            [np.asarray(engine.corpus[start + offset]) for offset in range(count)]
        )
        index = build_memory_index(
            local, family, t, vocab_size=vocab_size
        )
        shard_engine = NearDupEngine(
            local, index, tokenizer=engine.tokenizer, codec=engine.codec
        )
        shard_engine.save(root / f"shard{shard_id}")
        entries.append(
            ShardEntry(
                name=f"shard{shard_id}",
                host=host,
                port=base_port + shard_id,
                first_text=start,
                count=count,
            )
        )
    shard_map = ShardMap(entries)
    shard_map.save(root / SHARD_MAP_FILE)
    return shard_map


def discover_shard_fleet(
    root: str | Path,
    *,
    host: str = "127.0.0.1",
    base_port: int = 8101,
) -> ShardMap:
    """A :class:`ShardMap` for a ``root/shard<i>/`` layout.

    Prefers an existing ``root/shardmap.json``; otherwise enumerates
    the shard directories, reads each saved corpus's length, and
    assigns ``base_port + i`` — then writes the map for the router.
    """
    from repro.corpus.store import DiskCorpus
    from repro.exceptions import InvalidParameterError

    root = Path(root)
    map_path = root / SHARD_MAP_FILE
    if map_path.exists():
        return ShardMap.load(map_path)
    entries = []
    first_text = 0
    shard_id = 0
    while (root / f"shard{shard_id}").is_dir():
        shard_dir = root / f"shard{shard_id}"
        count = len(DiskCorpus(shard_dir / "corpus"))
        entries.append(
            ShardEntry(
                name=f"shard{shard_id}",
                host=host,
                port=base_port + shard_id,
                first_text=first_text,
                count=count,
            )
        )
        first_text += count
        shard_id += 1
    if not entries:
        raise InvalidParameterError(f"no shard0/ directory under {root}")
    shard_map = ShardMap(entries)
    shard_map.save(map_path)
    return shard_map


def serve_shards(
    root: str | Path,
    *,
    host: str = "127.0.0.1",
    base_port: int = 8101,
    workers: int = 2,
    procs: int = 1,
    banner: bool = True,
) -> int:
    """Blocking entry point of ``repro-cli serve-shards``.

    Launches one shard server child process per ``root/shard<i>/``
    directory (each child is the ordinary ``serve`` path, so
    ``procs > 1`` gives every shard its own prefork worker fleet),
    writes ``shardmap.json``, and supervises until interrupted —
    Ctrl-C is forwarded so each child drains gracefully.
    """
    import multiprocessing

    from repro.service.server import ServiceConfig, serve

    shard_map = discover_shard_fleet(root, host=host, base_port=base_port)
    root = Path(root)
    context = multiprocessing.get_context("fork")
    children: list = []
    for entry in shard_map:
        config = ServiceConfig(
            host=entry.host,
            port=entry.port,
            workers=workers,
            procs=procs,
        )
        child = context.Process(
            target=serve,
            args=(str(root / entry.name),),
            kwargs={"config": config, "banner": False},
            name=f"repro-{entry.name}",
        )
        child.start()
        children.append(child)
    if banner:
        ports = ", ".join(str(entry.port) for entry in shard_map)
        print(
            f"repro shard fleet: {len(shard_map)} shards "
            f"({shard_map.num_texts} texts) on {host}:[{ports}]; "
            f"map at {root / SHARD_MAP_FILE}; Ctrl-C drains and exits"
        )
    try:
        for child in children:
            child.join()
    except KeyboardInterrupt:
        for child in children:
            if child.pid is not None and child.is_alive():
                try:
                    import os

                    os.kill(child.pid, signal.SIGINT)
                except ProcessLookupError:
                    pass
        for child in children:
            child.join()
    return 0


async def _route_until_cancelled(router: RouterService, banner: bool) -> None:
    await router.start()
    if banner:
        print(
            f"repro router: {len(router.shard_map)} shards / "
            f"{router.shard_map.num_texts} texts on "
            f"{router.config.host}:{router.port}; Ctrl-C drains and exits"
        )
    try:
        await router.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await router.shutdown()


def route(
    shard_map_path: str | Path,
    *,
    config: RouterConfig | None = None,
    banner: bool = True,
) -> int:
    """Blocking entry point of ``repro-cli route``.

    Loads ``shardmap.json`` (or a directory containing one) and serves
    the scatter-gather front-end until interrupted.
    """
    path = Path(shard_map_path)
    if path.is_dir():
        path = path / SHARD_MAP_FILE
    shard_map = ShardMap.load(path)
    router = RouterService(shard_map, config)
    try:
        asyncio.run(_route_until_cancelled(router, banner))
    except KeyboardInterrupt:
        pass
    return 0


def main() -> None:  # pragma: no cover - exercised via the CLI
    sys.exit(route(sys.argv[1]))
