"""Scatter-gather router: one endpoint over a fleet of shard servers.

A corpus too big for one machine is split into contiguous text-id
shards (:func:`~repro.index.sharded.shard_ranges`), each served by its
own :class:`~repro.service.server.SearchService`.  The router owns the
:class:`~repro.service.shardmap.ShardMap` and presents the union as a
single service speaking the exact same protocol: a ``/search`` request
fans out to every shard concurrently over pooled keep-alive
connections (:class:`~repro.service.aioclient.AsyncServiceClient`),
the per-shard answers come back numbered in each shard's local id
space, and the router adds each shard's ``first_text`` offset and
concatenates in shard order — matches are sorted by local id within a
shard and shard ranges ascend, so the merged list is globally sorted
without re-sorting, byte-identical to what one in-process
:class:`~repro.index.sharded.ShardedSearcher` over the same partition
would serve.

Latency is the point: the fleet answers in ``max`` (slowest shard)
rather than ``sum`` (a serial loop over shards), so a fan-out of N
approaches N-fold throughput for shard-bound queries.  But ``max``
also means one slow or dead copy stalls *every* query — so each shard
may list several **replicas** (format-2 shard maps), identical copies
the router balances across:

* every replica gets health tracking — an EWMA of observed latency and
  a consecutive-failure circuit breaker with half-open probing
  (:mod:`repro.service.replicas`);
* each sub-request picks a replica by policy (``pick-first``,
  ``round-robin``, or ``power-of-two`` on in-flight count x EWMA);
* a failed pick **fails over** to the next untried replica inside the
  same shard deadline;
* with hedging enabled, a sub-request still unanswered after the
  shard's hedge delay (fixed, or auto-derived from its observed p95)
  is *also* sent to a second replica, the first answer wins, and the
  loser is cancelled.  Hedging applies only to idempotent ``/search``
  and ``/batch`` fan-outs; non-idempotent ingest stays pinned to the
  shard's primary (writer) replica.

Replicas of one shard serve identical data, so none of this changes
the bytes of a routed ``result`` — which replica answered, whether a
hedge won, and which policy chose are all invisible to the caller.

The failure model follows from fan-out too — any shard can miss the
deadline, and a router that failed the whole query on one slow shard
would multiply the fleet's tail.  Instead each shard gets its own
deadline carved from the request budget, and when ``partial_results``
is on (default) the router returns what the healthy shards found with
``"partial": true`` and the list of shards that failed, letting the
caller decide whether a subset of the corpus is good enough.

Queries must be token ids (``"query"``): the router owns no tokenizer,
and shard engines' tokenizers are not guaranteed to agree, so
``"text"`` bodies are rejected with 400 rather than silently answered
against whichever vocabulary a shard happens to have.
"""

from __future__ import annotations

import asyncio
import logging
import random
import signal
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.service.aioclient import AsyncServiceClient
from repro.service.protocol import (
    ProtocolError,
    RemoteError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    error_body,
    parse_flag,
    parse_hedge_after_ms,
    parse_policy,
    parse_theta,
    parse_timeout,
    parse_tokens,
    stats_from_wire,
    stats_to_wire,
)
from repro.service.replicas import ReplicaSet, ReplicaState
from repro.service.server import HttpServiceBase
from repro.service.shardmap import (
    Replica,
    ShardEntry,
    ShardMap,
    with_added_replicas,
)
from repro.service.stats import RouterStats

logger = logging.getLogger(__name__)

SHARD_MAP_FILE = "shardmap.json"

#: Fan-out paths safe to hedge and fail over (idempotent reads).
_IDEMPOTENT_PATHS = frozenset({"/search", "/batch"})


@dataclass
class RouterConfig:
    """Tuning knobs of one router instance (see ``docs/SERVICE.md``)."""

    host: str = "127.0.0.1"
    port: int = 8080  #: 0 = ephemeral (the bound port lands in ``router.port``)
    timeout_ms: float = 30000.0  #: default end-to-end budget per request
    shard_timeout_ms: float | None = None  #: per-shard cap; None = whole budget
    connect_timeout_ms: float = 5000.0
    max_connections: int = 16  #: pooled keep-alive connections per replica
    partial_results: bool = True  #: answer from healthy shards on failure
    health_timeout_ms: float = 2000.0  #: budget of /health and /stats fan-outs
    max_body_bytes: int = 8 * 1024 * 1024
    policy: str = "pick-first"  #: replica selection (see replicas.POLICIES)
    hedge_after_ms: float | None = None  #: None off; 0 auto (p95); >0 fixed
    breaker_failures: int = 3  #: consecutive failures that open a breaker
    breaker_cooldown_ms: float = 2000.0  #: open time before half-open probing
    ewma_alpha: float = 0.2  #: latency EWMA smoothing per replica
    policy_seed: int | None = None  #: seed the power-of-two rng (tests/bench)


class RouterService(HttpServiceBase):
    """The scatter-gather front-end over one :class:`ShardMap`."""

    def __init__(self, shard_map: ShardMap, config: RouterConfig | None = None):
        super().__init__()
        self.shard_map = shard_map
        self.config = config or RouterConfig()
        parse_policy(self.config.policy)
        parse_hedge_after_ms(self.config.hedge_after_ms)
        self.stats = RouterStats()
        self._replicas: dict[str, ReplicaSet] = {}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        config = self.config
        for entry in self.shard_map:
            states = []
            for replica in entry.replicas:
                state = ReplicaState(
                    replica,
                    failure_threshold=config.breaker_failures,
                    cooldown_s=config.breaker_cooldown_ms / 1e3,
                    ewma_alpha=config.ewma_alpha,
                )
                state.client = AsyncServiceClient(
                    replica.host,
                    replica.port,
                    timeout=config.timeout_ms / 1e3,
                    connect_timeout=config.connect_timeout_ms / 1e3,
                    max_connections=config.max_connections,
                )
                states.append(state)
            rng = (
                random.Random(config.policy_seed)
                if config.policy_seed is not None
                else random.Random()
            )
            self._replicas[entry.name] = ReplicaSet(
                states, policy=config.policy, rng=rng
            )
        await self._start_listener()
        logger.info(
            "routing %d texts across %d shards (%d replicas, policy=%s, "
            "hedge=%s) on %s:%d",
            self.shard_map.num_texts,
            len(self.shard_map),
            self.shard_map.num_replicas,
            config.policy,
            config.hedge_after_ms,
            config.host,
            self.port,
        )

    async def shutdown(self) -> None:
        await self._close_listener()
        for replica_set in self._replicas.values():
            for state in replica_set.replicas:
                await state.client.close()
        self._replicas.clear()

    # -- replica orchestration ------------------------------------------
    @staticmethod
    def _retryable(exc: BaseException) -> bool:
        """Whether another replica might answer where this one failed.

        Transport errors, deadlines, sheds, and 5xx are replica-local;
        4xx protocol errors are request-shaped and identical everywhere.
        """
        if isinstance(exc, (asyncio.TimeoutError, TimeoutError, OSError)):
            return True
        if isinstance(exc, ServiceError):
            return exc.status in (429, 500, 502, 503, 504)
        return False

    async def _ask_replica(
        self,
        replica_set: ReplicaSet,
        state: ReplicaState,
        path: str,
        body: dict[str, Any],
        deadline: float,
    ) -> tuple[dict[str, Any], float]:
        """One exchange with one replica, with health bookkeeping."""
        loop = asyncio.get_running_loop()
        state.on_pick()
        begin = loop.time()
        try:
            response = await state.client.request(
                "POST", path, body, timeout=deadline
            )
        except asyncio.CancelledError:
            state.on_cancelled(loop.time() - begin)
            raise
        except Exception as exc:
            if state.on_failure(breaker=self._retryable(exc)):
                self.stats.record_breaker_trip()
            raise
        seconds = loop.time() - begin
        state.on_success(seconds)
        replica_set.record_latency(seconds)
        return response, seconds

    async def _ask_shard(
        self,
        entry: ShardEntry,
        path: str,
        body: dict[str, Any],
        deadline: float,
    ) -> tuple[dict[str, Any], float]:
        """One shard's answer, via whichever replica delivers it first.

        Picks a replica by policy; on a retryable failure fails over to
        the next untried replica; with hedging enabled, fires the same
        request at a second replica once the hedge delay passes and
        races them, cancelling the loser.  The caller bounds the whole
        dance with the shard deadline (``asyncio.wait_for``).
        """
        replica_set = self._replicas[entry.name]
        first = replica_set.pick()
        assert first is not None  # non-empty set, nothing excluded
        tasks: dict[asyncio.Task, ReplicaState] = {
            asyncio.ensure_future(
                self._ask_replica(replica_set, first, path, body, deadline)
            ): first
        }
        tried = [first]
        hedge_targets: set[int] = set()
        hedgeable = (
            self.config.hedge_after_ms is not None
            and path in _IDEMPOTENT_PATHS
            and len(replica_set) > 1
        )
        hedged = False
        errors: list[BaseException] = []
        try:
            while True:
                timeout = None
                if hedgeable and not hedged and len(tried) < len(replica_set):
                    timeout = replica_set.hedge_delay(self.config.hedge_after_ms)
                done, _pending = await asyncio.wait(
                    tasks.keys(),
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # Hedge delay elapsed with the pick still in flight.
                    hedged = True
                    backup = replica_set.pick(exclude=tried)
                    if backup is None:
                        continue
                    tried.append(backup)
                    backup.hedges += 1
                    hedge_targets.add(id(backup))
                    self.stats.record_hedge_fired()
                    tasks[
                        asyncio.ensure_future(
                            self._ask_replica(
                                replica_set, backup, path, body, deadline
                            )
                        )
                    ] = backup
                    continue
                for task in done:
                    state = tasks.pop(task)
                    exc = task.exception()
                    if exc is None:
                        if id(state) in hedge_targets:
                            state.hedge_wins += 1
                            self.stats.record_hedge_win()
                        return task.result()
                    errors.append(exc)
                    if not self._retryable(exc):
                        raise exc
                if tasks:
                    continue  # a raced attempt is still in flight
                # Every attempt so far failed: fail over if a replica
                # remains (the breaker may exclude known-bad ones).
                nxt = replica_set.pick(exclude=tried)
                if nxt is None or path not in _IDEMPOTENT_PATHS:
                    raise errors[0]
                tried.append(nxt)
                self.stats.record_failover()
                tasks[
                    asyncio.ensure_future(
                        self._ask_replica(replica_set, nxt, path, body, deadline)
                    )
                ] = nxt
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks.keys(), return_exceptions=True)

    # -- scatter-gather core --------------------------------------------
    def _shard_deadline(self, budget: float) -> float:
        """Seconds each shard gets, carved from the request budget."""
        if self.config.shard_timeout_ms is not None:
            return min(budget, self.config.shard_timeout_ms / 1e3)
        return budget

    async def _fan_out(
        self, path: str, body: dict[str, Any], timeout: float
    ) -> tuple[list[tuple[ShardEntry, dict[str, Any]]], list[dict[str, Any]]]:
        """Ask every shard; return (successes in shard order, failures).

        Each sub-request runs under the per-shard deadline; a shard
        whose replicas all time out, refuse, or error lands in the
        failure list (name + error + status) instead of poisoning the
        gather.
        """
        loop = asyncio.get_running_loop()
        deadline = self._shard_deadline(timeout)
        shard_body = dict(body)
        shard_body["timeout_ms"] = deadline * 1e3

        async def ask(entry: ShardEntry):
            begin = loop.time()
            response, _ = await asyncio.wait_for(
                self._ask_shard(entry, path, shard_body, deadline), deadline
            )
            return response, loop.time() - begin

        outcomes = await asyncio.gather(
            *(ask(entry) for entry in self.shard_map), return_exceptions=True
        )
        successes: list[tuple[ShardEntry, dict[str, Any]]] = []
        failures: list[dict[str, Any]] = []
        latencies: list[float] = []
        for entry, outcome in zip(self.shard_map, outcomes):
            if isinstance(outcome, BaseException):
                if isinstance(outcome, (asyncio.TimeoutError, TimeoutError)):
                    reason, code = "shard deadline exceeded", 504
                elif isinstance(outcome, ServiceError):
                    reason, code = str(outcome), outcome.status
                elif isinstance(outcome, OSError):
                    reason, code = f"shard unreachable: {outcome}", 502
                else:
                    raise outcome
                failures.append(
                    {"shard": entry.name, "error": reason, "code": code}
                )
            else:
                response, seconds = outcome
                successes.append((entry, response))
                latencies.append(seconds)
        self.stats.record_fanout(latencies, len(failures))
        if not successes:
            codes = {failure["code"] for failure in failures}
            detail = "; ".join(
                f"{failure['shard']}: {failure['error']}" for failure in failures
            )
            if codes == {504}:
                raise RequestTimeoutError(f"all shards failed ({detail})")
            raise RemoteError(f"all shards failed ({detail})", 502)
        if failures and not self.config.partial_results:
            worst = failures[0]
            raise RemoteError(
                f"shard {worst['shard']} failed: {worst['error']}",
                worst["code"],
            )
        return successes, failures

    @staticmethod
    def _merge_results(
        shard_results: list[tuple[ShardEntry, dict[str, Any]]],
    ) -> dict[str, Any]:
        """Fuse per-shard ``result`` blocks into one global block.

        Text ids are re-numbered by each shard's ``first_text``;
        concatenation in shard order keeps matches and spans globally
        sorted (contiguous ascending ranges), so the output matches
        ``result_to_wire`` of a direct sharded search byte for byte.
        """
        matches: list[dict[str, Any]] = []
        spans: list[list[int]] = []
        k = beta = t = 0
        theta = 0.0
        for entry, result in shard_results:
            k, theta, beta, t = (
                result["k"],
                result["theta"],
                result["beta"],
                result["t"],
            )
            for match in result["matches"]:
                matches.append(
                    {
                        "text_id": match["text_id"] + entry.first_text,
                        "rectangles": match["rectangles"],
                    }
                )
            for span in result["spans"]:
                spans.append([span[0] + entry.first_text, span[1], span[2]])
        return {
            "k": k,
            "theta": theta,
            "beta": beta,
            "t": t,
            "num_texts": len(matches),
            "matches": matches,
            "spans": spans,
        }

    @staticmethod
    def _merge_stats(stats_blocks: list[Any], texts_matched: int) -> dict[str, Any]:
        """Fold per-shard ``server.stats`` dicts via ``QueryStats.merge``."""
        merged = None
        for block in stats_blocks:
            shard_stats = stats_from_wire(block)
            if merged is None:
                merged = shard_stats
            else:
                merged.merge(shard_stats)
        if merged is None:
            return {}
        merged.texts_matched = texts_matched
        return stats_to_wire(merged)

    # -- routing --------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        try:
            if path == "/health" and method == "GET":
                return 200, await self._health()
            if path == "/stats" and method == "GET":
                return 200, await self._stats()
            if path == "/search" and method == "POST":
                if self._draining:
                    raise ServiceClosedError("router is draining")
                return 200, await self._search(self._decode(body))
            if path == "/batch" and method == "POST":
                if self._draining:
                    raise ServiceClosedError("router is draining")
                return 200, await self._batch(self._decode(body))
            if path in ("/health", "/stats", "/search", "/batch"):
                raise ProtocolError(f"{method} not allowed on {path}", status=405)
            raise ProtocolError(f"unknown path {path!r}", status=404)
        except Exception as exc:  # noqa: BLE001 - mapped to a JSON error
            status, payload = error_body(exc)
            self.stats.record_error()
            if status >= 500 and not isinstance(exc, ServiceError):
                logger.exception("routed request failed")
            return status, payload

    def _validated(self, body: dict[str, Any]) -> tuple[dict[str, Any], float]:
        """Validate at the router so bad requests never fan out."""
        if "text" in body:
            raise ProtocolError(
                "the router has no tokenizer; send token ids in 'query'"
            )
        timeout = parse_timeout(body, self.config.timeout_ms)
        forward: dict[str, Any] = {}
        if "theta" in body:
            forward["theta"] = parse_theta(body, 0.8)
        if parse_flag(body, "verify"):
            forward["verify"] = True
        return forward, timeout

    async def _search(self, body: dict[str, Any]) -> dict[str, Any]:
        forward, timeout = self._validated(body)
        parse_tokens(body.get("query"))
        forward["query"] = body["query"]
        loop = asyncio.get_running_loop()
        begin = loop.time()
        successes, failures = await self._fan_out("/search", forward, timeout)
        merged = self._merge_results(
            [(entry, response["result"]) for entry, response in successes]
        )
        total = loop.time() - begin
        self.stats.record_completed(total, partial=bool(failures))
        payload: dict[str, Any] = {
            "ok": True,
            "result": merged,
            "server": {
                "shards_asked": len(self.shard_map),
                "shards_answered": len(successes),
                "total_ms": 1e3 * total,
                "stats": self._merge_stats(
                    [
                        response["server"].get("stats")
                        for _, response in successes
                    ],
                    merged["num_texts"],
                ),
            },
        }
        if failures:
            payload["partial"] = True
            payload["failed_shards"] = failures
        return payload

    async def _batch(self, body: dict[str, Any]) -> dict[str, Any]:
        forward, timeout = self._validated(body)
        raw = body.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'queries' must be a non-empty list")
        for position, entry in enumerate(raw):
            parse_tokens(entry, field=f"queries[{position}]")
        forward["queries"] = raw
        loop = asyncio.get_running_loop()
        begin = loop.time()
        successes, failures = await self._fan_out("/batch", forward, timeout)
        merged_results = []
        merged_stats = []
        for position in range(len(raw)):
            per_shard = [
                (entry, response["results"][position])
                for entry, response in successes
            ]
            merged = self._merge_results(per_shard)
            merged_results.append(merged)
            merged_stats.append(
                self._merge_stats(
                    [
                        response["server"].get("stats", [None] * len(raw))[position]
                        for _, response in successes
                    ],
                    merged["num_texts"],
                )
            )
        total = loop.time() - begin
        self.stats.record_completed(total, partial=bool(failures))
        payload: dict[str, Any] = {
            "ok": True,
            "results": merged_results,
            "server": {
                "shards_asked": len(self.shard_map),
                "shards_answered": len(successes),
                "total_ms": 1e3 * total,
                "stats": merged_stats,
            },
        }
        if failures:
            payload["partial"] = True
            payload["failed_shards"] = failures
        return payload

    async def _probe_replicas(
        self, ask
    ) -> list[tuple[ShardEntry, list[tuple[ReplicaState, Any]]]]:
        """Best-effort concurrent GET against every replica of every shard."""
        deadline = self.config.health_timeout_ms / 1e3
        flat: list[tuple[ShardEntry, ReplicaState]] = [
            (entry, state)
            for entry in self.shard_map
            for state in self._replicas[entry.name].replicas
        ]
        outcomes = await asyncio.gather(
            *(ask(state.client, deadline) for _, state in flat),
            return_exceptions=True,
        )
        grouped: dict[str, list[tuple[ReplicaState, Any]]] = {}
        for (entry, state), outcome in zip(flat, outcomes):
            grouped.setdefault(entry.name, []).append((state, outcome))
        return [(entry, grouped[entry.name]) for entry in self.shard_map]

    async def _health(self) -> dict[str, Any]:
        probed = await self._probe_replicas(
            lambda client, deadline: client.health(timeout=deadline)
        )
        shards = []
        healthy = 0
        for entry, replica_outcomes in probed:
            replicas = []
            first_ok_detail = None
            for state, outcome in replica_outcomes:
                ok = not isinstance(outcome, BaseException)
                detail = (
                    {
                        "status": outcome.get("status"),
                        "pid": outcome.get("pid"),
                        "texts": outcome.get("texts"),
                    }
                    if ok
                    else str(outcome)
                )
                if ok and first_ok_detail is None:
                    first_ok_detail = detail
                replicas.append(
                    {"endpoint": state.endpoint, "ok": ok, "detail": detail}
                )
            shard_ok = first_ok_detail is not None
            healthy += shard_ok
            shards.append(
                {
                    "name": entry.name,
                    "host": entry.host,
                    "port": entry.port,
                    "first_text": entry.first_text,
                    "count": entry.count,
                    "ok": shard_ok,
                    "replicas_healthy": sum(r["ok"] for r in replicas),
                    "replicas_total": len(replicas),
                    "detail": (
                        first_ok_detail
                        if shard_ok
                        else replicas[0]["detail"]
                    ),
                    "replicas": replicas,
                }
            )
        return {
            "ok": True,
            "role": "router",
            "status": "draining" if self._draining else "serving",
            "texts": self.shard_map.num_texts,
            "shards_healthy": healthy,
            "shards_total": len(self.shard_map),
            "replicas_total": self.shard_map.num_replicas,
            "shards": shards,
        }

    async def _stats(self) -> dict[str, Any]:
        probed = await self._probe_replicas(
            lambda client, deadline: client.stats(timeout=deadline)
        )
        per_shard: dict[str, Any] = {}
        aggregate = {
            "requests": 0,
            "completed": 0,
            "errors": 0,
            "shed": 0,
            "timeouts": 0,
            "lists_loaded": 0,
            "point_reads": 0,
        }
        for entry, replica_outcomes in probed:
            replicas: dict[str, Any] = {}
            shard_service = None
            for state, outcome in replica_outcomes:
                if isinstance(outcome, BaseException):
                    replicas[state.endpoint] = {
                        "ok": False,
                        "error": str(outcome),
                    }
                    continue
                service = outcome.get("service", {})
                replicas[state.endpoint] = {"ok": True, "service": service}
                if shard_service is None:
                    shard_service = service
                for key in aggregate:
                    aggregate[key] += int(service.get(key, 0))
            block: dict[str, Any] = {
                "ok": shard_service is not None,
                "replicas": replicas,
            }
            if shard_service is not None:
                block["service"] = shard_service
            else:
                block["error"] = next(iter(replicas.values())).get(
                    "error", "no replica answered"
                )
            per_shard[entry.name] = block
        routing = {
            name: replica_set.snapshot()
            for name, replica_set in self._replicas.items()
        }
        pooled = {
            name: {
                state.endpoint: state.client.pooled_connections
                for state in replica_set.replicas
            }
            for name, replica_set in self._replicas.items()
        }
        return {
            "ok": True,
            "router": self.stats.snapshot(),
            "aggregate": aggregate,
            "shards": per_shard,
            "routing": routing,
            "pooled_connections": pooled,
            "config": {
                "timeout_ms": self.config.timeout_ms,
                "shard_timeout_ms": self.config.shard_timeout_ms,
                "max_connections": self.config.max_connections,
                "partial_results": self.config.partial_results,
                "policy": self.config.policy,
                "hedge_after_ms": self.config.hedge_after_ms,
                "breaker_failures": self.config.breaker_failures,
                "breaker_cooldown_ms": self.config.breaker_cooldown_ms,
            },
        }


# ----------------------------------------------------------------------
# Fleet building and serving
# ----------------------------------------------------------------------
def build_shard_fleet(
    engine,
    root: str | Path,
    *,
    num_shards: int = 4,
    host: str = "127.0.0.1",
    base_port: int = 8101,
    replicas_per_shard: int = 1,
) -> ShardMap:
    """Split a built engine into ``num_shards`` saved shard engines.

    Writes ``root/shard<i>/`` (one full saved engine each, loadable by
    ``repro-cli serve``) plus ``root/shardmap.json``.  The partition is
    :func:`~repro.index.sharded.shard_ranges` — the same ceil-division
    ``ShardedIndex.build`` uses — so a router over this fleet and an
    in-process ``ShardedSearcher`` over the same corpus agree exactly.

    ``replicas_per_shard > 1`` emits a format-2 map listing that many
    endpoints per shard (replica ``r`` of shard ``i`` on ``base_port +
    i * replicas_per_shard + r``); every replica serves the *same*
    ``shard<i>/`` directory, so no extra index copies are written.
    """
    import numpy as np

    from repro.corpus.corpus import InMemoryCorpus, infer_vocab_size
    from repro.engine import NearDupEngine
    from repro.exceptions import InvalidParameterError
    from repro.index.builder import build_memory_index
    from repro.index.sharded import shard_ranges

    if replicas_per_shard <= 0:
        raise InvalidParameterError(
            f"replicas_per_shard must be positive, got {replicas_per_shard}"
        )
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    family = engine.index.family
    t = engine.index.t
    vocab_size = infer_vocab_size(engine.corpus)
    entries = []
    for shard_id, (start, count) in enumerate(
        shard_ranges(len(engine.corpus), num_shards)
    ):
        local = InMemoryCorpus(
            [np.asarray(engine.corpus[start + offset]) for offset in range(count)]
        )
        index = build_memory_index(
            local, family, t, vocab_size=vocab_size
        )
        shard_engine = NearDupEngine(
            local, index, tokenizer=engine.tokenizer, codec=engine.codec
        )
        shard_engine.save(root / f"shard{shard_id}")
        entries.append(
            ShardEntry(
                name=f"shard{shard_id}",
                first_text=start,
                count=count,
                replicas=tuple(
                    Replica(host, base_port + shard_id * replicas_per_shard + r)
                    for r in range(replicas_per_shard)
                ),
            )
        )
    shard_map = ShardMap(entries)
    shard_map.save(root / SHARD_MAP_FILE)
    return shard_map


def discover_shard_fleet(
    root: str | Path,
    *,
    host: str = "127.0.0.1",
    base_port: int = 8101,
    replicas_per_shard: int = 1,
) -> ShardMap:
    """A :class:`ShardMap` for a ``root/shard<i>/`` layout.

    Prefers an existing ``root/shardmap.json``; otherwise enumerates
    the shard directories, reads each saved corpus's length, and
    assigns deterministic ports — then writes the map for the router.
    When ``replicas_per_shard`` asks for more replicas than the map
    has, the map is grown in place (existing endpoints keep their
    ports) and re-saved.
    """
    from repro.corpus.store import DiskCorpus
    from repro.exceptions import InvalidParameterError

    root = Path(root)
    map_path = root / SHARD_MAP_FILE
    if map_path.exists():
        shard_map = ShardMap.load(map_path)
        if any(
            len(entry.replicas) < replicas_per_shard for entry in shard_map
        ):
            shard_map = with_added_replicas(
                shard_map, replicas_per_shard, base_port=base_port
            )
            shard_map.save(map_path)
        return shard_map
    entries = []
    first_text = 0
    shard_id = 0
    while (root / f"shard{shard_id}").is_dir():
        shard_dir = root / f"shard{shard_id}"
        count = len(DiskCorpus(shard_dir / "corpus"))
        entries.append(
            ShardEntry(
                name=f"shard{shard_id}",
                first_text=first_text,
                count=count,
                replicas=tuple(
                    Replica(
                        host, base_port + shard_id * replicas_per_shard + r
                    )
                    for r in range(replicas_per_shard)
                ),
            )
        )
        first_text += count
        shard_id += 1
    if not entries:
        raise InvalidParameterError(f"no shard0/ directory under {root}")
    shard_map = ShardMap(entries)
    shard_map.save(map_path)
    return shard_map


def serve_shards(
    root: str | Path,
    *,
    host: str = "127.0.0.1",
    base_port: int = 8101,
    workers: int = 2,
    procs: int = 1,
    replicas: int = 1,
    banner: bool = True,
) -> int:
    """Blocking entry point of ``repro-cli serve-shards``.

    Launches one server child process per **replica endpoint** in the
    shard map (each child is the ordinary ``serve`` path, so ``procs >
    1`` gives every replica its own prefork worker fleet); replicas of
    one shard all serve the same ``root/shard<i>/`` directory.  Writes
    ``shardmap.json`` (growing it when ``replicas`` asks for more
    endpoints than it lists) and supervises until interrupted — Ctrl-C
    is forwarded so each child drains gracefully.
    """
    import multiprocessing

    from repro.service.server import ServiceConfig, serve

    shard_map = discover_shard_fleet(
        root, host=host, base_port=base_port, replicas_per_shard=replicas
    )
    root = Path(root)
    context = multiprocessing.get_context("fork")
    children: list = []
    for entry in shard_map:
        for replica in entry.replicas:
            config = ServiceConfig(
                host=replica.host,
                port=replica.port,
                workers=workers,
                procs=procs,
            )
            child = context.Process(
                target=serve,
                args=(str(root / entry.name),),
                kwargs={"config": config, "banner": False},
                name=f"repro-{entry.name}-{replica.port}",
            )
            child.start()
            children.append(child)
    if banner:
        ports = ", ".join(
            str(replica.port)
            for entry in shard_map
            for replica in entry.replicas
        )
        print(
            f"repro shard fleet: {len(shard_map)} shards x "
            f"{shard_map.num_replicas} replica endpoints "
            f"({shard_map.num_texts} texts) on {host}:[{ports}]; "
            f"map at {root / SHARD_MAP_FILE}; Ctrl-C drains and exits"
        )
    try:
        for child in children:
            child.join()
    except KeyboardInterrupt:
        for child in children:
            if child.pid is not None and child.is_alive():
                try:
                    import os

                    os.kill(child.pid, signal.SIGINT)
                except ProcessLookupError:
                    pass
        for child in children:
            child.join()
    return 0


async def _route_until_cancelled(router: RouterService, banner: bool) -> None:
    await router.start()
    if banner:
        print(
            f"repro router: {len(router.shard_map)} shards / "
            f"{router.shard_map.num_replicas} replicas / "
            f"{router.shard_map.num_texts} texts on "
            f"{router.config.host}:{router.port} "
            f"(policy={router.config.policy}, "
            f"hedge_after_ms={router.config.hedge_after_ms}); "
            "Ctrl-C drains and exits"
        )
    try:
        await router.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await router.shutdown()


def route(
    shard_map_path: str | Path,
    *,
    config: RouterConfig | None = None,
    banner: bool = True,
) -> int:
    """Blocking entry point of ``repro-cli route``.

    Loads ``shardmap.json`` (or a directory containing one) and serves
    the scatter-gather front-end until interrupted.
    """
    path = Path(shard_map_path)
    if path.is_dir():
        path = path / SHARD_MAP_FILE
    shard_map = ShardMap.load(path)
    router = RouterService(shard_map, config)
    try:
        asyncio.run(_route_until_cancelled(router, banner))
    except KeyboardInterrupt:
        pass
    return 0


def main() -> None:  # pragma: no cover - exercised via the CLI
    sys.exit(route(sys.argv[1]))
