"""Asyncio HTTP client with pooled keep-alive connections.

The scatter-gather router talks to every shard on every request; with a
blocking client that would mean a thread per shard per request, and
with per-request connections a TCP handshake per shard per request.
:class:`AsyncServiceClient` removes both costs: requests are coroutines
(the router ``gather``\\ s one per shard), and completed requests return
their connection to a free list so the steady state is N keep-alive
sockets per shard, reused forever.

A pooled socket can go stale: a server restart, drain, or idle-timeout
closes it *between* our requests, and ``is_closing()`` cannot see a
FIN the event loop has not processed — the death only surfaces when
the next exchange fails.  That failure is unambiguous exactly when no
response byte has arrived yet **and** the connection came from the
pool: the request provably never reached a working server, so
idempotent requests transparently retry once on a fresh connection.
Non-idempotent ``/ingest`` never does (the server may have committed
the append before the connection died), and a fresh connection's
failure is a real error, not staleness.

Error mapping mirrors the blocking :class:`~repro.service.client.ServiceClient`:
non-200 / ``ok: false`` responses raise the same typed exceptions
(:class:`~repro.service.protocol.RequestShedError`,
:class:`~repro.service.protocol.RequestTimeoutError`,
:class:`~repro.service.protocol.ServiceClosedError`,
:class:`~repro.service.protocol.RemoteError`), so retry and
partial-result policies never string-match.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.protocol import RemoteError

_MAX_HEADERS = 64

#: Transport failures that can mean "the pooled socket was already
#: dead" when they strike before any response byte.
_STALE_ERRORS = (ConnectionResetError, BrokenPipeError, ConnectionAbortedError)


class AsyncServiceClient:
    """Pooled keep-alive connections to one search-service endpoint.

    Concurrency is bounded by ``max_connections``: that many requests
    may be in flight at once; extra callers wait on the internal
    semaphore.  A connection is returned to the pool only after a
    complete, successful exchange — timeouts, cancellations, and
    protocol errors close it, so a stale socket can never serve a later
    request.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        max_connections: int = 16,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        self.max_connections = max(1, int(max_connections))
        self._free: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._semaphore = asyncio.Semaphore(self.max_connections)
        self._closed = False
        # Pool telemetry (surfaced per replica in the router's /stats).
        self.opened = 0  #: fresh TCP connections established
        self.reused = 0  #: requests served over a pooled connection
        self.discarded = 0  #: connections closed instead of repooled
        self.stale_retries = 0  #: exchanges replayed on a fresh socket

    # -- pool -----------------------------------------------------------
    @property
    def pooled_connections(self) -> int:
        """Idle keep-alive connections currently in the free list."""
        return len(self._free)

    def pool_stats(self) -> dict[str, int]:
        """Counter snapshot: opened / reused / discarded / stale retries."""
        return {
            "pooled": len(self._free),
            "opened": self.opened,
            "reused": self.reused,
            "discarded": self.discarded,
            "stale_retries": self.stale_retries,
        }

    async def _acquire(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """``(reader, writer, pooled)`` — pooled tells retry policy."""
        while self._free:
            reader, writer = self._free.pop()
            if writer.is_closing():
                self.discarded += 1
                continue
            self.reused += 1
            return reader, writer, True
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.connect_timeout
        )
        self.opened += 1
        return reader, writer, False

    def _discard(self, writer: asyncio.StreamWriter) -> None:
        self.discarded += 1
        try:
            writer.close()
        except Exception:  # pragma: no cover - best-effort close
            pass

    async def close(self) -> None:
        """Close every pooled connection (in-flight ones close on return)."""
        self._closed = True
        while self._free:
            _, writer = self._free.pop()
            self._discard(writer)
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- transport ------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
        idempotent: bool = True,
    ) -> dict[str, Any]:
        """One request/response exchange under a deadline (seconds).

        Raises :class:`asyncio.TimeoutError` past the deadline and the
        typed service errors on error responses.  ``idempotent=False``
        (ingest) disables the stale-pooled-connection replay.
        """
        limit = self.timeout if timeout is None else float(timeout)
        return await asyncio.wait_for(
            self._request(method, path, body, idempotent=idempotent), limit
        )

    async def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None,
        *,
        idempotent: bool = True,
    ) -> dict[str, Any]:
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Connection: keep-alive\r\n"
        )
        if payload:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
            )
        head += "\r\n"
        wire = head.encode("latin-1") + payload
        async with self._semaphore:
            while True:
                reader, writer, pooled = await self._acquire()
                completed = False
                try:
                    writer.write(wire)
                    await writer.drain()
                    status, keep_alive, raw = await self._read_response(reader)
                    completed = True
                except _STALE_ERRORS:
                    # _read_response raises ConnectionResetError only
                    # before the first response byte; write/drain
                    # failures are pre-response by definition.  On a
                    # *pooled* connection that means the server had
                    # already hung up and the request never ran — a
                    # fresh socket replays it safely (idempotent
                    # requests only: a committed /ingest must not
                    # replay).  A fresh connection failing the same way
                    # is a live server error and surfaces; that also
                    # bounds the loop, since the pool only drains.
                    if not (pooled and idempotent):
                        raise
                finally:
                    # Cancellation (the caller's deadline) or any
                    # transport error lands here with completed=False:
                    # the connection is mid-exchange and must never be
                    # reused.
                    if completed and keep_alive and not self._closed:
                        self._free.append((reader, writer))
                    else:
                        self._discard(writer)
                if completed:
                    break
                self.stale_retries += 1
        return self._decode(status, raw)

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, bool, bytes]:
        line = await reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise RemoteError(f"malformed status line {line!r}", 502)
        try:
            status = int(parts[1])
        except ValueError:
            raise RemoteError(f"malformed status line {line!r}", 502)
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, separator, value = header.decode("latin-1").partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        else:
            raise RemoteError(f"more than {_MAX_HEADERS} response headers", 502)
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
        return status, keep_alive, raw

    @staticmethod
    def _decode(status: int, raw: bytes) -> dict[str, Any]:
        from repro.service.client import raise_for_response

        try:
            decoded = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise RemoteError(f"non-JSON response ({status}): {exc}", status)
        raise_for_response(status, decoded)
        return decoded

    # -- endpoints ------------------------------------------------------
    async def search(
        self, body: dict[str, Any], *, timeout: float | None = None
    ) -> dict[str, Any]:
        """``POST /search`` with an already-built wire body."""
        return await self.request("POST", "/search", body, timeout=timeout)

    async def batch(
        self, body: dict[str, Any], *, timeout: float | None = None
    ) -> dict[str, Any]:
        """``POST /batch`` with an already-built wire body."""
        return await self.request("POST", "/batch", body, timeout=timeout)

    async def ingest(
        self, body: dict[str, Any], *, timeout: float | None = None
    ) -> dict[str, Any]:
        """``POST /ingest`` with an already-built wire body
        (``{"texts": [...]}``); not idempotent — never auto-retried."""
        return await self.request(
            "POST", "/ingest", body, timeout=timeout, idempotent=False
        )

    async def health(self, *, timeout: float | None = None) -> dict[str, Any]:
        return await self.request("GET", "/health", timeout=timeout)

    async def stats(self, *, timeout: float | None = None) -> dict[str, Any]:
        return await self.request("GET", "/stats", timeout=timeout)
