"""The shard map: which shard owns which texts, and where it lives.

A scatter-gather deployment splits the corpus into shards of contiguous
text-id ranges (exactly :class:`~repro.index.sharded.ShardedIndex`'s
partitioning), serves each shard from its own search server, and fans
queries out to all of them.  The map is the piece every party shares:

* the **router** reads it to know the shard endpoints and the
  ``first_text`` offset that translates each shard's local text ids
  back to global corpus ids;
* the **fleet launcher** (``repro-cli serve-shards``) writes it next to
  the ``shard<i>/`` directories it serves;
* **ingest** asks it which shard should own a *new* text, via a
  consistent-hash ring (:class:`HashRing`): assignments are a pure
  function of ``(key, shard names)``, so every process agrees without
  coordination, and adding a shard moves only ``~1/N`` of the keys —
  the property that lets capacity grow without a full rebuild.

Format 2 adds **replica sets**: each shard names a *list* of endpoints
serving identical copies of that shard's index, so capacity grows by
adding replicas without touching the partition, and the router can
balance, fail over, and hedge across them.  The first replica is the
shard's *primary* (the only replica non-idempotent ingest may target).
The serialized form is one JSON document, ``shardmap.json``::

    {"format": 2, "ring_replicas": 64,
     "shards": [{"name": "shard0", "first_text": 0, "count": 500,
                 "replicas": [{"host": "127.0.0.1", "port": 8101},
                              {"host": "127.0.0.1", "port": 8103}]},
                ...]}

Format-1 documents (one ``host``/``port`` per shard, ring vnodes under
``"replicas"``) still load and are promoted to one-replica sets.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.exceptions import InvalidParameterError

_FORMAT_VERSION = 2
_READABLE_FORMATS = (1, 2)

#: Virtual nodes per shard on the ring.  More vnodes smooth the
#: per-shard load split (stddev ~ 1/sqrt(vnodes)) at O(N * vnodes)
#: map-build cost; 64 keeps the imbalance under a few percent for
#: realistic fleet sizes.
DEFAULT_RING_REPLICAS = 64


def ring_hash(data: bytes) -> int:
    """Stable 64-bit ring position of ``data``.

    ``hashlib.blake2b`` rather than Python's ``hash()``: the builtin is
    salted per process (``PYTHONHASHSEED``), and the whole point of the
    ring is that every router, launcher, and ingest worker computes the
    *same* assignment for the same key.
    """
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over shard names.

    Each shard contributes ``replicas`` virtual points; a key is owned
    by the first point at or after its own hash (wrapping).  Removing
    or adding one shard therefore only reassigns the keys that fall in
    the arcs its points cover — ``~1/N`` of the key space — and never
    moves a key between two surviving shards.
    """

    def __init__(
        self, names: Sequence[str], *, replicas: int = DEFAULT_RING_REPLICAS
    ) -> None:
        if not names:
            raise InvalidParameterError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate shard names in {list(names)}")
        if replicas <= 0:
            raise InvalidParameterError(f"replicas must be positive, got {replicas}")
        self.names = list(names)
        self.replicas = int(replicas)
        points: list[tuple[int, str]] = []
        for name in self.names:
            for replica in range(self.replicas):
                points.append((ring_hash(f"{name}#{replica}".encode()), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [name for _, name in points]

    def assign(self, key: int) -> str:
        """The shard name owning integer ``key`` (total: every key maps)."""
        position = ring_hash(int(key).to_bytes(8, "big", signed=False))
        slot = bisect.bisect_right(self._points, position)
        if slot == len(self._points):  # wrap past the last point
            slot = 0
        return self._owners[slot]

    def assign_many(self, keys: Iterable[int]) -> list[str]:
        return [self.assign(key) for key in keys]


@dataclass(frozen=True)
class Replica:
    """One endpoint serving a full copy of a shard's index."""

    host: str
    port: int

    @property
    def endpoint(self) -> str:
        """The ``host:port`` string used as the replica's stats key."""
        return f"{self.host}:{self.port}"

    def to_dict(self) -> dict[str, Any]:
        return {"host": self.host, "port": int(self.port)}

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Replica":
        try:
            return cls(host=str(raw["host"]), port=int(raw["port"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParameterError(f"malformed replica entry {raw!r}: {exc}")


@dataclass(frozen=True)
class ShardEntry:
    """One shard: its replica endpoints and the text-id range it serves.

    The shard's own index numbers texts locally from 0; ``first_text``
    is the offset back to global corpus ids (the router adds it to
    every ``text_id`` in the shard's answers).  ``replicas`` holds one
    or more endpoints serving identical copies of the shard; ``host``/
    ``port`` always describe the *primary* (first) replica, so format-1
    era callers keep working unchanged.
    """

    name: str
    host: str | None = None
    port: int | None = None
    first_text: int = 0
    count: int = 0
    replicas: tuple[Replica, ...] = field(default=())

    def __post_init__(self) -> None:
        replicas = tuple(self.replicas)
        if not replicas:
            if self.host is None or self.port is None:
                raise InvalidParameterError(
                    f"shard {self.name!r} needs either host/port or a "
                    "non-empty replica list"
                )
            replicas = (Replica(str(self.host), int(self.port)),)
        endpoints = [replica.endpoint for replica in replicas]
        if len(set(endpoints)) != len(endpoints):
            raise InvalidParameterError(
                f"shard {self.name!r} lists duplicate replica endpoints "
                f"{endpoints}"
            )
        object.__setattr__(self, "replicas", replicas)
        object.__setattr__(self, "host", replicas[0].host)
        object.__setattr__(self, "port", replicas[0].port)

    @property
    def primary(self) -> Replica:
        """The writer replica: ingest stays pinned here."""
        return self.replicas[0]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "first_text": int(self.first_text),
            "count": int(self.count),
            "replicas": [replica.to_dict() for replica in self.replicas],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ShardEntry":
        try:
            name = str(raw["name"])
            first_text = int(raw["first_text"])
            count = int(raw["count"])
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParameterError(f"malformed shard entry {raw!r}: {exc}")
        if "replicas" in raw:
            replicas = raw["replicas"]
            if not isinstance(replicas, list) or not replicas:
                raise InvalidParameterError(
                    f"shard {name!r} has an empty or non-list 'replicas'"
                )
            return cls(
                name=name,
                first_text=first_text,
                count=count,
                replicas=tuple(Replica.from_dict(entry) for entry in replicas),
            )
        # Format-1 entry: one endpoint, promoted to a one-replica set.
        try:
            return cls(
                name=name,
                host=str(raw["host"]),
                port=int(raw["port"]),
                first_text=first_text,
                count=count,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidParameterError(f"malformed shard entry {raw!r}: {exc}")


class ShardMap:
    """Ordered shard entries + the consistent-hash ring over their names."""

    def __init__(
        self,
        entries: Sequence[ShardEntry],
        *,
        replicas: int = DEFAULT_RING_REPLICAS,
    ) -> None:
        if not entries:
            raise InvalidParameterError("a shard map needs at least one shard")
        ordered = sorted(entries, key=lambda entry: entry.first_text)
        expected = 0
        seen_endpoints: dict[str, str] = {}
        for entry in ordered:
            if entry.first_text != expected:
                raise InvalidParameterError(
                    f"shard text ranges must be contiguous; expected start "
                    f"{expected}, got {entry.first_text} ({entry.name})"
                )
            if entry.count < 0:
                raise InvalidParameterError(
                    f"shard {entry.name} has negative count {entry.count}"
                )
            for replica in entry.replicas:
                owner = seen_endpoints.setdefault(replica.endpoint, entry.name)
                if owner != entry.name:
                    raise InvalidParameterError(
                        f"replica {replica.endpoint} serves both {owner} and "
                        f"{entry.name}; an endpoint holds one shard's data"
                    )
            expected += entry.count
        self.entries: list[ShardEntry] = ordered
        self.replicas = int(replicas)
        self.ring = HashRing([entry.name for entry in ordered], replicas=replicas)
        self._by_name = {entry.name: entry for entry in ordered}
        self._starts = [entry.first_text for entry in ordered]

    # -- lookups --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, name: str) -> ShardEntry:
        return self._by_name[name]

    @property
    def num_texts(self) -> int:
        return sum(entry.count for entry in self.entries)

    @property
    def num_replicas(self) -> int:
        """Total replica endpoints across every shard."""
        return sum(len(entry.replicas) for entry in self.entries)

    def locate(self, text_id: int) -> tuple[ShardEntry, int]:
        """``(owning shard, local text id)`` of a *built* global text id."""
        text_id = int(text_id)
        if not 0 <= text_id < self.num_texts:
            raise InvalidParameterError(
                f"text id {text_id} outside [0, {self.num_texts})"
            )
        slot = bisect.bisect_right(self._starts, text_id) - 1
        entry = self.entries[slot]
        return entry, text_id - entry.first_text

    def shard_for_key(self, key: int) -> ShardEntry:
        """The shard a *new* text keyed ``key`` should be ingested into.

        Consistent-hash assignment: stable across processes, covers the
        whole key space, and adding a shard remaps only ``~1/N`` keys
        (never between two pre-existing shards).
        """
        return self._by_name[self.ring.assign(key)]

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": _FORMAT_VERSION,
            "ring_replicas": self.replicas,
            "shards": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ShardMap":
        if not isinstance(raw, dict):
            raise InvalidParameterError("shard map must be a JSON object")
        version = raw.get("format")
        if version not in _READABLE_FORMATS:
            raise InvalidParameterError(
                f"unsupported shard map format {version!r} "
                f"(this build reads formats {list(_READABLE_FORMATS)})"
            )
        shards = raw.get("shards")
        if not isinstance(shards, list) or not shards:
            raise InvalidParameterError("shard map has no 'shards' list")
        # Format 1 stored ring vnodes under "replicas"; format 2 frees
        # that word for replica *endpoints* and renames the ring knob.
        vnodes_key = "replicas" if version == 1 else "ring_replicas"
        return cls(
            [ShardEntry.from_dict(entry) for entry in shards],
            replicas=int(raw.get(vnodes_key, DEFAULT_RING_REPLICAS)),
        )

    def save(self, path: str | Path) -> Path:
        """Write ``shardmap.json`` crash-safely.

        Same discipline as the live index's MANIFEST commit: write to a
        temp path, fsync the file, ``os.replace`` into place, fsync the
        directory entry — so a crash leaves either the old map or the
        new one, never a torn document, and the rename is durable.
        """
        path = Path(path)
        temp = path.with_suffix(path.suffix + ".tmp")
        with open(temp, "w") as handle:
            handle.write(json.dumps(self.to_dict(), indent=2) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        _fsync_directory(path.parent)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ShardMap":
        path = Path(path)
        if not path.exists():
            raise InvalidParameterError(f"shard map {path} does not exist")
        try:
            raw = json.loads(path.read_text())
        except ValueError as exc:
            raise InvalidParameterError(f"{path} is not valid JSON: {exc}")
        return cls.from_dict(raw)


def with_added_replicas(
    shard_map: ShardMap, replicas_per_shard: int, *, base_port: int
) -> ShardMap:
    """A map grown to ``replicas_per_shard`` endpoints per shard.

    Existing replicas keep their endpoints; new ones are assigned
    deterministic ports — replica ``r`` of shard ``i`` lands on
    ``base_port + i * replicas_per_shard + r`` (skipping any port a
    kept replica already occupies).  The partition is untouched: this
    is exactly the "grow capacity without re-partitioning" move.
    """
    if replicas_per_shard <= 0:
        raise InvalidParameterError(
            f"replicas_per_shard must be positive, got {replicas_per_shard}"
        )
    taken = {
        replica.endpoint
        for entry in shard_map
        for replica in entry.replicas
    }
    grown = []
    for shard_id, entry in enumerate(shard_map):
        replicas = list(entry.replicas)
        offset = 0
        while len(replicas) < replicas_per_shard:
            candidate = Replica(
                entry.replicas[0].host,
                base_port + shard_id * replicas_per_shard + offset,
            )
            offset += 1
            if candidate.endpoint in taken:
                continue
            taken.add(candidate.endpoint)
            replicas.append(candidate)
        grown.append(
            ShardEntry(
                name=entry.name,
                first_text=entry.first_text,
                count=entry.count,
                replicas=tuple(replicas),
            )
        )
    return ShardMap(grown, replicas=shard_map.replicas)


def _fsync_directory(root: Path) -> None:
    """Best-effort fsync of the directory entry after ``os.replace``."""
    try:
        fd = os.open(root, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
