"""Corpus near-deduplication built on the search engine."""

from repro.dedup.clusters import DuplicateCluster, UnionFind, build_clusters
from repro.dedup.pipeline import DedupReport, deduplicate, find_duplicate_clusters

__all__ = [
    "DedupReport",
    "DuplicateCluster",
    "UnionFind",
    "build_clusters",
    "deduplicate",
    "find_duplicate_clusters",
]
