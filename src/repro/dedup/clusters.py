"""Union-find clustering of near-duplicate span occurrences.

Corpus deduplication groups mutually-similar span occurrences into
clusters, then keeps one representative per cluster.  A disjoint-set
forest with union by rank and path compression keeps the grouping
near-linear in the number of discovered pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.verify import Span


class UnionFind:
    """Disjoint-set forest over dense integer ids."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))
        self._rank = [0] * size

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def groups(self) -> dict[int, list[int]]:
        """Root -> member list for every set."""
        out: dict[int, list[int]] = {}
        for item in range(len(self._parent)):
            out.setdefault(self.find(item), []).append(item)
        return out


@dataclass(frozen=True)
class DuplicateCluster:
    """A group of mutually near-duplicate span occurrences."""

    members: tuple[Span, ...]

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def representative(self) -> Span:
        """The member to keep: the longest span, earliest position on ties."""
        return max(
            self.members,
            key=lambda s: (s.length, -s.text_id, -s.start),
        )

    def redundant(self) -> list[Span]:
        """Every member except the representative (the spans to drop)."""
        keep = self.representative
        return [span for span in self.members if span != keep]


def build_clusters(spans: list[Span], pairs: list[tuple[int, int]]) -> list[DuplicateCluster]:
    """Cluster spans (by index) given the discovered similar pairs."""
    forest = UnionFind(len(spans))
    for a, b in pairs:
        forest.union(a, b)
    clusters = []
    for members in forest.groups().values():
        if len(members) >= 2:
            clusters.append(
                DuplicateCluster(tuple(spans[m] for m in sorted(members)))
            )
    clusters.sort(key=lambda c: -c.size)
    return clusters
