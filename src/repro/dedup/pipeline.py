"""Corpus-wide near-duplicate discovery and deduplication.

The paper's motivation (Section 1) leans on Lee et al.: training
corpora are full of near-duplicate sequences, duplication drives
memorization super-linearly, and deduplication mitigates it.  This
pipeline turns the paper's *query* primitive into a *self-join* over
the corpus:

1. slice every text into probe windows of width ``w`` and stride ``s``;
2. run near-duplicate search for each probe against the corpus index;
3. cluster the discovered occurrences with union-find;
4. emit a :class:`DedupReport`: clusters, redundancy mass, and the
   disjoint spans a cleaner would drop.

The probe windows make this a bounded approximation of the full
all-pairs self-join (a probe only discovers duplicates of ``>= theta``
similarity that overlap one of its windows), which is the same
windowing compromise the paper's Section 5 evaluation makes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.search import NearDuplicateSearcher
from repro.core.verify import Span, merge_overlapping_spans
from repro.corpus.corpus import Corpus
from repro.dedup.clusters import DuplicateCluster, build_clusters
from repro.exceptions import InvalidParameterError


@dataclass
class DedupReport:
    """Outcome of one corpus deduplication pass."""

    theta: float
    window: int
    stride: int
    probes: int = 0
    clusters: list[DuplicateCluster] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def duplicated_spans(self) -> int:
        return sum(cluster.size for cluster in self.clusters)

    @property
    def redundant_tokens(self) -> int:
        """Tokens a cleaner would remove (sum over non-representatives)."""
        return sum(
            span.length for cluster in self.clusters for span in cluster.redundant()
        )

    def drop_list(self) -> list[Span]:
        """Disjoint spans to delete, merged per text."""
        redundant = [
            span for cluster in self.clusters for span in cluster.redundant()
        ]
        if not redundant:
            return []
        return merge_overlapping_spans(redundant)


def find_duplicate_clusters(
    corpus: Corpus,
    searcher: NearDuplicateSearcher,
    *,
    theta: float = 0.8,
    window: int = 64,
    stride: int | None = None,
    max_probes: int | None = None,
    workers: int = 0,
    batch_size: int | None = 512,
) -> DedupReport:
    """Discover near-duplicate clusters via a windowed self-join.

    Parameters
    ----------
    corpus:
        The corpus behind ``searcher``'s index.
    searcher:
        A searcher over that corpus.
    theta:
        Similarity threshold of the self-join.
    window:
        Probe width in tokens (must be >= the index's ``t``).
    stride:
        Probe stride; defaults to ``window`` (non-overlapping probes).
    max_probes:
        Optional cap for sampled deduplication of large corpora.
    workers:
        Forwarded to the batch executor: ``0`` is the sequential loop,
        ``>= 1`` plans/parallelizes each probe batch.  The self-join is
        a natural batch workload — neighbouring probes of one text share
        most of their Zipf-head lists.
    batch_size:
        Probes searched per executor batch (bounds planning memory).
    """
    if window < searcher.t:
        raise InvalidParameterError(
            f"window ({window}) must be >= the index length threshold ({searcher.t})"
        )
    if stride is None:
        stride = window
    if stride < 1:
        raise InvalidParameterError(f"stride must be >= 1, got {stride}")
    begin = time.perf_counter()
    report = DedupReport(theta=theta, window=window, stride=stride)

    probe_spans: list[Span] = []
    probe_queries: list[np.ndarray] = []
    done = False
    for text_id in range(len(corpus)):
        if done:
            break
        text = np.asarray(corpus[text_id])
        for start in range(0, max(0, text.size - window + 1), stride):
            if max_probes is not None and report.probes >= max_probes:
                done = True
                break
            report.probes += 1
            probe_spans.append(Span(text_id, start, start + window - 1))
            probe_queries.append(text[start : start + window])

    results = searcher.search_many(
        probe_queries, theta, workers=workers, batch_size=batch_size
    )

    spans: list[Span] = []
    span_ids: dict[tuple[int, int, int], int] = {}
    pairs: list[tuple[int, int]] = []

    def intern(span: Span) -> int:
        key = (span.text_id, span.start, span.end)
        if key not in span_ids:
            span_ids[key] = len(spans)
            spans.append(span)
        return span_ids[key]

    for probe_span, result in zip(probe_spans, results):
        probe_id = None
        for merged in result.merged_spans():
            # Skip the probe's own (overlapping) occurrence.
            if merged.text_id == probe_span.text_id and not (
                merged.end < probe_span.start or merged.start > probe_span.end
            ):
                continue
            if probe_id is None:
                probe_id = intern(probe_span)
            pairs.append((probe_id, intern(merged)))

    report.clusters = build_clusters(spans, pairs)
    report.seconds = time.perf_counter() - begin
    return report


def deduplicate(
    corpus: Corpus,
    report: DedupReport,
) -> list[np.ndarray]:
    """Materialize the cleaned corpus: drop the report's redundant spans.

    Returns new token arrays with the drop-list spans excised.  Texts
    without redundant spans are returned as-is (same array object), so
    the caller can tell what changed.
    """
    drops: dict[int, list[Span]] = {}
    for span in report.drop_list():
        drops.setdefault(span.text_id, []).append(span)
    cleaned: list[np.ndarray] = []
    for text_id in range(len(corpus)):
        text = np.asarray(corpus[text_id])
        if text_id not in drops:
            cleaned.append(text)
            continue
        keep = np.ones(text.size, dtype=bool)
        for span in drops[text_id]:
            keep[span.start : span.end + 1] = False
        cleaned.append(text[keep])
    return cleaned
