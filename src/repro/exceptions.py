"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of its valid domain.

    Examples: a non-positive length threshold ``t``, a similarity
    threshold outside ``(0, 1]``, or ``k <= 0`` hash functions.
    """


class CorpusFormatError(ReproError):
    """An on-disk corpus file is malformed or truncated."""


class IndexFormatError(ReproError):
    """An on-disk inverted index file is malformed or incompatible."""


class TokenizerError(ReproError):
    """BPE tokenizer training or encoding failed."""


class QueryError(ReproError):
    """A query sequence cannot be processed (e.g. shorter than ``t``)."""
