"""Index integrity validation.

An operational tool: given an index (and optionally the corpus it was
built from), verify every structural invariant the query processor
relies on.  Run it after out-of-core builds, merges, or file transfers
— a silently corrupted index would return silently wrong answers, since
the searcher trusts the sort orders unconditionally.

Checked invariants:

1. directory keys are strictly increasing per hash function;
2. every inverted list is sorted by text id;
3. posting counts in the directory match the payload slices;
4. window geometry: ``left <= center <= right`` and width ``>= t``;
5. (with corpus) every window's center token hash equals the list's
   min-hash and is minimal within the window span;
6. (with corpus) window bounds lie inside their text;
7. (packed / format v2 readers) the per-block mini-directory agrees
   with the decoded contents: ``first_text`` entries match the block-
   leading postings, the stored bit widths are exactly the minimal
   widths of the re-derived columns, and block byte offsets tile the
   payload contiguously within each list;
8. (disk readers) the directory container is consistent with the meta
   file: the container ``index.meta.json`` declares is the one on
   disk, exactly one container file is present, and — for the mmap
   sidecar — the TOC is self-consistent (aligned, in-bounds,
   non-overlapping sections whose byte sizes match their dtype/shape)
   and carries every array the reader needs per hash function, with
   matching lengths (``keys == offsets == counts``, the zone-map
   triple, the block mini-directory);
9. (live-index roots, :func:`validate_live_index`) the LSM structure is
   sound: the manifest parses and every run it lists exists, is fully
   committed, matches the manifest's hash family / ``t`` / codec, and
   passes invariants (1)-(8); run text-id ranges are disjoint and
   ascending in manifest order and stay below the manifest's
   ``next_text_id`` (the WAL replay fence); no stray ``run-*`` or
   ``wal-*`` entries sit outside the manifest; and the active WAL
   scans cleanly — no torn tail, records fenced correctly and
   contiguous in text id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.corpus import Corpus
from repro.index.codec import (
    BLOCK_POSTINGS,
    _bit_widths,
    block_byte_sizes,
    block_counts,
    list_columns,
)


@dataclass
class ValidationReport:
    """Outcome of one validation run."""

    lists_checked: int = 0
    postings_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def _fail(self, message: str, limit: int = 50) -> None:
        if len(self.errors) < limit:
            self.errors.append(message)


def _iter_lists(index, func: int):
    if hasattr(index, "iter_lists"):
        yield from index.iter_lists(func)
        return
    for minhash in index._keys[func]:
        yield int(minhash), index.load_list(func, int(minhash))


def validate_index(
    index,
    corpus: Corpus | None = None,
    *,
    max_lists_per_func: int | None = None,
) -> ValidationReport:
    """Validate an index's structural invariants; see the module docs.

    Parameters
    ----------
    index:
        Any reader (memory or disk).
    corpus:
        When given, content-level invariants (5)-(6) are checked too.
    max_lists_per_func:
        Optional cap for sampled validation of very large indexes.
    """
    report = ValidationReport()
    family = index.family
    t = index.t
    vocab_hashes = None
    if corpus is not None:
        vocab_top = 0
        for text in corpus:
            if text.size:
                vocab_top = max(vocab_top, int(text.max()) + 1)
        if vocab_top and vocab_top <= (1 << 24):
            vocab_hashes = family.hash_vocabulary(vocab_top)

    for func in range(family.k):
        previous_key = -1
        for count, (minhash, postings) in enumerate(_iter_lists(index, func)):
            if max_lists_per_func is not None and count >= max_lists_per_func:
                break
            report.lists_checked += 1
            report.postings_checked += int(postings.size)
            if minhash <= previous_key:
                report._fail(
                    f"func {func}: keys not strictly increasing at {minhash}"
                )
            previous_key = minhash

            texts = postings["text"].astype(np.int64)
            if np.any(np.diff(texts) < 0):
                report._fail(f"func {func} list {minhash}: postings not sorted by text")

            lefts = postings["left"].astype(np.int64)
            centers = postings["center"].astype(np.int64)
            rights = postings["right"].astype(np.int64)
            if np.any(lefts > centers) or np.any(centers > rights):
                report._fail(f"func {func} list {minhash}: bad window geometry")
            if np.any(rights - lefts + 1 < t):
                report._fail(f"func {func} list {minhash}: window narrower than t")

            if corpus is None:
                continue
            for rec in postings:
                text_id = int(rec["text"])
                if text_id >= len(corpus):
                    report._fail(
                        f"func {func} list {minhash}: text id {text_id} out of range"
                    )
                    continue
                tokens = np.asarray(corpus[text_id])
                right = int(rec["right"])
                if right >= tokens.size:
                    report._fail(
                        f"func {func} list {minhash}: window exceeds text {text_id}"
                    )
                    continue
                left, center = int(rec["left"]), int(rec["center"])
                if vocab_hashes is not None:
                    hashes = vocab_hashes[func][
                        tokens[left : right + 1].astype(np.int64)
                    ]
                else:
                    hashes = family.hash_tokens(tokens[left : right + 1], func)
                center_hash = int(hashes[center - left])
                if center_hash != int(minhash):
                    report._fail(
                        f"func {func} list {minhash}: center hash mismatch in "
                        f"text {text_id}"
                    )
                if center_hash != int(hashes.min()):
                    report._fail(
                        f"func {func} list {minhash}: center not minimal in "
                        f"text {text_id} window [{left},{right}]"
                    )
    if getattr(index, "codec", "raw") == "packed":
        _validate_block_directory(index, report, max_lists_per_func)
    if hasattr(index, "directory_format"):
        _validate_directory_container(index, report)
    return report


def _validate_directory_container(index, report: ValidationReport) -> None:
    """Invariant (8): container files vs. meta, sidecar TOC soundness."""
    from pathlib import Path

    from repro.index.sidecar import SECTION_ALIGN, SIDECAR_FILE, read_toc

    directory = Path(index._directory)
    declared = index.directory_format
    present = {
        name: (directory / filename).exists()
        for name, filename in (("sidecar", SIDECAR_FILE), ("npz", "index.dir.npz"))
    }
    if not present.get(declared, False):
        report._fail(
            f"meta declares directory container {declared!r} but its file "
            "is missing"
        )
    extra = [name for name, here in present.items() if here and name != declared]
    if extra:
        report._fail(
            f"stray directory container file(s) {extra} next to the "
            f"declared {declared!r} container"
        )
    if declared != "sidecar" or not present.get("sidecar", False):
        return

    try:
        sections, data_start, size = read_toc(directory / SIDECAR_FILE)
    except Exception as exc:  # noqa: BLE001 - any parse failure is the finding
        report._fail(f"sidecar TOC unreadable: {exc}")
        return
    names = set()
    spans = []
    for section in sections:
        name = section["name"]
        names.add(name)
        offset, nbytes = int(section["offset"]), int(section["nbytes"])
        if offset % SECTION_ALIGN:
            report._fail(f"sidecar section {name}: offset not {SECTION_ALIGN}-aligned")
        expected = int(np.prod(section["shape"], dtype=np.int64)) * np.dtype(
            section["dtype"]
        ).itemsize
        if nbytes != expected:
            report._fail(
                f"sidecar section {name}: nbytes {nbytes} does not match "
                f"dtype/shape ({expected})"
            )
        if data_start + offset + nbytes > size:
            report._fail(f"sidecar section {name}: extends past end of file")
        spans.append((offset, offset + nbytes, name))
    spans.sort()
    for (_, end, name), (start, _, other) in zip(spans, spans[1:]):
        if start < end:
            report._fail(f"sidecar sections {name} and {other} overlap")

    lengths = {section["name"]: int(section["shape"][0]) for section in sections}
    required = ["keys", "offsets", "counts", "zm_keys", "zm_starts", "zm_lengths", "zm_samples"]
    if getattr(index, "codec", "raw") == "packed":
        required += ["blk_first", "blk_widths", "blk_offsets"]
    for func in range(index.family.k):
        missing = [
            prefix for prefix in required if f"{prefix}_{func}" not in names
        ]
        if missing:
            report._fail(f"sidecar is missing sections for func {func}: {missing}")
            continue
        num_lists = lengths[f"keys_{func}"]
        if (
            lengths[f"offsets_{func}"] != num_lists
            or lengths[f"counts_{func}"] != num_lists
        ):
            report._fail(
                f"sidecar func {func}: keys/offsets/counts lengths disagree"
            )
        num_zm = lengths[f"zm_keys_{func}"]
        if (
            lengths[f"zm_starts_{func}"] != num_zm
            or lengths[f"zm_lengths_{func}"] != num_zm
        ):
            report._fail(f"sidecar func {func}: zone-map triple lengths disagree")
        if getattr(index, "codec", "raw") == "packed":
            num_blocks = lengths[f"blk_first_{func}"]
            if (
                lengths[f"blk_widths_{func}"] != num_blocks
                or lengths[f"blk_offsets_{func}"] != num_blocks
            ):
                report._fail(
                    f"sidecar func {func}: block mini-directory lengths disagree"
                )


def _validate_block_directory(index, report: ValidationReport, max_lists_per_func):
    """Invariant (7): v2 block directory vs. decoded list contents."""
    for func in range(index.family.k):
        ptr = index._blk_ptr[func]
        for slot, minhash in enumerate(index._keys[func]):
            if max_lists_per_func is not None and slot >= max_lists_per_func:
                break
            minhash = int(minhash)
            postings = index.load_list(func, minhash)
            blk_lo, blk_hi = int(ptr[slot]), int(ptr[slot + 1])
            first = index._blk_first[func][blk_lo:blk_hi]
            widths = index._blk_widths[func][blk_lo:blk_hi]
            offsets = index._blk_offsets[func][blk_lo:blk_hi]
            counts = block_counts(postings.size)
            if counts.size != first.size:
                report._fail(
                    f"func {func} list {minhash}: {first.size} directory "
                    f"blocks for {counts.size} expected"
                )
                continue
            if not np.array_equal(
                first.astype(np.int64),
                postings["text"][::BLOCK_POSTINGS].astype(np.int64),
            ):
                report._fail(
                    f"func {func} list {minhash}: blk_first does not match "
                    "decoded block-leading texts"
                )
            padded_len = counts.size * BLOCK_POSTINGS
            for column, values in enumerate(list_columns(postings)):
                padded = np.zeros(padded_len, dtype=np.int64)
                padded[: values.size] = values
                minimal = _bit_widths(
                    padded.reshape(-1, BLOCK_POSTINGS).max(axis=1)
                )
                if not np.array_equal(minimal, widths[:, column]):
                    report._fail(
                        f"func {func} list {minhash}: stored bit widths of "
                        f"column {column} are not the minimal widths of the "
                        "decoded values"
                    )
            sizes = block_byte_sizes(counts, widths)
            if counts.size > 1 and not np.array_equal(
                np.diff(offsets.astype(np.int64)), sizes[:-1]
            ):
                report._fail(
                    f"func {func} list {minhash}: block offsets are not "
                    "contiguous with the block sizes"
                )
            if counts.size and int(offsets[-1]) + int(sizes[-1]) > index.nbytes:
                report._fail(
                    f"func {func} list {minhash}: blocks extend past the "
                    "payload end"
                )


def validate_live_index(
    root,
    *,
    max_lists_per_func: int | None = None,
) -> ValidationReport:
    """Invariant (9): validate an LSM live-index root end to end.

    Checks the manifest, every sealed run (structurally, via
    :func:`validate_index`, plus cross-run text-range discipline), the
    directory contents (no stray runs or WAL segments), and the active
    WAL segment (clean tail, replay-fence and contiguity of record
    ids).  Works on a root that is not currently open; opening it
    elsewhere concurrently may race seals and report transient strays.
    """
    from pathlib import Path

    from repro.exceptions import IndexFormatError
    from repro.index.lsm.manifest import MANIFEST_FILE, Manifest
    from repro.index.lsm.wal import scan_wal
    from repro.index.storage import DiskInvertedIndex

    report = ValidationReport()
    root = Path(root)
    try:
        manifest = Manifest.load(root)
    except IndexFormatError as exc:
        report._fail(f"manifest: {exc}")
        return report

    # Directory discipline: everything run-/wal-like must be accounted for.
    wal_file = f"wal-{manifest.wal_seq:06d}.log"
    referenced = set(manifest.runs)
    for entry in sorted(root.iterdir()):
        if entry.is_dir() and entry.name.startswith("run-"):
            if entry.name not in referenced:
                report._fail(f"stray run directory {entry.name} not in manifest")
        elif entry.name.startswith("wal-") and entry.name.endswith(".log"):
            if entry.name != wal_file:
                report._fail(
                    f"stale WAL segment {entry.name} (active is {wal_file})"
                )

    # Per-run structure + cross-run text-range discipline.
    previous_hi = -1
    for name in manifest.runs:
        run_dir = root / name
        if not run_dir.is_dir():
            report._fail(f"run {name}: directory missing")
            continue
        try:
            reader = DiskInvertedIndex(run_dir)
        except IndexFormatError as exc:
            report._fail(f"run {name}: {exc}")
            continue
        if reader.family != manifest.family:
            report._fail(f"run {name}: hash family differs from manifest")
        if reader.t != manifest.t:
            report._fail(f"run {name}: t={reader.t} differs from manifest t={manifest.t}")
        if reader.codec != manifest.codec:
            report._fail(
                f"run {name}: codec {reader.codec!r} differs from manifest "
                f"{manifest.codec!r}"
            )
        sub_report = validate_index(
            reader, max_lists_per_func=max_lists_per_func
        )
        report.lists_checked += sub_report.lists_checked
        report.postings_checked += sub_report.postings_checked
        for error in sub_report.errors:
            report._fail(f"run {name}: {error}")

        lo, hi = _run_text_range(reader)
        if lo is None:
            continue  # empty run: no range to check
        if lo <= previous_hi:
            report._fail(
                f"run {name}: text range [{lo}, {hi}] overlaps or precedes "
                f"an earlier run (previous max id {previous_hi})"
            )
        if hi >= manifest.next_text_id:
            report._fail(
                f"run {name}: max text id {hi} at or above the manifest's "
                f"next_text_id {manifest.next_text_id} (broken replay fence)"
            )
        previous_hi = max(previous_hi, hi)

    # Active WAL: clean tail, fenced + contiguous records.
    wal_path = root / wal_file
    if not wal_path.exists():
        report._fail(f"active WAL segment {wal_file} is missing")
        return report
    try:
        records, _, tail_error = scan_wal(wal_path)
    except IndexFormatError as exc:
        report._fail(f"WAL {wal_file}: {exc}")
        return report
    if tail_error is not None:
        report._fail(f"WAL {wal_file}: torn tail not truncated ({tail_error})")
    expected_next = manifest.next_text_id
    for position, (first_text_id, texts) in enumerate(records):
        if first_text_id < manifest.next_text_id:
            report._fail(
                f"WAL {wal_file} record {position}: first text id "
                f"{first_text_id} below the replay fence "
                f"{manifest.next_text_id}"
            )
            continue
        if first_text_id != expected_next:
            report._fail(
                f"WAL {wal_file} record {position}: first text id "
                f"{first_text_id} not contiguous (expected {expected_next})"
            )
        expected_next = first_text_id + len(texts)
    return report


def _run_text_range(reader) -> tuple[int | None, int | None]:
    """(min, max) text id of a run, from function 0's lists."""
    lo: int | None = None
    hi: int | None = None
    for _, postings in _iter_lists(reader, 0):
        if postings.size:
            texts = postings["text"]
            first, last = int(texts.min()), int(texts.max())
            lo = first if lo is None else min(lo, first)
            hi = last if hi is None else max(hi, last)
    return lo, hi
