"""Incremental index maintenance: append new texts to an existing index.

LLM training corpora grow over time (new crawl snapshots); rebuilding
the full inverted index for every addition wastes the work already
done.  :class:`IncrementalIndex` keeps a *main* index (any reader) plus
an in-memory *delta* of freshly-appended texts, answering queries over
the union.  When the delta grows past a threshold it is merged into a
new consolidated main index.

This follows the classic main+delta design of log-structured search
indexes; correctness is trivial because compact windows of different
texts never interact — the union of the two indexes' lists is exactly
the list an offline build over the union corpus would produce.

The delta buffer is a :class:`~repro.index.lsm.memtable.Memtable`, the
same write buffer the WAL-backed live index
(:mod:`repro.index.lsm.live`) seals into on-disk runs — this class is
the single-level, in-memory-only specialisation of that design.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import HashFamily
from repro.exceptions import InvalidParameterError
from repro.index.inverted import IOStats, MemoryInvertedIndex, POSTING_DTYPE
from repro.index.lsm.memtable import Memtable


class IncrementalIndex:
    """Main + delta inverted index with query-time union.

    Parameters
    ----------
    main:
        The existing index (memory or disk reader).
    vocab_size:
        Token-id space; must cover all future appends.
    merge_threshold:
        Delta posting count that triggers an automatic consolidation
        into a fresh in-memory main index.
    """

    def __init__(
        self,
        main,
        vocab_size: int,
        *,
        merge_threshold: int = 1_000_000,
    ) -> None:
        if merge_threshold <= 0:
            raise InvalidParameterError("merge_threshold must be positive")
        self.family: HashFamily = main.family
        self.t: int = main.t
        self._main = main
        self._vocab_size = int(vocab_size)
        self._merge_threshold = int(merge_threshold)
        self._next_text_id = self._infer_next_text_id(main)
        self._memtable = Memtable(self.family, self.t, self._vocab_size)
        self.io_stats: IOStats = main.io_stats
        self.merges = 0

    @staticmethod
    def _infer_next_text_id(index) -> int:
        """First unassigned text id of an existing index.

        Indexes written since the ``num_texts`` metadata key landed
        answer in O(1); legacy indexes fall back to scanning hash
        function 0's lists for the largest text id (function 0
        suffices: every indexed text has at least one window under
        *every* function, and texts shorter than ``t`` have no windows
        anywhere and therefore no reserved id — the scan can only
        under-count ids of such trailing window-less texts, which the
        metadata path gets exact).
        """
        num_texts = getattr(index, "num_texts", None)
        if num_texts is not None:
            return int(num_texts)
        top = -1
        for _, postings in _iter_all_lists(index, func=0):
            if postings.size:
                top = max(top, int(postings["text"].max()))
        return top + 1

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_text(self, tokens: np.ndarray) -> int:
        """Index one new text; returns its assigned text id."""
        return self.append_texts([tokens])[0]

    def append_texts(self, texts: list[np.ndarray]) -> list[int]:
        """Index a batch of new texts; returns their assigned text ids."""
        batch = []
        for tokens in texts:
            batch.append((self._next_text_id + len(batch), tokens))
        self._memtable.add_texts(batch)
        self._next_text_id += len(batch)
        if self._memtable.postings >= self._merge_threshold:
            self.consolidate()
        return [text_id for text_id, _ in batch]

    def _delta_index(self) -> MemoryInvertedIndex | None:
        return self._memtable.index()

    def consolidate(self) -> None:
        """Merge the delta into a fresh in-memory main index."""
        delta = self._delta_index()
        if delta is None:
            return
        per_func = []
        for func in range(self.family.k):
            minhash_chunks = []
            posting_chunks = []
            for source in (self._main, delta):
                for minhash, postings in _iter_all_lists(source, func):
                    minhash_chunks.append(
                        np.full(postings.size, minhash, dtype=np.uint32)
                    )
                    posting_chunks.append(np.asarray(postings))
            if minhash_chunks:
                per_func.append(
                    (np.concatenate(minhash_chunks), np.concatenate(posting_chunks))
                )
            else:
                per_func.append(
                    (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
                )
        self._main = MemoryInvertedIndex.from_postings(self.family, self.t, per_func)
        self._main.num_texts = self._next_text_id
        self.io_stats = self._main.io_stats
        self._memtable.clear()
        self.merges += 1

    # ------------------------------------------------------------------
    # Reader protocol (union of main + delta)
    # ------------------------------------------------------------------
    def list_length(self, func: int, minhash: int) -> int:
        total = self._main.list_length(func, minhash)
        delta = self._delta_index()
        if delta is not None:
            total += delta.list_length(func, minhash)
        return total

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        main_part = self._main.load_list(func, minhash)
        delta = self._delta_index()
        if delta is None:
            return main_part
        delta_part = delta.load_list(func, minhash)
        if not delta_part.size:
            return main_part
        if not main_part.size:
            return delta_part
        # Delta text ids are strictly larger, so concatenation stays
        # sorted by text id (the query processor relies on it).
        return np.concatenate([main_part, delta_part])

    def load_text_windows(self, func: int, minhash: int, text_id: int) -> np.ndarray:
        delta = self._delta_index()
        parts = [self._main.load_text_windows(func, minhash, text_id)]
        if delta is not None:
            parts.append(delta.load_text_windows(func, minhash, text_id))
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=POSTING_DTYPE)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def sketch_list_lengths(self, sketch: np.ndarray) -> np.ndarray:
        """Batched per-sketch lengths: main + delta, one pass each."""
        lengths = self._main.sketch_list_lengths(sketch)
        delta = self._delta_index()
        if delta is not None:
            lengths = lengths + delta.sketch_list_lengths(sketch)
        return lengths

    def load_texts_windows(
        self, func: int, minhash: int, text_ids: np.ndarray
    ) -> np.ndarray:
        """Batched point reads over main + delta.

        Delta text ids are strictly larger than main ones, so the
        concatenation stays sorted by text id (the same invariant
        :meth:`load_list` relies on).
        """
        delta = self._delta_index()
        parts = [self._main.load_texts_windows(func, minhash, text_ids)]
        if delta is not None:
            parts.append(delta.load_texts_windows(func, minhash, text_ids))
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=POSTING_DTYPE)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------
    @property
    def num_postings(self) -> int:
        return int(self._main.num_postings) + self._memtable.postings

    @property
    def nbytes(self) -> int:
        return self.num_postings * POSTING_DTYPE.itemsize

    def list_lengths(self, func: int) -> np.ndarray:
        lengths = [np.asarray(self._main.list_lengths(func), dtype=np.int64)]
        delta = self._delta_index()
        if delta is not None:
            lengths.append(np.asarray(delta.list_lengths(func), dtype=np.int64))
        return np.concatenate(lengths) if lengths else np.empty(0, dtype=np.int64)

    @property
    def delta_postings(self) -> int:
        return self._memtable.postings


def _iter_all_lists(index, func: int):
    """Yield (minhash, postings) for every list of one function of any reader."""
    if hasattr(index, "iter_lists"):
        yield from index.iter_lists(func)
        return
    keys = getattr(index, "_keys", None)
    if keys is None:
        raise InvalidParameterError("index does not expose its lists for merging")
    for minhash in keys[func]:
        yield int(minhash), index.load_list(func, int(minhash))
