"""Flat, page-aligned directory sidecar (``index.dir.bin``).

The per-function directory arrays (keys, offsets, counts, zone maps,
and the v2 block mini-directory) used to live in a zipped ``.npz``
archive: every :class:`~repro.index.storage.DiskInvertedIndex` open
paid a full decompress-and-copy, and every server process held a
private heap copy of the whole directory.  The sidecar stores the same
arrays in a flat container designed for ``mmap``:

* a fixed 16-byte header — the magic ``RPDIRSC1`` and the byte length
  of the JSON table of contents;
* the TOC: one JSON object listing every section's ``name``, numpy
  ``dtype`` string, ``shape``, byte ``offset`` *relative to the data
  area*, and ``nbytes``;
* the data area, starting at the first :data:`DATA_ALIGN`-aligned byte
  past the TOC, holding each array's raw little-endian bytes at a
  :data:`SECTION_ALIGN`-aligned relative offset, in TOC order.

Opening is one ``mmap`` plus one ``np.frombuffer`` view per section —
no decompression, no copies — so N forked server workers share a
single page-cache copy of the directory, and re-opening the index
(executor process pools, worker respawn) costs microseconds.
"""

from __future__ import annotations

import json
import math
import mmap
from pathlib import Path

import numpy as np

from repro.exceptions import IndexFormatError

#: Sidecar file name inside an index directory.
SIDECAR_FILE = "index.dir.bin"

#: Magic bytes identifying the container (version suffix ``1``).
MAGIC = b"RPDIRSC1"

#: Every section starts at a multiple of this within the data area —
#: generous enough for any numpy dtype's alignment requirement.
SECTION_ALIGN = 64

#: The data area itself starts on a page boundary, so section
#: alignment is absolute as well as relative.
DATA_ALIGN = 4096

_HEADER_BYTES = 16


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def write_sidecar(path: str | Path, arrays: dict[str, np.ndarray]) -> Path:
    """Write ``arrays`` as one flat sidecar file; returns the path.

    Array bytes are stored little-endian exactly as numpy lays them
    out (``tobytes`` of the C-contiguous form), so the reader's
    ``frombuffer`` views reproduce each array without conversion.
    """
    path = Path(path)
    sections = []
    cursor = 0
    payloads: list[tuple[int, bytes]] = []
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        raw = contiguous.tobytes()
        cursor = _align_up(cursor, SECTION_ALIGN)
        sections.append(
            {
                "name": name,
                "dtype": contiguous.dtype.str,
                "shape": list(contiguous.shape),
                "offset": cursor,
                "nbytes": len(raw),
            }
        )
        payloads.append((cursor, raw))
        cursor += len(raw)
    toc = json.dumps({"align": SECTION_ALIGN, "sections": sections}).encode("utf-8")
    data_start = _align_up(_HEADER_BYTES + len(toc), DATA_ALIGN)
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(len(toc).to_bytes(8, "little"))
        handle.write(toc)
        handle.write(b"\x00" * (data_start - _HEADER_BYTES - len(toc)))
        position = 0
        for offset, raw in payloads:
            if offset > position:
                handle.write(b"\x00" * (offset - position))
                position = offset
            handle.write(raw)
            position += len(raw)
    return path


def read_toc(path: str | Path) -> tuple[list[dict], int, int]:
    """Parse a sidecar's table of contents without mapping the arrays.

    Returns ``(sections, data_start, file_size)`` — the raw metadata
    index validation checks against the loaded directory.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            header = handle.read(_HEADER_BYTES)
            if len(header) < _HEADER_BYTES or header[:8] != MAGIC:
                raise IndexFormatError(
                    f"{path} is not a directory sidecar (bad magic)"
                )
            toc_bytes = int.from_bytes(header[8:16], "little")
            if _HEADER_BYTES + toc_bytes > size:
                raise IndexFormatError(f"{path}: truncated table of contents")
            toc = json.loads(handle.read(toc_bytes).decode("utf-8"))
    except OSError as exc:
        raise IndexFormatError(f"cannot read sidecar {path}: {exc}") from exc
    except (ValueError, UnicodeDecodeError) as exc:
        raise IndexFormatError(f"{path}: corrupt table of contents: {exc}") from exc
    sections = toc.get("sections")
    if not isinstance(sections, list):
        raise IndexFormatError(f"{path}: table of contents lists no sections")
    data_start = _align_up(_HEADER_BYTES + toc_bytes, DATA_ALIGN)
    return sections, data_start, size


def read_sidecar(path: str | Path) -> tuple[dict[str, np.ndarray], mmap.mmap]:
    """Map a sidecar and return zero-copy views of every section.

    The returned arrays are read-only ``frombuffer`` views into one
    shared read-only mapping; the mapping object is returned alongside
    so callers can keep an explicit reference (the views alone also
    keep it alive through their ``base``).
    """
    path = Path(path)
    sections, data_start, size = read_toc(path)
    with open(path, "rb") as handle:
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise IndexFormatError(f"cannot map sidecar {path}: {exc}") from exc
    arrays: dict[str, np.ndarray] = {}
    for section in sections:
        try:
            name = section["name"]
            dtype = np.dtype(section["dtype"])
            shape = tuple(int(axis) for axis in section["shape"])
            offset = data_start + int(section["offset"])
            nbytes = int(section["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(f"{path}: malformed section entry: {exc}") from exc
        # math.prod, not np.prod: open time is O(sections) pure-Python
        # work, and the numpy reduction machinery is ~10x the cost of
        # the C builtin for these tiny shape tuples.
        count = math.prod(shape) if shape else 1
        if count * dtype.itemsize != nbytes or offset + nbytes > size:
            raise IndexFormatError(
                f"{path}: section {name!r} does not fit its declared bounds"
            )
        view = np.frombuffer(mapping, dtype=dtype, count=count, offset=offset)
        arrays[name] = view if len(shape) == 1 else view.reshape(shape)
    return arrays, mapping
