"""In-memory index construction (paper Section 3.4, Algorithm 1).

For medium-scale corpora that fit in memory, Algorithm 1 loads the
corpus, generates the valid compact windows of every text under each of
the ``k`` hash functions, groups them into inverted lists and (
optionally) writes each index to disk.  The out-of-core variant for
large corpora lives in :mod:`repro.index.external`.

Window generation is vectorized across hash functions: each text is
hashed into a ``(k, n)`` matrix with a single table gather and the
compact windows of all ``k`` rows are computed simultaneously
(:func:`~repro.core.compact_windows.generate_compact_windows_kwide`),
so the interpreter cost of a build no longer scales with ``k``.  The
corpus is streamed in bounded batches — peak memory holds one batch of
texts plus the growing postings, never a second copy of the corpus.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.compact_windows import generate_compact_windows_kwide
from repro.core.hashing import HashFamily
from repro.corpus.corpus import Corpus, infer_vocab_size, iter_corpus_batches
from repro.exceptions import InvalidParameterError
from repro.index.inverted import MemoryInvertedIndex, POSTING_BYTES, POSTING_DTYPE
from repro.index.storage import write_index

logger = logging.getLogger(__name__)

#: Texts per streamed batch when the caller does not choose.
DEFAULT_BATCH_TEXTS = 256


@dataclass
class BuildStats:
    """Timing and size accounting of one index build.

    The paper's Figure 2(i)–(l) splits index time into compact-window
    generation and disk I/O; builders populate both parts, plus the
    in-memory phases around them:

    * ``generation_seconds`` — hashing + compact-window generation
      (includes pool round-trips in parallel builds);
    * ``merge_seconds`` — sorting/grouping postings into inverted lists;
    * ``aggregation_seconds`` — the out-of-core build's pass-2 partition
      aggregation (sort + group + rewrite);
    * ``io_seconds`` — spill and index file reads/writes.
    """

    windows_generated: int = 0
    generation_seconds: float = 0.0
    merge_seconds: float = 0.0
    aggregation_seconds: float = 0.0
    io_seconds: float = 0.0
    bytes_written: int = 0
    texts_indexed: int = 0
    batches: int = 0
    windows_per_func: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return (
            self.generation_seconds
            + self.merge_seconds
            + self.aggregation_seconds
            + self.io_seconds
        )

    @property
    def index_bytes(self) -> int:
        """Logical index size (16 bytes per stored window)."""
        return self.windows_generated * POSTING_BYTES


#: Vocabularies past this size are hashed directly instead of through a
#: precomputed table (the table would cost 4 bytes x k x vocab).
MAX_VOCAB_TABLE = 1 << 24


def generate_corpus_postings(
    texts: list[tuple[int, np.ndarray]],
    family: HashFamily,
    t: int,
    vocab_hashes: np.ndarray | None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Generate per-function ``(minhash, posting)`` arrays for a batch of texts.

    ``vocab_hashes`` is the ``(k, vocab)`` table from
    :meth:`HashFamily.hash_vocabulary`; each text indexes it once with
    ``vocab_hashes[:, tokens]``, producing the full ``(k, n)`` hash
    matrix in one gather.  Pass ``None`` (huge token-id spaces) to hash
    each text's tokens directly.  Windows for all ``k`` functions are
    generated simultaneously from the matrix.
    """
    per_func: list[tuple[list[np.ndarray], list[np.ndarray]]] = [
        ([], []) for _ in range(family.k)
    ]
    for text_id, tokens in texts:
        if vocab_hashes is not None:
            hash_matrix = vocab_hashes[:, tokens.astype(np.int64)]
        else:
            hash_matrix = family.hash_tokens_all(tokens)
        windows_per_func = generate_compact_windows_kwide(hash_matrix, t)
        for func, windows in enumerate(windows_per_func):
            if windows.size == 0:
                continue
            postings = np.empty(windows.size, dtype=POSTING_DTYPE)
            postings["text"] = text_id
            postings["left"] = windows["left"]
            postings["center"] = windows["center"]
            postings["right"] = windows["right"]
            minhashes = hash_matrix[func][windows["center"].astype(np.int64)]
            per_func[func][0].append(minhashes)
            per_func[func][1].append(postings)
    return merge_per_func_chunks(per_func)


def merge_per_func_chunks(
    per_func_chunks: list[tuple[list[np.ndarray], list[np.ndarray]]],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Concatenate per-batch ``(minhash, posting)`` chunk lists into the
    flat per-function arrays :meth:`MemoryInvertedIndex.from_postings`
    consumes."""
    per_func = []
    for minhash_chunks, posting_chunks in per_func_chunks:
        if minhash_chunks:
            per_func.append(
                (np.concatenate(minhash_chunks), np.concatenate(posting_chunks))
            )
        else:
            per_func.append(
                (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
            )
    return per_func


def build_memory_index(
    corpus: Corpus,
    family: HashFamily,
    t: int,
    *,
    vocab_size: int | None = None,
    stats: BuildStats | None = None,
    batch_texts: int = DEFAULT_BATCH_TEXTS,
) -> MemoryInvertedIndex:
    """Algorithm 1: build all ``k`` inverted indexes in memory.

    Parameters
    ----------
    corpus:
        Any :class:`~repro.corpus.corpus.Corpus`; it is streamed once in
        batches of ``batch_texts`` texts, so peak memory never holds a
        second copy of the corpus.
    family:
        The ``k`` hash functions of the index.
    t:
        Length threshold; only windows of width ``>= t`` are stored.
    vocab_size:
        Token-id space size.  Inferred from the corpus when omitted.
    stats:
        Optional accumulator for timing/size accounting.
    batch_texts:
        Texts per streamed batch.
    """
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    if vocab_size is None:
        vocab_size = infer_vocab_size(corpus)
    vocab_hashes = (
        family.hash_vocabulary(vocab_size) if vocab_size <= MAX_VOCAB_TABLE else None
    )
    per_func_chunks: list[tuple[list[np.ndarray], list[np.ndarray]]] = [
        ([], []) for _ in range(family.k)
    ]
    texts_indexed = 0
    batches = 0
    begin = time.perf_counter()
    for batch in iter_corpus_batches(corpus, batch_texts):
        per_func = generate_corpus_postings(batch, family, t, vocab_hashes)
        for func, (minhashes, postings) in enumerate(per_func):
            if postings.size:
                per_func_chunks[func][0].append(minhashes)
                per_func_chunks[func][1].append(postings)
        texts_indexed += len(batch)
        batches += 1
    generation_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    index = MemoryInvertedIndex.from_postings(
        family, t, merge_per_func_chunks(per_func_chunks)
    )
    index.num_texts = texts_indexed
    merge_seconds = time.perf_counter() - begin
    logger.info(
        "built in-memory index: %d texts, %d postings, k=%d, t=%d "
        "(generation %.2fs, merge %.2fs)",
        texts_indexed,
        index.num_postings,
        family.k,
        t,
        generation_seconds,
        merge_seconds,
    )
    if stats is not None:
        stats.windows_generated += index.num_postings
        stats.generation_seconds += generation_seconds
        stats.merge_seconds += merge_seconds
        stats.texts_indexed += texts_indexed
        stats.batches += batches
        stats.windows_per_func = [
            int(index.list_lengths(func).sum()) for func in range(family.k)
        ]
    return index


def build_and_write_index(
    corpus: Corpus,
    family: HashFamily,
    t: int,
    directory: str | Path,
    *,
    vocab_size: int | None = None,
    workers: int = 1,
    batch_texts: int = DEFAULT_BATCH_TEXTS,
    codec: str = "raw",
    dir_format: str = "sidecar",
) -> BuildStats:
    """Build in memory, then persist to ``directory`` (the Algorithm 1 flow).

    ``workers > 1`` generates windows on a process pool
    (:func:`~repro.index.parallel.build_memory_index_parallel`); the
    resulting index is identical.  ``codec="packed"`` writes the
    compressed format v2 payload.  Returns the build statistics with
    both the generation and the write-back phases timed — the
    quantities of Figure 2(i)–(l).
    """
    stats = BuildStats()
    if workers > 1:
        from repro.index.parallel import build_memory_index_parallel

        index = build_memory_index_parallel(
            corpus,
            family,
            t,
            vocab_size=vocab_size,
            workers=workers,
            batch_texts=batch_texts,
            stats=stats,
        )
    else:
        index = build_memory_index(
            corpus,
            family,
            t,
            vocab_size=vocab_size,
            stats=stats,
            batch_texts=batch_texts,
        )
    begin = time.perf_counter()
    write_index(index, directory, codec=codec, dir_format=dir_format)
    stats.io_seconds += time.perf_counter() - begin
    stats.bytes_written = index.nbytes
    return stats
