"""In-memory index construction (paper Section 3.4, Algorithm 1).

For medium-scale corpora that fit in memory, Algorithm 1 loads the
corpus, generates the valid compact windows of every text under each of
the ``k`` hash functions, groups them into inverted lists and (
optionally) writes each index to disk.  The out-of-core variant for
large corpora lives in :mod:`repro.index.external`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.compact_windows import generate_compact_windows_stack
from repro.core.hashing import HashFamily
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError
from repro.index.inverted import MemoryInvertedIndex, POSTING_BYTES, POSTING_DTYPE
from repro.index.storage import write_index

logger = logging.getLogger(__name__)


@dataclass
class BuildStats:
    """Timing and size accounting of one index build.

    The paper's Figure 2(i)–(l) splits index time into compact-window
    generation and disk I/O; builders populate both parts.
    """

    windows_generated: int = 0
    generation_seconds: float = 0.0
    io_seconds: float = 0.0
    bytes_written: int = 0
    windows_per_func: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.generation_seconds + self.io_seconds

    @property
    def index_bytes(self) -> int:
        """Logical index size (16 bytes per stored window)."""
        return self.windows_generated * POSTING_BYTES


#: Vocabularies past this size are hashed directly instead of through a
#: precomputed table (the table would cost 4 bytes x k x vocab).
MAX_VOCAB_TABLE = 1 << 24


def generate_corpus_postings(
    texts: list[tuple[int, np.ndarray]],
    family: HashFamily,
    t: int,
    vocab_hashes: np.ndarray | None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Generate per-function ``(minhash, posting)`` arrays for a batch of texts.

    ``vocab_hashes`` is the ``(k, vocab)`` table from
    :meth:`HashFamily.hash_vocabulary`; window generation indexes into
    it instead of re-hashing tokens, which is the fast path.  Pass
    ``None`` (huge token-id spaces) to hash each text's tokens directly.
    """
    per_func: list[tuple[list[np.ndarray], list[np.ndarray]]] = [
        ([], []) for _ in range(family.k)
    ]
    for text_id, tokens in texts:
        token_idx = tokens.astype(np.int64)
        for func in range(family.k):
            if vocab_hashes is not None:
                hashes = vocab_hashes[func][token_idx]
            else:
                hashes = family.hash_tokens(tokens, func)
            windows = generate_compact_windows_stack(hashes, t)
            if windows.size == 0:
                continue
            postings = np.empty(windows.size, dtype=POSTING_DTYPE)
            postings["text"] = text_id
            postings["left"] = windows["left"]
            postings["center"] = windows["center"]
            postings["right"] = windows["right"]
            minhashes = hashes[windows["center"].astype(np.int64)]
            per_func[func][0].append(minhashes)
            per_func[func][1].append(postings)
    result = []
    for minhash_chunks, posting_chunks in per_func:
        if minhash_chunks:
            result.append(
                (np.concatenate(minhash_chunks), np.concatenate(posting_chunks))
            )
        else:
            result.append(
                (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
            )
    return result


def build_memory_index(
    corpus: Corpus,
    family: HashFamily,
    t: int,
    *,
    vocab_size: int | None = None,
    stats: BuildStats | None = None,
) -> MemoryInvertedIndex:
    """Algorithm 1: build all ``k`` inverted indexes in memory.

    Parameters
    ----------
    corpus:
        Any :class:`~repro.corpus.corpus.Corpus`; it is iterated once.
    family:
        The ``k`` hash functions of the index.
    t:
        Length threshold; only windows of width ``>= t`` are stored.
    vocab_size:
        Token-id space size.  Inferred from the corpus when omitted.
    stats:
        Optional accumulator for timing/size accounting.
    """
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    if vocab_size is None:
        vocab_size = max(
            (int(text.max()) + 1 for text in corpus if text.size), default=1
        )
    vocab_hashes = (
        family.hash_vocabulary(vocab_size) if vocab_size <= MAX_VOCAB_TABLE else None
    )
    begin = time.perf_counter()
    batch = [(text_id, np.asarray(corpus[text_id])) for text_id in range(len(corpus))]
    per_func = generate_corpus_postings(batch, family, t, vocab_hashes)
    index = MemoryInvertedIndex.from_postings(family, t, per_func)
    elapsed = time.perf_counter() - begin
    logger.info(
        "built in-memory index: %d texts, %d postings, k=%d, t=%d (%.2fs)",
        len(batch),
        index.num_postings,
        family.k,
        t,
        elapsed,
    )
    if stats is not None:
        stats.windows_generated += index.num_postings
        stats.generation_seconds += elapsed
        stats.windows_per_func = [
            int(index.list_lengths(func).sum()) for func in range(family.k)
        ]
    return index


def build_and_write_index(
    corpus: Corpus,
    family: HashFamily,
    t: int,
    directory: str | Path,
    *,
    vocab_size: int | None = None,
) -> BuildStats:
    """Build in memory, then persist to ``directory`` (the Algorithm 1 flow).

    Returns the build statistics with both the generation and the
    write-back phases timed — the quantities of Figure 2(i)–(l).
    """
    stats = BuildStats()
    index = build_memory_index(
        corpus, family, t, vocab_size=vocab_size, stats=stats
    )
    begin = time.perf_counter()
    write_index(index, directory)
    stats.io_seconds += time.perf_counter() - begin
    stats.bytes_written = index.nbytes
    return stats
