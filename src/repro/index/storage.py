"""On-disk inverted-index format and reader.

Layout of an index directory:

* ``index.meta.json`` — format version, codec, ``k``, ``t``, the
  hash-family parameters, zone-map configuration, payload record count.
  The meta file is the **commit point**: it is written last, via a
  temp file + ``os.replace``, so a directory holding payload/directory
  files without it is a recognisably partial build;
* the directory — per hash function ``i``: ``keys_i`` (sorted
  ``uint32`` min-hash values), ``offsets_i`` (``uint64`` start of each
  list — a *posting index* into the payload for the ``raw`` codec, a
  *byte offset* for ``packed``) and ``counts_i`` (``uint32`` list
  lengths); plus, for every long list, its zone-map samples
  (``zm_keys_i``, ``zm_ptr_i``, ``zm_samples_i``).  Format v2 adds the
  per-block mini-directory: ``blk_first_i`` (``uint32`` first text id
  per block), ``blk_widths_i`` (``uint8 (nb, 4)`` per-column bit
  widths) and ``blk_offsets_i`` (``uint64`` absolute payload byte
  offset per block), concatenated in key order;
* ``index.postings.bin`` — the payload.  ``raw`` (format v1) stores
  concatenated 16-byte postings; ``packed`` (format v2) stores the
  bit-packed blocks of :mod:`repro.index.codec`.  Lists are contiguous
  and sorted by text id internally, but the order of lists within the
  file is arbitrary (the out-of-core builder appends them in partition
  order; the directory carries explicit offsets).

The directory ships in one of two containers: ``index.dir.bin``, a
flat page-aligned sidecar (:mod:`repro.index.sidecar`) opened with one
``mmap`` plus one ``np.frombuffer`` view per array — the default,
chosen so opens cost microseconds and N forked server processes share
a single page-cache copy — or the legacy zipped ``index.dir.npz``
archive (``dir_format="npz"``), which stays readable.  The meta file
records the committed container under its ``"directory"`` key;
pre-sidecar indexes without the key are read as ``npz``.

The reader memory-maps the payload and reads only the slices — for v2,
only the *blocks* — the searcher asks for, accounting every payload
byte in ``io_stats`` (with ``decoded_bytes`` tracking the posting
bytes produced after decompression) so the benchmarks can reproduce
the paper's I/O-vs-CPU latency split.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.exceptions import IndexFormatError, InvalidParameterError
from repro.index.codec import (
    BLOCK_POSTINGS,
    block_byte_sizes,
    block_counts,
    check_codec,
    decode_blocks,
    encode_list,
    split_blocks,
)
from repro.index.inverted import (
    IOStats,
    MemoryInvertedIndex,
    POSTING_BYTES,
    POSTING_DTYPE,
    extract_texts,
    gather_ranges,
)
from repro.index.sidecar import (
    SIDECAR_FILE as _DIR_SIDECAR_FILE,
    read_sidecar,
    write_sidecar,
)
from repro.index.zonemap import DEFAULT_STEP, ZoneMap, build_zone_map

_FORMAT_VERSION = 1
_FORMAT_VERSION_PACKED = 2
_META_FILE = "index.meta.json"
_DIR_FILE = "index.dir.npz"
_PAYLOAD_FILE = "index.postings.bin"

#: Supported directory containers: the mmap sidecar (default) and the
#: legacy zipped archive.
DIR_FORMATS = ("sidecar", "npz")

#: Lists at least this long get a zone map by default.
DEFAULT_ZONEMAP_MIN_LIST = 256


class _IndexWriter:
    """Streams inverted lists into the on-disk format.

    Both the in-memory dump (:func:`write_index`) and the out-of-core
    builder (:mod:`repro.index.external`) feed lists through this
    writer one at a time, in any key order.  With ``codec="packed"``
    every list is compressed as it is written, so the external
    builder's spill/merge pass streams straight into format v2 without
    ever materialising the raw payload.
    """

    def __init__(
        self,
        directory: str | Path,
        family: HashFamily,
        t: int,
        zonemap_step: int = DEFAULT_STEP,
        zonemap_min_list: int = DEFAULT_ZONEMAP_MIN_LIST,
        codec: str = "raw",
        dir_format: str = "sidecar",
        num_texts: int | None = None,
    ) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._family = family
        self._t = int(t)
        self._num_texts = None if num_texts is None else int(num_texts)
        self._zonemap_step = int(zonemap_step)
        self._zonemap_min_list = int(zonemap_min_list)
        self._codec = check_codec(codec)
        if dir_format not in DIR_FORMATS:
            raise InvalidParameterError(
                f"dir_format must be one of {DIR_FORMATS}, got {dir_format!r}"
            )
        self._dir_format = dir_format
        self._payload = open(self._directory / _PAYLOAD_FILE, "wb")
        self._written = 0
        self._payload_bytes = 0
        self._keys: list[list[int]] = [[] for _ in range(family.k)]
        self._offsets: list[list[int]] = [[] for _ in range(family.k)]
        self._counts: list[list[int]] = [[] for _ in range(family.k)]
        self._zm_keys: list[list[int]] = [[] for _ in range(family.k)]
        self._zm_ptr: list[list[int]] = [[] for _ in range(family.k)]
        self._zm_samples: list[list[np.ndarray]] = [[] for _ in range(family.k)]
        # v2 per-list block-directory fragments, reordered at close.
        self._blk_first: list[list[np.ndarray]] = [[] for _ in range(family.k)]
        self._blk_widths: list[list[np.ndarray]] = [[] for _ in range(family.k)]
        self._blk_offsets: list[list[np.ndarray]] = [[] for _ in range(family.k)]
        self.bytes_written = 0
        self.io_seconds = 0.0

    def write_list(self, func: int, minhash: int, postings: np.ndarray) -> None:
        """Append one inverted list (postings sorted by text id)."""
        if postings.dtype != POSTING_DTYPE:
            raise InvalidParameterError("postings must use POSTING_DTYPE")
        if self._codec == "packed":
            encoded = encode_list(postings)
            start = time.perf_counter()
            encoded.data.tofile(self._payload)
            self.io_seconds += time.perf_counter() - start
            sizes = encoded.block_sizes
            self._blk_first[func].append(encoded.first_texts)
            self._blk_widths[func].append(encoded.widths)
            self._blk_offsets[func].append(
                self._payload_bytes
                + np.concatenate(([0], np.cumsum(sizes)))[:-1].astype(np.int64)
            )
            self._offsets[func].append(self._payload_bytes)
            self._payload_bytes += int(encoded.data.size)
            self.bytes_written += int(encoded.data.size)
        else:
            start = time.perf_counter()
            postings.tofile(self._payload)
            self.io_seconds += time.perf_counter() - start
            self._offsets[func].append(self._written)
            self._payload_bytes += int(postings.size) * POSTING_BYTES
            self.bytes_written += int(postings.size) * POSTING_BYTES
        self._keys[func].append(int(minhash))
        self._counts[func].append(int(postings.size))
        if postings.size >= self._zonemap_min_list:
            zone = build_zone_map(postings["text"], self._zonemap_step)
            self._zm_keys[func].append(int(minhash))
            self._zm_ptr[func].append(
                sum(s.size for s in self._zm_samples[func])
            )
            self._zm_samples[func].append(zone.sample_texts)
        self._written += int(postings.size)

    def close(self) -> None:
        """Flush the payload and write the directory + metadata files.

        The metadata file is the commit point: it is written to a temp
        file and atomically renamed into place with ``os.replace``, so
        a crash anywhere before that leaves a directory the reader
        rejects as a partial build instead of silently misreading.
        """
        start = time.perf_counter()
        self._payload.close()
        arrays: dict[str, np.ndarray] = {}
        for func in range(self._family.k):
            keys = np.asarray(self._keys[func], dtype=np.uint32)
            offsets = np.asarray(self._offsets[func], dtype=np.uint64)
            counts = np.asarray(self._counts[func], dtype=np.uint32)
            order = np.argsort(keys, kind="stable")
            arrays[f"keys_{func}"] = keys[order]
            arrays[f"offsets_{func}"] = offsets[order]
            arrays[f"counts_{func}"] = counts[order]
            if self._codec == "packed":
                first = self._blk_first[func]
                widths = self._blk_widths[func]
                blk_offsets = self._blk_offsets[func]
                arrays[f"blk_first_{func}"] = (
                    np.concatenate([first[i] for i in order])
                    if first
                    else np.empty(0, dtype=np.uint32)
                )
                arrays[f"blk_widths_{func}"] = (
                    np.concatenate([widths[i] for i in order])
                    if widths
                    else np.empty((0, 4), dtype=np.uint8)
                )
                arrays[f"blk_offsets_{func}"] = (
                    np.concatenate([blk_offsets[i] for i in order]).astype(
                        np.uint64
                    )
                    if blk_offsets
                    else np.empty(0, dtype=np.uint64)
                )
            zm_keys = np.asarray(self._zm_keys[func], dtype=np.uint32)
            zm_ptr = np.asarray(self._zm_ptr[func] + [0], dtype=np.uint64)
            samples = (
                np.concatenate(self._zm_samples[func])
                if self._zm_samples[func]
                else np.empty(0, dtype=np.uint32)
            )
            zm_ptr[-1] = samples.size
            zm_order = np.argsort(zm_keys, kind="stable")
            arrays[f"zm_keys_{func}"] = zm_keys[zm_order]
            # Pointer pairs (start, end) per zone-mapped list, re-ordered.
            starts = zm_ptr[:-1][zm_order]
            lengths = (np.diff(zm_ptr.astype(np.int64)))[zm_order] if zm_keys.size else np.empty(0, dtype=np.int64)
            arrays[f"zm_starts_{func}"] = starts.astype(np.uint64)
            arrays[f"zm_lengths_{func}"] = lengths.astype(np.uint32) if zm_keys.size else np.empty(0, dtype=np.uint32)
            arrays[f"zm_samples_{func}"] = samples
        if self._dir_format == "sidecar":
            write_sidecar(self._directory / _DIR_SIDECAR_FILE, arrays)
        else:
            np.savez(self._directory / _DIR_FILE, **arrays)
        meta = {
            "format_version": (
                _FORMAT_VERSION_PACKED
                if self._codec == "packed"
                else _FORMAT_VERSION
            ),
            "t": self._t,
            "num_postings": self._written,
            "zonemap_step": self._zonemap_step,
            "zonemap_min_list": self._zonemap_min_list,
            "family": self._family.to_dict(),
            "directory": self._dir_format,
        }
        if self._num_texts is not None:
            meta["num_texts"] = self._num_texts
        if self._codec == "packed":
            meta["codec"] = self._codec
            meta["payload_bytes"] = self._payload_bytes
        meta_path = self._directory / _META_FILE
        temp_path = self._directory / (_META_FILE + ".tmp")
        temp_path.write_text(json.dumps(meta))
        os.replace(temp_path, meta_path)
        self.io_seconds += time.perf_counter() - start


def write_index(
    index: MemoryInvertedIndex,
    directory: str | Path,
    zonemap_step: int = DEFAULT_STEP,
    zonemap_min_list: int = DEFAULT_ZONEMAP_MIN_LIST,
    codec: str = "raw",
    dir_format: str = "sidecar",
    num_texts: int | None = None,
) -> Path:
    """Persist an in-memory index to ``directory``; returns the path.

    ``num_texts`` records the size of the text-id space in the metadata
    (defaults to the index's own ``num_texts`` attribute when the
    builder set one); readers expose it so appenders can resume id
    assignment without scanning posting lists.
    """
    if num_texts is None:
        num_texts = getattr(index, "num_texts", None)
    writer = _IndexWriter(
        directory,
        index.family,
        index.t,
        zonemap_step,
        zonemap_min_list,
        codec,
        dir_format,
        num_texts=num_texts,
    )
    for func in range(index.family.k):
        for minhash, postings in index.iter_lists(func):
            writer.write_list(func, minhash, postings)
    writer.close()
    return Path(directory)


def convert_directory(directory: str | Path, dir_format: str = "sidecar") -> Path:
    """Rewrite an index directory's container in place (npz ↔ sidecar).

    Loads whichever container is present, writes the requested one,
    removes the old file, and re-commits the metadata (temp file +
    ``os.replace``) with the new ``"directory"`` key.  The payload is
    untouched, so conversion costs one directory read + write — this
    upgrades pre-sidecar indexes without a rebuild and lets benchmarks
    compare open paths over byte-identical payloads.
    """
    directory = Path(directory)
    if dir_format not in DIR_FORMATS:
        raise InvalidParameterError(
            f"dir_format must be one of {DIR_FORMATS}, got {dir_format!r}"
        )
    meta_path = directory / _META_FILE
    if not meta_path.exists():
        raise IndexFormatError(f"missing {_META_FILE} in {directory}")
    meta = json.loads(meta_path.read_text())
    sidecar_path = directory / _DIR_SIDECAR_FILE
    npz_path = directory / _DIR_FILE
    current = meta.get("directory")
    if current is None:
        current = "sidecar" if sidecar_path.exists() else "npz"
    if current == dir_format:
        return directory
    if current == "sidecar":
        views, _mapping = read_sidecar(sidecar_path)
        # Copy out of the mapping before dropping it; np.savez would
        # otherwise hold mmap-backed views past the unlink below.
        arrays = {name: np.array(view) for name, view in views.items()}
        np.savez(npz_path, **arrays)
        sidecar_path.unlink()
    else:
        try:
            with np.load(npz_path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError) as exc:
            raise IndexFormatError(
                f"directory file {_DIR_FILE} is missing or corrupt: {exc}"
            ) from exc
        write_sidecar(sidecar_path, arrays)
        npz_path.unlink()
    meta["directory"] = dir_format
    temp_path = directory / (_META_FILE + ".tmp")
    temp_path.write_text(json.dumps(meta))
    os.replace(temp_path, meta_path)
    return directory


class DiskInvertedIndex:
    """Memory-mapped reader of an on-disk index with I/O accounting.

    Dispatches on the directory's codec: ``raw`` (format v1) payloads
    are mapped as posting records and sliced directly; ``packed``
    (format v2) payloads are mapped as bytes and every read decodes
    only the blocks covering the requested posting range, so the
    zone-map point-read paths keep their sub-list I/O.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        meta_path = self._directory / _META_FILE
        payload_path = self._directory / _PAYLOAD_FILE
        if not meta_path.exists():
            leftovers = [
                name
                for name in (_PAYLOAD_FILE, _DIR_SIDECAR_FILE, _DIR_FILE)
                if (self._directory / name).exists()
            ]
            if leftovers:
                raise IndexFormatError(
                    f"{self._directory} has {', '.join(leftovers)} but no "
                    f"{_META_FILE} — likely a partial build (the writer "
                    "crashed before the metadata commit point); rebuild the "
                    "index"
                )
            raise IndexFormatError(f"missing {_META_FILE} in {self._directory}")
        meta = json.loads(meta_path.read_text())
        version = meta.get("format_version")
        if version not in (_FORMAT_VERSION, _FORMAT_VERSION_PACKED):
            raise IndexFormatError(
                f"unsupported index format version {version!r}"
            )
        self._codec = meta.get("codec", "raw")
        if self._codec not in ("raw", "packed") or (
            (self._codec == "packed") != (version == _FORMAT_VERSION_PACKED)
        ):
            raise IndexFormatError(
                f"unsupported codec {self._codec!r} for format version {version}"
            )
        self.family = HashFamily.from_dict(meta["family"])
        self.t = int(meta["t"])
        self._num_postings = int(meta["num_postings"])
        raw_num_texts = meta.get("num_texts")
        self._num_texts = None if raw_num_texts is None else int(raw_num_texts)
        self._zonemap_step = int(meta["zonemap_step"])
        # Stat the payload exactly once; a vanished or unreadable file
        # surfaces as a format error, not a raw FileNotFoundError.
        try:
            payload_size = payload_path.stat().st_size
        except OSError as exc:
            raise IndexFormatError(
                f"payload file {_PAYLOAD_FILE} is missing or unreadable "
                f"in {self._directory}: {exc}"
            ) from exc
        if self._codec == "packed":
            self._payload_bytes = int(meta["payload_bytes"])
            if payload_size != self._payload_bytes:
                raise IndexFormatError(
                    f"payload has {payload_size} bytes, "
                    f"expected {self._payload_bytes} (truncated or corrupt)"
                )
            if self._payload_bytes:
                self._payload = np.memmap(payload_path, dtype=np.uint8, mode="r")
            else:
                self._payload = np.empty(0, dtype=np.uint8)
        else:
            self._payload_bytes = self._num_postings * POSTING_BYTES
            if payload_size != self._payload_bytes:
                raise IndexFormatError(
                    f"payload has {payload_size} bytes, "
                    f"expected {self._payload_bytes}"
                )
            if self._num_postings:
                self._payload = np.memmap(payload_path, dtype=POSTING_DTYPE, mode="r")
            else:
                self._payload = np.empty(0, dtype=POSTING_DTYPE)
        declared = meta.get("directory")
        if declared is None:
            # Pre-sidecar metadata: infer the container from the files.
            declared = (
                "sidecar"
                if (self._directory / _DIR_SIDECAR_FILE).exists()
                else "npz"
            )
        if declared not in DIR_FORMATS:
            raise IndexFormatError(
                f"unsupported directory container {declared!r}"
            )
        self._dir_format = declared
        self._dir_map = None
        arrays = self._load_directory()
        try:
            self._keys = [arrays[f"keys_{f}"] for f in range(self.family.k)]
            self._offsets = [arrays[f"offsets_{f}"] for f in range(self.family.k)]
            self._counts = [arrays[f"counts_{f}"] for f in range(self.family.k)]
            if self._codec == "packed":
                self._blk_first = [
                    arrays[f"blk_first_{f}"] for f in range(self.family.k)
                ]
                self._blk_widths = [
                    arrays[f"blk_widths_{f}"].reshape(-1, 4)
                    for f in range(self.family.k)
                ]
                self._blk_offsets = [
                    arrays[f"blk_offsets_{f}"] for f in range(self.family.k)
                ]
            self._zm_keys = [arrays[f"zm_keys_{f}"] for f in range(self.family.k)]
            self._zm_starts = [
                arrays[f"zm_starts_{f}"] for f in range(self.family.k)
            ]
            self._zm_lengths = [
                arrays[f"zm_lengths_{f}"] for f in range(self.family.k)
            ]
            self._zm_samples = [
                arrays[f"zm_samples_{f}"] for f in range(self.family.k)
            ]
        except KeyError as exc:
            raise IndexFormatError(
                f"index directory is missing array {exc} "
                f"(container: {self._dir_format})"
            ) from exc
        directory_total = sum(int(c.sum()) for c in self._counts)
        if directory_total != self._num_postings:
            raise IndexFormatError(
                f"directory accounts for {directory_total} postings, "
                f"metadata says {self._num_postings}"
            )
        if self._codec == "packed":
            # Block pointer per list: cumulative block counts in key order.
            self._blk_ptr = []
            for func in range(self.family.k):
                per_list = (
                    self._counts[func].astype(np.int64) + BLOCK_POSTINGS - 1
                ) // BLOCK_POSTINGS
                ptr = np.concatenate(([0], np.cumsum(per_list)))
                if int(ptr[-1]) != int(self._blk_first[func].size):
                    raise IndexFormatError(
                        f"block directory of function {func} holds "
                        f"{self._blk_first[func].size} blocks, counts imply "
                        f"{int(ptr[-1])}"
                    )
                self._blk_ptr.append(ptr)
        self.io_stats = IOStats()
        # Optional decoded-block tier (attach via enable_block_cache);
        # the namespace keeps shared caches correct across readers.
        self._block_cache = None
        self._block_ns = str(payload_path)

    def _load_directory(self) -> dict[str, np.ndarray]:
        """All directory arrays, from whichever container committed.

        The sidecar path is zero-copy: one ``mmap`` shared by every
        returned view (kept alive via ``self._dir_map``), no
        decompression.  The legacy ``.npz`` path decompresses each
        array into a private heap copy, exactly as before.
        """
        if self._dir_format == "sidecar":
            try:
                arrays, self._dir_map = read_sidecar(
                    self._directory / _DIR_SIDECAR_FILE
                )
            except IndexFormatError as exc:
                raise IndexFormatError(
                    f"directory sidecar {_DIR_SIDECAR_FILE} is missing or "
                    f"corrupt: {exc}"
                ) from exc
            return arrays
        try:
            with np.load(self._directory / _DIR_FILE) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError) as exc:
            raise IndexFormatError(
                f"directory file {_DIR_FILE} is missing or corrupt: {exc}"
            ) from exc

    # -- reader protocol ------------------------------------------------
    def _slot(self, func: int, minhash: int) -> int:
        keys = self._keys[func]
        pos = int(np.searchsorted(keys, minhash))
        if pos < keys.size and int(keys[pos]) == int(minhash):
            return pos
        return -1

    def list_length(self, func: int, minhash: int) -> int:
        slot = self._slot(func, minhash)
        if slot < 0:
            return 0
        return int(self._counts[func][slot])

    # -- decoded-block tier ---------------------------------------------
    def enable_block_cache(self, cache) -> None:
        """Attach (or detach with ``None``) a decoded-block cache.

        Packed codec only — the raw codec never decodes, so there is
        nothing to cache and the call is a no-op.  The cache may be
        shared with other readers; this reader's payload path is its
        namespace within it.
        """
        self._block_cache = cache if self._codec == "packed" else None

    @property
    def block_cache(self):
        """The attached decoded-block cache, or ``None``."""
        return self._block_cache

    def _decode_span(self, func: int, slot: int, blk_lo: int, blk_hi: int) -> np.ndarray:
        """Decode blocks ``[blk_lo, blk_hi)`` (list-relative) of one list.

        Returns the covered postings in text order and accounts the
        compressed bytes touched vs. posting bytes produced.
        """
        count = int(self._counts[func][slot])
        num_blocks = (count + BLOCK_POSTINGS - 1) // BLOCK_POSTINGS
        blk_hi = min(blk_hi, num_blocks)
        if blk_lo >= blk_hi:
            return np.empty(0, dtype=POSTING_DTYPE)
        blocks = np.arange(blk_lo, blk_hi, dtype=np.int64)
        counts = np.full(blk_hi - blk_lo, BLOCK_POSTINGS, dtype=np.int64)
        if blk_hi == num_blocks:
            counts[-1] = count - (num_blocks - 1) * BLOCK_POSTINGS
        return self._decode_indexed_blocks(func, slot, blocks, counts)

    def _decode_indexed_blocks(
        self, func: int, slot: int, blocks: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Decode the named list-relative blocks of one list.

        With a block cache attached, resident blocks are served as-is
        (no compressed bytes read, no decoded bytes produced — that is
        the saved work ``IOStats.decoded_bytes`` makes visible) and only
        the cold blocks go through one grouped decode, which then
        populates the cache.
        """
        cache = self._block_cache
        if cache is None:
            return self._decode_raw_blocks(func, slot, blocks, counts)
        minhash = int(self._keys[func][slot])
        found, missing_mask = cache.get_blocks(
            self._block_ns, func, minhash, blocks
        )
        if missing_mask.any():
            missing = blocks[missing_mask]
            missing_counts = counts[missing_mask]
            decoded = self._decode_raw_blocks(func, slot, missing, missing_counts)
            parts = split_blocks(decoded, missing_counts)
            cache.put_blocks(self._block_ns, func, minhash, missing.tolist(), parts)
            for block, part in zip(missing.tolist(), parts):
                found[int(block)] = part
        ordered = [found[int(block)] for block in blocks]
        if len(ordered) == 1:
            return ordered[0]
        return np.concatenate(ordered)

    def _decode_raw_blocks(
        self, func: int, slot: int, blocks: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """One grouped codec decode of the named blocks, with accounting."""
        base = int(self._blk_ptr[func][slot])
        widths = self._blk_widths[func][base + blocks]
        begin = time.perf_counter()
        decoded = decode_blocks(
            self._payload,
            self._blk_offsets[func][base + blocks],
            counts,
            widths,
            self._blk_first[func][base + blocks],
        )
        self.io_stats.add(
            int(block_byte_sizes(counts, widths).sum()),
            time.perf_counter() - begin,
            decoded=decoded.size * POSTING_BYTES,
        )
        return decoded

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        slot = self._slot(func, minhash)
        if slot < 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        count = int(self._counts[func][slot])
        if self._codec == "packed":
            num_blocks = (count + BLOCK_POSTINGS - 1) // BLOCK_POSTINGS
            return self._decode_span(func, slot, 0, num_blocks)
        start = int(self._offsets[func][slot])
        begin = time.perf_counter()
        # Zero-copy: a read-only view into the payload mapping, shared
        # with the page cache (and with sibling prefork workers).
        chunk = self._payload[start : start + count]
        self.io_stats.add(count * POSTING_BYTES, time.perf_counter() - begin)
        return chunk

    def zone_map(self, func: int, minhash: int) -> ZoneMap | None:
        """The zone map of one list, or ``None`` if the list is short/absent."""
        zm_keys = self._zm_keys[func]
        pos = int(np.searchsorted(zm_keys, minhash))
        if pos >= zm_keys.size or int(zm_keys[pos]) != int(minhash):
            return None
        start = int(self._zm_starts[func][pos])
        length = int(self._zm_lengths[func][pos])
        samples = self._zm_samples[func][start : start + length]
        return ZoneMap(
            sample_texts=samples,
            step=self._zonemap_step,
            length=self.list_length(func, minhash),
        )

    def load_text_windows(self, func: int, minhash: int, text_id: int) -> np.ndarray:
        slot = self._slot(func, minhash)
        if slot < 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        count = int(self._counts[func][slot])
        zone = self.zone_map(func, minhash)
        if zone is not None:
            lo, hi = zone.locate(text_id)
        else:
            lo, hi = 0, count
        if self._codec == "packed":
            chunk = self._decode_span(
                func,
                slot,
                lo // BLOCK_POSTINGS,
                (hi + BLOCK_POSTINGS - 1) // BLOCK_POSTINGS,
            )
        else:
            start = int(self._offsets[func][slot])
            begin = time.perf_counter()
            chunk = self._payload[start + lo : start + hi]
            elapsed = time.perf_counter() - begin
            self.io_stats.add(max(hi - lo, 0) * POSTING_BYTES, elapsed)
        left = int(np.searchsorted(chunk["text"], text_id, side="left"))
        right = int(np.searchsorted(chunk["text"], text_id, side="right"))
        return chunk[left:right]

    def sketch_list_lengths(self, sketch: np.ndarray) -> np.ndarray:
        """Lengths of the k lists named by one query sketch.

        One pass over the in-memory directory arrays — no payload I/O,
        and a single call replaces the per-function lookup loop on the
        query hot path.
        """
        lengths = np.zeros(self.family.k, dtype=np.int64)
        for func in range(self.family.k):
            keys = self._keys[func]
            minhash = int(sketch[func])
            pos = int(np.searchsorted(keys, minhash))
            if pos < keys.size and int(keys[pos]) == minhash:
                lengths[func] = int(self._counts[func][pos])
        return lengths

    def load_texts_windows(
        self, func: int, minhash: int, text_ids: np.ndarray
    ) -> np.ndarray:
        """Postings of every text in ``text_ids`` within one list.

        The batched form of :meth:`load_text_windows`: the zone map is
        resolved once, the per-text posting ranges are merged into
        maximal contiguous runs, and each run is read from the payload
        with one ranged read — ``O(runs)`` I/O calls for the whole
        candidate set instead of one point read per text.  For the
        packed codec the runs are rounded to block boundaries and every
        touched block is decoded in a single grouped kernel call.
        Postings come back sorted by text id (runs are ascending slices
        of a text-sorted list).
        """
        slot = self._slot(func, minhash)
        if slot < 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        start = int(self._offsets[func][slot])
        count = int(self._counts[func][slot])
        text_ids = np.unique(np.asarray(text_ids))
        zone = self.zone_map(func, minhash)
        begin = time.perf_counter()
        if zone is None:
            lo = np.zeros(1, dtype=np.int64)
            hi = np.full(1, count, dtype=np.int64)
        else:
            lo, hi = zone.locate_many(text_ids)
            nonempty = hi > lo
            lo, hi = lo[nonempty], hi[nonempty]
        if lo.size == 0:
            self.io_stats.add(0, time.perf_counter() - begin)
            return np.empty(0, dtype=POSTING_DTYPE)
        # Merge overlapping/adjacent zone ranges into contiguous runs.
        run_start = np.zeros(lo.size, dtype=bool)
        run_start[0] = True
        if lo.size > 1:
            run_start[1:] = lo[1:] > np.maximum.accumulate(hi)[:-1]
        run_lo = lo[run_start]
        run_hi = np.maximum.reduceat(hi, np.flatnonzero(run_start))
        if self._codec == "packed":
            buffer = self._decode_block_runs(func, slot, count, run_lo, run_hi)
            return extract_texts(buffer, text_ids)
        parts = []
        for run_begin, run_end in zip(run_lo.tolist(), run_hi.tolist()):
            tick = time.perf_counter()
            part = self._payload[start + run_begin : start + run_end]
            self.io_stats.add(part.size * POSTING_BYTES, time.perf_counter() - tick)
            parts.append(part)
        buffer = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return extract_texts(buffer, text_ids)

    def _decode_block_runs(
        self,
        func: int,
        slot: int,
        count: int,
        run_lo: np.ndarray,
        run_hi: np.ndarray,
    ) -> np.ndarray:
        """Decode the blocks covering posting runs of one packed list.

        Posting-index runs become block-index runs (re-merged, since
        rounding to :data:`BLOCK_POSTINGS` can make neighbours touch),
        and every touched block goes through one grouped
        :func:`~repro.index.codec.decode_blocks` call.
        """
        num_blocks = (count + BLOCK_POSTINGS - 1) // BLOCK_POSTINGS
        blk_lo = run_lo // BLOCK_POSTINGS
        blk_hi = np.minimum(
            (run_hi + BLOCK_POSTINGS - 1) // BLOCK_POSTINGS, num_blocks
        )
        keep = blk_hi > blk_lo
        blk_lo, blk_hi = blk_lo[keep], blk_hi[keep]
        if blk_lo.size == 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        merge_start = np.zeros(blk_lo.size, dtype=bool)
        merge_start[0] = True
        if blk_lo.size > 1:
            merge_start[1:] = blk_lo[1:] > np.maximum.accumulate(blk_hi)[:-1]
        merged_lo = blk_lo[merge_start]
        merged_hi = np.maximum.reduceat(blk_hi, np.flatnonzero(merge_start))
        spans = (merged_hi - merged_lo).astype(np.int64)
        blocks = np.repeat(merged_lo - np.cumsum(spans) + spans, spans) + np.arange(
            int(spans.sum()), dtype=np.int64
        )
        counts = np.full(blocks.size, BLOCK_POSTINGS, dtype=np.int64)
        last = count - (num_blocks - 1) * BLOCK_POSTINGS
        counts[blocks == num_blocks - 1] = last
        return self._decode_indexed_blocks(func, slot, blocks, counts)

    # -- introspection ------------------------------------------------
    @property
    def directory(self) -> Path:
        """The index directory (lets batch workers re-open the index)."""
        return self._directory

    @property
    def codec(self) -> str:
        """Payload codec: ``raw`` (format v1) or ``packed`` (format v2)."""
        return self._codec

    @property
    def directory_format(self) -> str:
        """Directory container backing this reader: ``sidecar`` or ``npz``."""
        return self._dir_format

    @property
    def num_postings(self) -> int:
        return self._num_postings

    @property
    def num_texts(self) -> int | None:
        """Size of the text-id space, or ``None`` for legacy metadata.

        Indexes written before the key existed fall back to scanning
        (see :meth:`repro.index.incremental.IncrementalIndex`).
        """
        return self._num_texts

    @property
    def nbytes(self) -> int:
        """Payload bytes on disk (the paper's index-size metric)."""
        return self._payload_bytes

    def list_lengths(self, func: int) -> np.ndarray:
        return np.asarray(self._counts[func])

    def list_keys(self, func: int) -> np.ndarray:
        """Min-hash keys of one function's lists, aligned with
        :meth:`list_lengths` (cache warmup enumerates hot lists here)."""
        return np.asarray(self._keys[func])

    def to_memory(self) -> MemoryInvertedIndex:
        """Load the entire index into a :class:`MemoryInvertedIndex`.

        One vectorized gather (raw) or one grouped block decode
        (packed) per hash function — no per-list Python loop.
        """
        per_func = []
        for func in range(self.family.k):
            counts = self._counts[func].astype(np.int64)
            minhashes = np.repeat(self._keys[func], counts)
            if self._codec == "packed":
                postings = self._decode_all(func)
            else:
                postings = gather_ranges(
                    self._payload, self._offsets[func].astype(np.int64), counts
                )
                postings = np.array(postings) if postings.size else np.empty(
                    0, dtype=POSTING_DTYPE
                )
            per_func.append((minhashes.astype(np.uint32), postings))
        return MemoryInvertedIndex.from_postings(self.family, self.t, per_func)

    def _decode_all(self, func: int) -> np.ndarray:
        """Decode every block of one hash function in a single call."""
        list_counts = self._counts[func].astype(np.int64)
        ptr = self._blk_ptr[func]
        total_blocks = int(ptr[-1])
        if total_blocks == 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        counts = np.full(total_blocks, BLOCK_POSTINGS, dtype=np.int64)
        per_list = ptr[1:] - ptr[:-1]
        has_blocks = per_list > 0
        last_block = (ptr[1:] - 1)[has_blocks]
        counts[last_block] = (
            list_counts[has_blocks]
            - (per_list[has_blocks] - 1) * BLOCK_POSTINGS
        )
        return decode_blocks(
            self._payload,
            self._blk_offsets[func],
            counts,
            self._blk_widths[func],
            self._blk_first[func],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskInvertedIndex({str(self._directory)!r}, k={self.family.k}, "
            f"t={self.t}, postings={self.num_postings}, codec={self._codec})"
        )
