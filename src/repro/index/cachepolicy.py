"""Cache residency policies shared by the list and block tiers.

Two interchangeable policies decide what stays resident in a
byte-budgeted cache:

``lru``
    Plain least-recently-used: every admission is accepted and evicts
    from the cold end until the new entry fits.  Simple and right for
    workloads without scans, but a single pass over many one-shot keys
    flushes the whole working set.

``tinylfu``
    W-TinyLFU (Einziger et al.): a small LRU *window* absorbs new
    arrivals, and graduation into the segmented-LRU *main* region
    (probation + protected) is decided by comparing the candidate's
    estimated access frequency against the eviction victim's.  The
    frequency estimate comes from a :class:`FrequencySketch` — a 4-bit
    count-min sketch with periodic halving, so one-shot scan keys
    (frequency ~1) can never displace the Zipf-head working set
    (frequency ≫ 1), while genuinely shifting workloads age in through
    the halving.

Policies only track *residency order and byte accounting*; the owning
cache stores the values and holds the lock — every policy method must
be called with that lock held.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterable

import numpy as np

from repro.exceptions import InvalidParameterError

#: Policy names accepted by every tier (``policy=`` knobs, CLI flags).
CACHE_POLICIES = ("lru", "tinylfu")

_MASK64 = (1 << 64) - 1
#: Distinct odd multipliers for the sketch's four hash rows
#: (Fibonacci/golden-ratio style multiplicative hashing).
_ROW_SEEDS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
)


class FrequencySketch:
    """4-bit count-min sketch with periodic halving (TinyLFU aging).

    Four hash rows of ``width`` counters each, capped at 15 (4 bits of
    information per counter, stored one-per-byte for simplicity).  After
    ``sample_period`` increments every counter is halved, so the sketch
    estimates *recent* frequency: a key that stopped being touched
    decays toward zero instead of staying hot forever.
    """

    ROWS = len(_ROW_SEEDS)
    MAX_COUNT = 15

    def __init__(self, width: int = 4096) -> None:
        if width < 16:
            raise InvalidParameterError(f"sketch width must be >= 16, got {width}")
        # Round up to a power of two so row indexing is a shift.
        self.width = 1 << (int(width) - 1).bit_length()
        self._shift = 64 - self.width.bit_length() + 1
        self._table = np.zeros(self.ROWS * self.width, dtype=np.uint8)
        self.sample_period = 10 * self.width
        self._ops = 0
        self.ages = 0

    def _positions(self, key: Hashable) -> list[int]:
        mixed = hash(key) & _MASK64
        return [
            row * self.width + (((mixed * seed) & _MASK64) >> self._shift)
            for row, seed in enumerate(_ROW_SEEDS)
        ]

    def increment(self, key: Hashable) -> None:
        table = self._table
        for position in self._positions(key):
            if table[position] < self.MAX_COUNT:
                table[position] += 1
        self._ops += 1
        if self._ops >= self.sample_period:
            self._age()

    def estimate(self, key: Hashable) -> int:
        table = self._table
        return min(int(table[position]) for position in self._positions(key))

    def _age(self) -> None:
        """Halve every counter: the periodic reset that keeps estimates
        tracking the recent window instead of all of history."""
        self._table >>= 1
        self._ops //= 2
        self.ages += 1


def _first_unpinned(
    segment: "OrderedDict[Hashable, int]", is_pinned: Callable[[Hashable], bool]
) -> Hashable | None:
    for key in segment:
        if not is_pinned(key):
            return key
    return None


class LruPolicy:
    """Classic LRU over one byte budget (the pre-tiered behaviour)."""

    name = "lru"

    def __init__(
        self,
        capacity_bytes: int,
        is_pinned: Callable[[Hashable], bool] | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise InvalidParameterError("capacity_bytes must be positive")
        self.capacity = int(capacity_bytes)
        self._is_pinned = is_pinned or (lambda key: False)
        self._entries: OrderedDict[Hashable, int] = OrderedDict()
        self.used_bytes = 0
        self.admission_rejections = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterable[Hashable]:
        return self._entries.keys()

    def on_hit(self, key: Hashable) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)

    def admit(self, key: Hashable, nbytes: int) -> tuple[bool, list[Hashable]]:
        """Try to make ``key`` resident; returns ``(resident, evicted)``.

        ``evicted`` never contains ``key`` itself — a rejected candidate
        simply is not resident afterwards.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            return True, []
        nbytes = int(nbytes)
        if nbytes > self.capacity:
            self.admission_rejections += 1
            return False, []
        evicted: list[Hashable] = []
        while self.used_bytes + nbytes > self.capacity and self._entries:
            victim = _first_unpinned(self._entries, self._is_pinned)
            if victim is None:
                self.admission_rejections += 1
                return False, evicted
            self.used_bytes -= self._entries.pop(victim)
            evicted.append(victim)
        self._entries[key] = nbytes
        self.used_bytes += nbytes
        return True, evicted

    # Plain LRU admits unconditionally, so a forced (pin) admission is
    # the ordinary one.
    force = admit

    def remove(self, key: Hashable) -> None:
        nbytes = self._entries.pop(key, None)
        if nbytes is not None:
            self.used_bytes -= nbytes

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0


class TinyLfuPolicy:
    """W-TinyLFU: window LRU + frequency-gated segmented-LRU main region.

    Layout (byte budgets)::

        |-- window (~1%) --|------------- main -------------|
                           |-- probation --|-- protected ---|

    New keys enter the window; when the window overflows, its LRU
    candidate *contests* entry to the main region against the main
    region's own LRU victim: the candidate graduates only when the
    frequency sketch says it is touched strictly more often.  A losing
    candidate is dropped (an **admission rejection**) — this is what
    stops a one-shot giant-list scan from flushing the Zipf head.
    Inside main, a probation hit promotes to protected; protected
    overflow demotes back to probation (classic segmented LRU).
    """

    name = "tinylfu"

    #: Fraction of the budget given to the admission window.
    WINDOW_FRACTION = 0.01
    #: Fraction of the main region reserved for the protected segment.
    PROTECTED_FRACTION = 0.8

    def __init__(
        self,
        capacity_bytes: int,
        is_pinned: Callable[[Hashable], bool] | None = None,
        *,
        sketch_width: int | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise InvalidParameterError("capacity_bytes must be positive")
        self.capacity = int(capacity_bytes)
        self._is_pinned = is_pinned or (lambda key: False)
        self.window_capacity = max(int(self.capacity * self.WINDOW_FRACTION), 1)
        self.main_capacity = max(self.capacity - self.window_capacity, 1)
        self.protected_capacity = int(self.main_capacity * self.PROTECTED_FRACTION)
        if sketch_width is None:
            # ~one counter per plausible resident entry, bounded so a
            # huge budget does not allocate a huge sketch.
            sketch_width = min(max(self.capacity // 2048, 1024), 1 << 20)
        self.sketch = FrequencySketch(sketch_width)
        self._window: OrderedDict[Hashable, int] = OrderedDict()
        self._probation: OrderedDict[Hashable, int] = OrderedDict()
        self._protected: OrderedDict[Hashable, int] = OrderedDict()
        self._window_bytes = 0
        self._probation_bytes = 0
        self._protected_bytes = 0
        self.admission_rejections = 0

    # -- introspection --------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._window_bytes + self._probation_bytes + self._protected_bytes

    def __contains__(self, key: Hashable) -> bool:
        return (
            key in self._window or key in self._probation or key in self._protected
        )

    def __len__(self) -> int:
        return len(self._window) + len(self._probation) + len(self._protected)

    def keys(self) -> Iterable[Hashable]:
        yield from self._window
        yield from self._probation
        yield from self._protected

    # -- accesses -------------------------------------------------------
    def on_hit(self, key: Hashable) -> None:
        self.sketch.increment(key)
        if key in self._window:
            self._window.move_to_end(key)
        elif key in self._probation:
            # Second touch while on probation: promote to protected.
            nbytes = self._probation.pop(key)
            self._probation_bytes -= nbytes
            self._protected[key] = nbytes
            self._protected_bytes += nbytes
            self._shrink_protected()
        elif key in self._protected:
            self._protected.move_to_end(key)

    def _shrink_protected(self) -> None:
        """Demote protected-LRU entries while over the protected budget.

        Demotion moves bytes *within* main, so it can never overflow the
        total budget — it only refreshes what the next contest victim is.
        """
        while self._protected_bytes > self.protected_capacity:
            victim = _first_unpinned(self._protected, self._is_pinned)
            if victim is None:
                return
            nbytes = self._protected.pop(victim)
            self._protected_bytes -= nbytes
            self._probation[victim] = nbytes
            self._probation_bytes += nbytes

    # -- admission ------------------------------------------------------
    def admit(self, key: Hashable, nbytes: int) -> tuple[bool, list[Hashable]]:
        """Window admission followed by frequency-gated graduation."""
        self.sketch.increment(key)
        if key in self:
            self.on_hit(key)
            return True, []
        nbytes = int(nbytes)
        if nbytes > self.capacity:
            self.admission_rejections += 1
            return False, []
        evicted: list[Hashable] = []
        self._window[key] = nbytes
        self._window_bytes += nbytes
        self._drain_window(evicted)
        return key in self, evicted

    def _drain_window(self, evicted: list[Hashable]) -> None:
        while self._window_bytes > self.window_capacity and self._window:
            candidate = _first_unpinned(self._window, self._is_pinned)
            if candidate is None:
                return
            cand_bytes = self._window.pop(candidate)
            self._window_bytes -= cand_bytes
            if not self._contest(candidate, cand_bytes, evicted):
                self.admission_rejections += 1
                evicted.append(candidate)

    def _contest(
        self, candidate: Hashable, nbytes: int, evicted: list[Hashable]
    ) -> bool:
        """Admission duel: candidate vs successive main-region victims.

        The candidate must *strictly* beat every victim it displaces —
        ties lose, which is what keeps frequency-1 scan keys out.
        """
        if nbytes > self.main_capacity:
            return False
        frequency = self.sketch.estimate(candidate)
        while (
            self._probation_bytes + self._protected_bytes + nbytes
            > self.main_capacity
        ):
            victim_segment = self._probation
            victim = _first_unpinned(self._probation, self._is_pinned)
            if victim is None:
                victim_segment = self._protected
                victim = _first_unpinned(self._protected, self._is_pinned)
            if victim is None:
                return False
            if self.sketch.estimate(victim) >= frequency:
                return False
            victim_bytes = victim_segment.pop(victim)
            if victim_segment is self._probation:
                self._probation_bytes -= victim_bytes
            else:
                self._protected_bytes -= victim_bytes
            evicted.append(victim)
        self._probation[candidate] = nbytes
        self._probation_bytes += nbytes
        return True

    def force(self, key: Hashable, nbytes: int) -> tuple[bool, list[Hashable]]:
        """Admission that bypasses the frequency gate (batch pinning).

        Pinned lists are a correctness contract with the batch planner
        — the frequency sketch has no vote.  Evicts coldest unpinned
        entries (window, then probation, then protected) until the key
        fits, straight into the probation segment.
        """
        self.sketch.increment(key)
        if key in self:
            self.on_hit(key)
            return True, []
        nbytes = int(nbytes)
        if nbytes > self.capacity:
            return False, []
        evicted: list[Hashable] = []
        while self.used_bytes + nbytes > self.capacity:
            for segment, attr in (
                (self._window, "_window_bytes"),
                (self._probation, "_probation_bytes"),
                (self._protected, "_protected_bytes"),
            ):
                victim = _first_unpinned(segment, self._is_pinned)
                if victim is not None:
                    setattr(self, attr, getattr(self, attr) - segment.pop(victim))
                    evicted.append(victim)
                    break
            else:
                return False, evicted
        self._probation[key] = nbytes
        self._probation_bytes += nbytes
        return True, evicted

    def remove(self, key: Hashable) -> None:
        for segment, attr in (
            (self._window, "_window_bytes"),
            (self._probation, "_probation_bytes"),
            (self._protected, "_protected_bytes"),
        ):
            nbytes = segment.pop(key, None)
            if nbytes is not None:
                setattr(self, attr, getattr(self, attr) - nbytes)
                return

    def clear(self) -> None:
        self._window.clear()
        self._probation.clear()
        self._protected.clear()
        self._window_bytes = 0
        self._probation_bytes = 0
        self._protected_bytes = 0


def check_cache_policy(policy: str) -> str:
    """Validate a policy name (mirrors ``codec.check_codec``)."""
    if policy not in CACHE_POLICIES:
        raise InvalidParameterError(
            f"policy must be one of {CACHE_POLICIES}, got {policy!r}"
        )
    return policy


def make_policy(
    policy: str,
    capacity_bytes: int,
    is_pinned: Callable[[Hashable], bool] | None = None,
):
    """Build the residency policy named by ``policy`` (``lru``/``tinylfu``)."""
    if policy == "lru":
        return LruPolicy(capacity_bytes, is_pinned)
    if policy == "tinylfu":
        return TinyLfuPolicy(capacity_bytes, is_pinned)
    raise InvalidParameterError(
        f"policy must be one of {CACHE_POLICIES}, got {policy!r}"
    )
