"""Index statistics and prefix-filter cutoff selection.

The paper's Section 3.5 observes that token frequencies follow Zipf's
law, so a few inverted lists are very long; the prefix length (which
lists to treat as "long") trades I/O for CPU (Figure 3(d)).  This
module summarizes list-length distributions and derives cutoffs from a
"fraction of most frequent tokens" specification like the paper's
5%–20% sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class IndexSummary:
    """Aggregate shape of an inverted index."""

    k: int
    t: int
    num_postings: int
    num_lists: int
    max_list_length: int
    mean_list_length: float
    nbytes: int

    @classmethod
    def from_index(cls, index) -> "IndexSummary":
        lengths = all_list_lengths(index)
        num_lists = int(lengths.size)
        return cls(
            k=index.family.k,
            t=index.t,
            num_postings=int(index.num_postings),
            num_lists=num_lists,
            max_list_length=int(lengths.max()) if num_lists else 0,
            mean_list_length=float(lengths.mean()) if num_lists else 0.0,
            nbytes=int(index.nbytes),
        )


def all_list_lengths(index) -> np.ndarray:
    """Concatenated list lengths across all ``k`` inverted indexes."""
    parts = [index.list_lengths(func) for func in range(index.family.k)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


def cutoff_for_top_fraction(index, fraction: float) -> int:
    """List-length cutoff marking the top-``fraction`` of postings as long.

    Mirrors the paper's prefix lengths ("5% most frequent tokens to 20%
    most frequent ones"): returns the smallest length ``L`` such that
    the lists longer than ``L`` together contain at most ``fraction``
    of all postings.  A query list longer than the returned cutoff is
    prefix-filtered.
    """
    if not 0.0 <= fraction < 1.0:
        raise InvalidParameterError(f"fraction must be in [0, 1), got {fraction}")
    lengths = np.sort(all_list_lengths(index))
    if lengths.size == 0:
        return 0
    total = int(lengths.sum())
    if total == 0:
        return 0
    allowed = fraction * total
    running = 0
    # Walk from the longest list downward, accumulating posting mass.
    for rank in range(lengths.size - 1, -1, -1):
        running += int(lengths[rank])
        if running > allowed:
            return int(lengths[rank])
    return 0


def zipf_tail_report(index, top: int = 10) -> list[tuple[int, int]]:
    """The ``top`` longest lists as ``(rank, length)`` pairs.

    Useful to eyeball the Zipf skew the paper's prefix filter exploits.
    """
    lengths = np.sort(all_list_lengths(index))[::-1]
    return [(rank + 1, int(length)) for rank, length in enumerate(lengths[:top])]
