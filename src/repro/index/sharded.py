"""Sharded index: partition the corpus, query the shards, merge.

The paper scales index *construction* with per-thread private buffers
(Section 3.4); scaling the *index itself* beyond one machine's memory
or disk follows the same pattern — partition the corpus into shards of
contiguous text-id ranges, build an independent index per shard, and
fan every query out to all shards.  Compact windows never cross texts,
so the union of per-shard answers is exactly the single-index answer.

:class:`ShardedIndex` also implements the reader protocol, so a single
:class:`~repro.core.search.NearDuplicateSearcher` *could* run over it;
but fanning out one searcher per shard keeps per-shard prefix filtering
local (each shard has its own Zipf head), which is what
:class:`ShardedSearcher` does.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.corpus.corpus import Corpus, InMemoryCorpus, infer_vocab_size
from repro.exceptions import InvalidParameterError
from repro.index.builder import DEFAULT_BATCH_TEXTS, build_memory_index
from repro.index.codec import check_codec

# NOTE: repro.core.search imports repro.index.inverted, whose package
# __init__ imports this module — so the searcher types are imported
# lazily inside ShardedSearcher to break the cycle.


def shard_ranges(total: int, num_shards: int) -> list[tuple[int, int]]:
    """``(first_text, count)`` of each shard under ceil-division.

    The one partitioning rule shared by :meth:`ShardedIndex.build` and
    the fleet builder (:func:`repro.service.router.build_shard_fleet`),
    so a routed deployment and an in-process sharded searcher agree on
    which shard owns which text.
    """
    if num_shards <= 0:
        raise InvalidParameterError(
            f"num_shards must be positive, got {num_shards}"
        )
    per_shard = max(1, (total + num_shards - 1) // num_shards)
    ranges = []
    start = 0
    while start < total:
        count = min(per_shard, total - start)
        ranges.append((start, count))
        start += count
    if not ranges:  # empty corpus: one empty shard keeps the API total
        ranges.append((0, 0))
    return ranges


@dataclass(frozen=True)
class Shard:
    """One shard: an index over texts ``[first_text, first_text + count)``.

    The shard's index numbers texts locally from 0; ``first_text``
    translates back to global corpus ids.
    """

    first_text: int
    count: int
    index: object  # any InvertedIndexReader


class ShardedIndex:
    """A corpus index split into contiguous text-id shards."""

    def __init__(self, shards: list[Shard], family: HashFamily, t: int) -> None:
        if not shards:
            raise InvalidParameterError("at least one shard is required")
        expected = 0
        for shard in shards:
            if shard.first_text != expected:
                raise InvalidParameterError(
                    f"shards must cover contiguous text ranges; expected start "
                    f"{expected}, got {shard.first_text}"
                )
            expected += shard.count
        self.shards = list(shards)
        self.family = family
        self.t = int(t)

    @classmethod
    def build(
        cls,
        corpus: Corpus,
        family: HashFamily,
        t: int,
        *,
        num_shards: int = 4,
        vocab_size: int | None = None,
        workers: int = 1,
        batch_texts: int = DEFAULT_BATCH_TEXTS,
        directory: str | None = None,
        codec: str = "raw",
    ) -> "ShardedIndex":
        """Partition ``corpus`` into ``num_shards`` ranges and index each.

        ``workers > 1`` builds each shard on a process pool
        (:func:`~repro.index.parallel.build_memory_index_parallel`); the
        per-shard indexes are identical either way.  With ``directory``
        set, every shard is persisted to ``directory/shard<i>`` using
        ``codec`` (``raw`` or ``packed``) and re-opened memory-mapped,
        so the sharded index serves from disk instead of RAM.
        """
        if num_shards <= 0:
            raise InvalidParameterError(f"num_shards must be positive, got {num_shards}")
        check_codec(codec)
        total = len(corpus)
        if vocab_size is None:
            vocab_size = infer_vocab_size(corpus)

        def build_shard(local: Corpus):
            if workers > 1:
                from repro.index.parallel import build_memory_index_parallel

                return build_memory_index_parallel(
                    local,
                    family,
                    t,
                    vocab_size=vocab_size,
                    workers=workers,
                    batch_texts=batch_texts,
                )
            return build_memory_index(
                local, family, t, vocab_size=vocab_size, batch_texts=batch_texts
            )

        def materialize(index, shard_id: int):
            if directory is None:
                return index
            from repro.index.storage import DiskInvertedIndex, write_index

            shard_dir = Path(directory) / f"shard{shard_id}"
            write_index(index, shard_dir, codec=codec)
            return DiskInvertedIndex(shard_dir)

        shards = []
        for start, count in shard_ranges(total, num_shards):
            local = InMemoryCorpus(
                [np.asarray(corpus[start + offset]) for offset in range(count)]
            )
            shards.append(
                Shard(
                    first_text=start,
                    count=count,
                    index=materialize(build_shard(local), len(shards)),
                )
            )
        return cls(shards, family, t)

    @property
    def num_postings(self) -> int:
        return sum(int(shard.index.num_postings) for shard in self.shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)


class ShardedSearcher:
    """Fan a query out to every shard and merge the (re-numbered) results.

    ``workers > 1`` searches the shards concurrently on a thread pool;
    results are still merged in shard order, so the output is identical
    to the serial loop (the shard hot path releases the GIL inside the
    NumPy kernels, which is where the wall-clock win comes from).  Use
    as a context manager (or call :meth:`close`) to reclaim the pool.
    """

    def __init__(
        self,
        sharded: ShardedIndex,
        *,
        long_list_cutoff: int | None = None,
        workers: int = 1,
    ) -> None:
        from repro.core.search import NearDuplicateSearcher

        self.sharded = sharded
        self.t = sharded.t
        self.workers = max(1, int(workers))
        self._searchers = [
            NearDuplicateSearcher(shard.index, long_list_cutoff=long_list_cutoff)
            for shard in sharded.shards
        ]
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        if self.workers > 1 and len(self._searchers) > 1:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=min(self.workers, len(self._searchers)),
                thread_name_prefix="shard-search",
            )

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedSearcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- search ---------------------------------------------------------
    def _search_shards(self, query: np.ndarray, theta: float, **kwargs) -> list:
        """Every shard's local result, always in shard order."""
        if self._pool is None:
            return [
                searcher.search(query, theta, **kwargs)
                for searcher in self._searchers
            ]
        futures = [
            self._pool.submit(searcher.search, query, theta, **kwargs)
            for searcher in self._searchers
        ]
        return [future.result() for future in futures]

    def _merge(self, results: list, theta: float):
        """Re-number per-shard results to global ids and concatenate.

        ``results`` must be in shard order; per-shard matches are
        already sorted by local text id and shard ranges ascend, so the
        final sort is a no-op safety net rather than a real shuffle.
        """
        from repro.core.search import QueryStats, SearchResult

        merged_matches = []
        stats = QueryStats()
        beta = k = 0
        for shard, result in zip(self.sharded.shards, results):
            beta, k = result.beta, result.k
            for match in result.matches:
                merged_matches.append(
                    type(match)(
                        text_id=match.text_id + shard.first_text,
                        rectangles=match.rectangles,
                    )
                )
            stats.merge(result.stats)
        stats.texts_matched = len(merged_matches)
        merged_matches.sort(key=lambda m: m.text_id)
        return SearchResult(
            matches=merged_matches,
            stats=stats,
            k=k,
            theta=theta,
            beta=beta,
            t=self.t,
        )

    def search(self, query: np.ndarray, theta: float, **kwargs):
        return self._merge(self._search_shards(query, theta, **kwargs), theta)

    def search_batch(self, queries, theta: float, **kwargs) -> list:
        """One merged result per query, fanning (shard, query) pairs out.

        With a pool this schedules all ``num_shards * len(queries)``
        searches at once, so shards and queries overlap freely; the
        output equals ``[self.search(q, theta) for q in queries]``.
        """
        if self._pool is None:
            per_query = [
                [searcher.search(query, theta, **kwargs) for searcher in self._searchers]
                for query in queries
            ]
        else:
            futures = [
                [
                    self._pool.submit(searcher.search, query, theta, **kwargs)
                    for searcher in self._searchers
                ]
                for query in queries
            ]
            per_query = [[future.result() for future in row] for row in futures]
        return [self._merge(results, theta) for results in per_query]
