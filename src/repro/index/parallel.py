"""Parallel index construction (paper Section 3.4, last paragraph).

The paper parallelizes the build by assigning each thread a batch of
texts and a private memory space for the generated compact windows,
merging the private buffers at the end.  Python threads cannot speed up
the CPU-bound window generation, so the reproduction uses worker
*processes*: each worker owns a private buffer of postings for its
batches (the private memory space), ships it back to the parent, and
the parent merges all buffers into the final index.

The driver streams: batches are drawn from ``corpus.iter_batches`` and
submitted with a bounded in-flight window, so neither the corpus nor
the pending batch queue is ever materialized in full — peak memory is
``O(max_inflight * batch_texts)`` texts plus the growing postings.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait

import numpy as np

from repro.core.hashing import HashFamily
from repro.corpus.corpus import Corpus, infer_vocab_size, iter_corpus_batches
from repro.exceptions import InvalidParameterError
from repro.index.builder import (
    BuildStats,
    generate_corpus_postings,
    merge_per_func_chunks,
)
from repro.index.inverted import MemoryInvertedIndex

_WORKER_FAMILY: HashFamily | None = None
_WORKER_VOCAB_HASHES: np.ndarray | None = None
_WORKER_T: int = 0


def _init_worker(family_payload: dict, t: int, vocab_size: int) -> None:
    """Build per-process state once instead of per batch."""
    from repro.index.builder import MAX_VOCAB_TABLE

    global _WORKER_FAMILY, _WORKER_VOCAB_HASHES, _WORKER_T
    _WORKER_FAMILY = HashFamily.from_dict(family_payload)
    _WORKER_VOCAB_HASHES = (
        _WORKER_FAMILY.hash_vocabulary(vocab_size)
        if vocab_size <= MAX_VOCAB_TABLE
        else None
    )
    _WORKER_T = t


def _process_batch(
    batch: list[tuple[int, np.ndarray]]
) -> list[tuple[np.ndarray, np.ndarray]]:
    assert _WORKER_FAMILY is not None
    return generate_corpus_postings(batch, _WORKER_FAMILY, _WORKER_T, _WORKER_VOCAB_HASHES)


def build_memory_index_parallel(
    corpus: Corpus,
    family: HashFamily,
    t: int,
    *,
    vocab_size: int | None = None,
    workers: int = 2,
    batch_texts: int = 128,
    max_inflight: int | None = None,
    stats: BuildStats | None = None,
) -> MemoryInvertedIndex:
    """Multi-process variant of :func:`repro.index.builder.build_memory_index`.

    Produces an index identical to the sequential build (the merge is
    order-insensitive because lists are re-sorted by ``(minhash,
    text)`` with a stable sort, and every text's windows live in exactly
    one batch).  At most ``max_inflight`` batches (default
    ``2 * workers``) are submitted but uncollected at any time, bounding
    both the parent's pending-batch memory and the pool's input queue.
    """
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    if workers <= 0:
        raise InvalidParameterError(f"workers must be positive, got {workers}")
    if batch_texts <= 0:
        raise InvalidParameterError(f"batch_texts must be positive, got {batch_texts}")
    if max_inflight is None:
        max_inflight = 2 * workers
    if max_inflight < 1:
        raise InvalidParameterError(
            f"max_inflight must be positive, got {max_inflight}"
        )
    if vocab_size is None:
        vocab_size = infer_vocab_size(corpus)

    per_func_chunks: list[tuple[list[np.ndarray], list[np.ndarray]]] = [
        ([], []) for _ in range(family.k)
    ]

    def collect(future: Future) -> None:
        for func, (minhashes, postings) in enumerate(future.result()):
            if postings.size:
                per_func_chunks[func][0].append(minhashes)
                per_func_chunks[func][1].append(postings)

    texts_indexed = 0
    batches = 0
    begin = time.perf_counter()
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(family.to_dict(), t, vocab_size),
    ) as pool:
        pending: set[Future] = set()
        for batch in iter_corpus_batches(corpus, batch_texts):
            while len(pending) >= max_inflight:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    collect(future)
            pending.add(pool.submit(_process_batch, batch))
            texts_indexed += len(batch)
            batches += 1
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                collect(future)
    generation_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    index = MemoryInvertedIndex.from_postings(
        family, t, merge_per_func_chunks(per_func_chunks)
    )
    index.num_texts = texts_indexed
    merge_seconds = time.perf_counter() - begin
    if stats is not None:
        stats.windows_generated += index.num_postings
        stats.generation_seconds += generation_seconds
        stats.merge_seconds += merge_seconds
        stats.texts_indexed += texts_indexed
        stats.batches += batches
        stats.windows_per_func = [
            int(index.list_lengths(func).sum()) for func in range(family.k)
        ]
    return index
