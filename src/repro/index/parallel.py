"""Parallel index construction (paper Section 3.4, last paragraph).

The paper parallelizes the build by assigning each thread a batch of
texts and a private memory space for the generated compact windows,
merging the private buffers at the end.  Python threads cannot speed up
the CPU-bound window generation, so the reproduction uses worker
*processes*: each worker owns a private buffer of postings for its
batches (the private memory space), ships it back to the parent, and
the parent merges all buffers into the final index.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.hashing import HashFamily
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import generate_corpus_postings
from repro.index.inverted import MemoryInvertedIndex, POSTING_DTYPE

_WORKER_FAMILY: HashFamily | None = None
_WORKER_VOCAB_HASHES: np.ndarray | None = None
_WORKER_T: int = 0


def _init_worker(family_payload: dict, t: int, vocab_size: int) -> None:
    """Build per-process state once instead of per batch."""
    from repro.index.builder import MAX_VOCAB_TABLE

    global _WORKER_FAMILY, _WORKER_VOCAB_HASHES, _WORKER_T
    _WORKER_FAMILY = HashFamily.from_dict(family_payload)
    _WORKER_VOCAB_HASHES = (
        _WORKER_FAMILY.hash_vocabulary(vocab_size)
        if vocab_size <= MAX_VOCAB_TABLE
        else None
    )
    _WORKER_T = t


def _process_batch(
    batch: list[tuple[int, np.ndarray]]
) -> list[tuple[np.ndarray, np.ndarray]]:
    assert _WORKER_FAMILY is not None
    return generate_corpus_postings(batch, _WORKER_FAMILY, _WORKER_T, _WORKER_VOCAB_HASHES)


def build_memory_index_parallel(
    corpus: Corpus,
    family: HashFamily,
    t: int,
    *,
    vocab_size: int | None = None,
    workers: int = 2,
    batch_texts: int = 128,
) -> MemoryInvertedIndex:
    """Multi-process variant of :func:`repro.index.builder.build_memory_index`.

    Produces an index identical to the sequential build (the merge is
    order-insensitive because lists are re-sorted by ``(minhash,
    text)``).
    """
    if workers <= 0:
        raise InvalidParameterError(f"workers must be positive, got {workers}")
    if batch_texts <= 0:
        raise InvalidParameterError(f"batch_texts must be positive, got {batch_texts}")
    if vocab_size is None:
        vocab_size = max(
            (int(text.max()) + 1 for text in corpus if text.size), default=1
        )
    batches: list[list[tuple[int, np.ndarray]]] = []
    current: list[tuple[int, np.ndarray]] = []
    for text_id in range(len(corpus)):
        current.append((text_id, np.asarray(corpus[text_id])))
        if len(current) == batch_texts:
            batches.append(current)
            current = []
    if current:
        batches.append(current)

    per_func_chunks: list[tuple[list[np.ndarray], list[np.ndarray]]] = [
        ([], []) for _ in range(family.k)
    ]
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(family.to_dict(), t, vocab_size),
    ) as pool:
        for result in pool.map(_process_batch, batches):
            for func, (minhashes, postings) in enumerate(result):
                if postings.size:
                    per_func_chunks[func][0].append(minhashes)
                    per_func_chunks[func][1].append(postings)

    per_func = []
    for minhash_chunks, posting_chunks in per_func_chunks:
        if minhash_chunks:
            per_func.append(
                (np.concatenate(minhash_chunks), np.concatenate(posting_chunks))
            )
        else:
            per_func.append(
                (np.empty(0, dtype=np.uint32), np.empty(0, dtype=POSTING_DTYPE))
            )
    return MemoryInvertedIndex.from_postings(family, t, per_func)
