"""Compressed posting-list codec (index format v2).

A raw posting spends 16 bytes on ``(text, left, center, right)``, yet
text-sorted lists have near-monotone columns whose entropy is a small
fraction of that.  Format v2 stores each inverted list column-wise and
bit-packed in fixed-size blocks of :data:`BLOCK_POSTINGS` postings:

* column 0 — ``text`` **deltas** (``text[i] - text[i-1]`` within the
  block; the first posting's delta is 0 because the block's absolute
  ``first_text`` lives in the block directory);
* column 1 — ``center - left`` (left residual);
* column 2 — ``center`` (raw position);
* column 3 — ``right - center`` (right residual).

Each block stores, per column, the minimal bit width covering the
block's values (0 when the whole column is zero) and the values packed
MSB-first into a byte-aligned bit slab.  A block is its four column
slabs concatenated; a list is its blocks concatenated.  The per-block
``(first_text, widths)`` mini-directory lives next to the inverted-list
directory, so random access stays block-aligned: zone maps resolve a
point lookup to a posting range, the reader rounds it to blocks and
decodes only those.

Both kernels are pure numpy and vectorized across postings *and*
blocks (grouped by bit width): packing expands values to a bit matrix
(``unpackbits``/``packbits``), unpacking gathers 8-byte windows and
reduces them with shifts/ors — no Python per-posting loops anywhere.
The scalar ``reference_*`` codec reimplements the byte format with
explicit loops and is kept solely as the property-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.index.inverted import POSTING_DTYPE

#: Postings per block.  128 postings keep every full block's column
#: slab a whole number of bytes for any bit width, so grouped pack and
#: unpack never straddle byte boundaries between blocks.
BLOCK_POSTINGS = 128

#: Columns stored per posting (text delta, left residual, center, right
#: residual).
NUM_COLUMNS = 4

#: Supported posting codecs: ``raw`` is the v1 16-byte record format,
#: ``packed`` the v2 delta + bit-packed block format.
CODECS = ("raw", "packed")

_POW2 = (np.int64(1) << np.arange(33, dtype=np.int64)).astype(np.uint64)


def check_codec(codec: str) -> str:
    if codec not in CODECS:
        raise InvalidParameterError(f"codec must be one of {CODECS}, got {codec!r}")
    return codec


@dataclass(frozen=True)
class EncodedList:
    """One inverted list in v2 form: payload bytes + block directory."""

    data: np.ndarray  #: uint8 — concatenated block slabs
    first_texts: np.ndarray  #: uint32 (nb,) — first text id per block
    widths: np.ndarray  #: uint8 (nb, 4) — per-block per-column bit widths
    count: int  #: postings encoded

    @property
    def num_blocks(self) -> int:
        return int(self.first_texts.size)

    @property
    def block_sizes(self) -> np.ndarray:
        """Byte size of each block (derived from counts and widths)."""
        return block_byte_sizes(block_counts(self.count), self.widths)


def block_counts(count: int) -> np.ndarray:
    """Postings per block for a list of ``count`` postings."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    nb = (count + BLOCK_POSTINGS - 1) // BLOCK_POSTINGS
    counts = np.full(nb, BLOCK_POSTINGS, dtype=np.int64)
    counts[-1] = count - (nb - 1) * BLOCK_POSTINGS
    return counts


def column_slab_sizes(counts: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Byte size of every ``(block, column)`` slab — ``(nb, 4)`` int64."""
    counts = np.asarray(counts, dtype=np.int64).reshape(-1, 1)
    widths = np.asarray(widths, dtype=np.int64)
    return (counts * widths + 7) >> 3


def block_byte_sizes(counts: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Total byte size of every block — ``(nb,)`` int64."""
    return column_slab_sizes(counts, widths).sum(axis=1)


def list_columns(postings: np.ndarray) -> list[np.ndarray]:
    """The four int64 column arrays of a text-sorted posting list.

    Exposed for index validation, which re-derives the columns of a
    decoded block to check the stored widths actually cover them.
    """
    texts = postings["text"].astype(np.int64)
    centers = postings["center"].astype(np.int64)
    delta = np.zeros(texts.size, dtype=np.int64)
    if texts.size > 1:
        delta[1:] = texts[1:] - texts[:-1]
    delta[::BLOCK_POSTINGS] = 0  # block-leading texts live in the directory
    return [
        delta,
        centers - postings["left"].astype(np.int64),
        centers,
        postings["right"].astype(np.int64) - centers,
    ]


def _bit_widths(block_max: np.ndarray) -> np.ndarray:
    """Bit length of each block's maximum value (0 for all-zero blocks).

    Exact integer comparison against powers of two — no float ``log2``
    edge cases at power-of-two boundaries.
    """
    return np.searchsorted(
        _POW2, np.asarray(block_max, dtype=np.uint64), side="right"
    ).astype(np.uint8)


# ----------------------------------------------------------------------
# Bit-slab kernels
# ----------------------------------------------------------------------
def _as_byte_view(buffer) -> np.ndarray:
    """A uint8 view of any byte source without copying.

    Accepts uint8 arrays/memmaps directly and wraps raw buffer objects
    (``mmap``, ``memoryview``, ``bytes``) with ``np.frombuffer``, so
    the decode kernels can read straight out of a mapped index file.
    """
    if isinstance(buffer, np.ndarray):
        return np.asarray(buffer, dtype=np.uint8)
    return np.frombuffer(buffer, dtype=np.uint8)


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack ``values`` (< 2**width) MSB-first into a byte-aligned slab.

    Vectorized as a bit-matrix transpose: each value expands to its 32
    big-endian bits (``unpackbits``), the low ``width`` bits of every
    value are concatenated, and ``packbits`` folds the stream back to
    bytes (zero-padded to the byte boundary).
    """
    if width < 0 or width > 32:
        raise InvalidParameterError(f"width must be in [0, 32], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint32)
    if width == 0 or values.size == 0:
        return np.empty(0, dtype=np.uint8)
    big_endian = values.astype(">u4").view(np.uint8).reshape(-1, 4)
    bits = np.unpackbits(big_endian, axis=1)
    return np.packbits(bits[:, 32 - width :])


def unpack_bits_at(
    slab: np.ndarray, bit_starts: np.ndarray, width: int
) -> np.ndarray:
    """Read a ``width``-bit value at every bit offset in ``bit_starts``.

    The shifts/or-reduce kernel of the decode hot path: for each value
    an 8-byte big-endian window is gathered starting at its byte, the
    lanes are combined with shifts and ors, and one final shift+mask
    extracts every value at once.  Bit offsets may be arbitrary (even
    unsorted), which is what lets callers decode many blocks of equal
    width in a single call.  Window bytes past a value's field are
    shifted out or masked off, so reads are clamped to the slab instead
    of copying it into a padded buffer.
    """
    if width < 0 or width > 32:
        raise InvalidParameterError(f"width must be in [0, 32], got {width}")
    bit_starts = np.asarray(bit_starts, dtype=np.int64)
    if width == 0 or bit_starts.size == 0:
        return np.zeros(bit_starts.size, dtype=np.uint32)
    slab = _as_byte_view(slab)
    if slab.size == 0:
        raise InvalidParameterError("cannot unpack from an empty slab")
    byte0 = bit_starts >> 3
    last = slab.size - 1
    word = np.zeros(bit_starts.size, dtype=np.uint64)
    for lane in range((width + 14) >> 3):  # bytes covering offset+width bits
        lane_bytes = slab[np.minimum(byte0 + lane, last)]
        word |= lane_bytes.astype(np.uint64) << np.uint64(8 * (7 - lane))
    shift = (
        np.uint64(64)
        - (bit_starts.astype(np.uint64) & np.uint64(7))
        - np.uint64(width)
    )
    mask = np.uint64((1 << width) - 1)
    return ((word >> shift) & mask).astype(np.uint32)


# ----------------------------------------------------------------------
# List encode / block decode
# ----------------------------------------------------------------------
def encode_list(postings: np.ndarray) -> EncodedList:
    """Encode one text-sorted inverted list into v2 blocks.

    Full blocks are packed grouped by ``(column, width)`` — one
    :func:`pack_bits` call per distinct width — and scattered into the
    output with a flat fancy-index write; only a possible final partial
    block is packed on its own.
    """
    if postings.dtype != POSTING_DTYPE:
        raise InvalidParameterError("postings must use POSTING_DTYPE")
    count = int(postings.size)
    if count == 0:
        return EncodedList(
            data=np.empty(0, dtype=np.uint8),
            first_texts=np.empty(0, dtype=np.uint32),
            widths=np.empty((0, NUM_COLUMNS), dtype=np.uint8),
            count=0,
        )
    texts = postings["text"].astype(np.int64)
    if texts.size > 1 and np.any(texts[1:] < texts[:-1]):
        raise InvalidParameterError("postings must be sorted by text id")
    counts = block_counts(count)
    nb = int(counts.size)
    first_texts = postings["text"][::BLOCK_POSTINGS].astype(np.uint32)
    columns = list_columns(postings)

    padded = np.zeros((NUM_COLUMNS, nb * BLOCK_POSTINGS), dtype=np.int64)
    widths = np.empty((nb, NUM_COLUMNS), dtype=np.uint8)
    for col, values in enumerate(columns):
        padded[col, :count] = values
        widths[:, col] = _bit_widths(
            padded[col].reshape(nb, BLOCK_POSTINGS).max(axis=1)
        )

    slab_sizes = column_slab_sizes(counts, widths)
    block_offsets = np.zeros(nb, dtype=np.int64)
    if nb > 1:
        block_offsets[1:] = np.cumsum(slab_sizes.sum(axis=1))[:-1]
    column_offsets = block_offsets[:, None] + np.concatenate(
        [np.zeros((nb, 1), dtype=np.int64), np.cumsum(slab_sizes, axis=1)[:, :-1]],
        axis=1,
    )
    data = np.zeros(int(slab_sizes.sum()), dtype=np.uint8)

    full = counts == BLOCK_POSTINGS
    for col in range(NUM_COLUMNS):
        col_widths = widths[:, col].astype(np.int64)
        for width in np.unique(col_widths[full]) if full.any() else []:
            width = int(width)
            if width == 0:
                continue
            selected = full & (col_widths == width)
            if not selected.any():
                continue
            values = (
                padded[col]
                .reshape(nb, BLOCK_POSTINGS)[selected]
                .astype(np.uint32)
                .ravel()
            )
            packed = pack_bits(values, width)
            slab_len = BLOCK_POSTINGS * width // 8
            dest = (
                column_offsets[selected, col][:, None]
                + np.arange(slab_len, dtype=np.int64)[None, :]
            ).ravel()
            data[dest] = packed
        if not full[-1]:  # final partial block packed on its own
            width = int(col_widths[-1])
            if width:
                start = (nb - 1) * BLOCK_POSTINGS
                values = padded[col, start : start + int(counts[-1])].astype(
                    np.uint32
                )
                packed = pack_bits(values, width)
                offset = int(column_offsets[-1, col])
                data[offset : offset + packed.size] = packed
    return EncodedList(
        data=data, first_texts=first_texts, widths=widths, count=count
    )


def decode_blocks(
    buffer: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    widths: np.ndarray,
    first_texts: np.ndarray,
) -> np.ndarray:
    """Decode blocks into a :data:`POSTING_DTYPE` array (block order).

    Parameters
    ----------
    buffer:
        Byte source the blocks live in: any uint8 array or memmap
        view, or a raw buffer object (``mmap``/``memoryview``/
        ``bytes``) — wrapped zero-copy via :func:`_as_byte_view`.
    offsets:
        Byte offset of each block within ``buffer``.
    counts / widths / first_texts:
        The blocks' directory entries: postings per block, ``(nb, 4)``
        per-column bit widths, first text id per block.

    Decoding is grouped by ``(column, width)``: one
    :func:`unpack_bits_at` call covers every block sharing a width, so
    the kernel-call count depends on width diversity, not block count.
    """
    counts = np.asarray(counts, dtype=np.int64)
    nb = int(counts.size)
    total = int(counts.sum())
    out = np.empty(total, dtype=POSTING_DTYPE)
    if total == 0:
        return out
    buffer = _as_byte_view(buffer)
    offsets = np.asarray(offsets, dtype=np.int64)
    widths = np.asarray(widths, dtype=np.uint8).reshape(nb, NUM_COLUMNS)
    slab_sizes = column_slab_sizes(counts, widths)
    column_offsets = offsets[:, None] + np.concatenate(
        [np.zeros((nb, 1), dtype=np.int64), np.cumsum(slab_sizes, axis=1)[:, :-1]],
        axis=1,
    )
    out_offsets = np.concatenate(([0], np.cumsum(counts)))
    block_of = np.repeat(np.arange(nb, dtype=np.int64), counts)
    j_within = np.arange(total, dtype=np.int64) - np.repeat(
        out_offsets[:-1], counts
    )

    columns = np.zeros((NUM_COLUMNS, total), dtype=np.int64)
    for col in range(NUM_COLUMNS):
        col_widths = widths[:, col]
        width0 = int(col_widths[0])
        if np.all(col_widths == width0):
            # Fast path: one width across every block (the common case)
            # — no per-width masks, one kernel call, direct assignment.
            if width0 != 0:
                bit_starts = (
                    column_offsets[block_of, col] * 8 + j_within * width0
                )
                columns[col] = unpack_bits_at(buffer, bit_starts, width0)
            continue
        for width in np.unique(col_widths):
            width = int(width)
            if width == 0:
                continue
            selected = (col_widths == width)[block_of]
            bit_starts = (
                column_offsets[block_of[selected], col] * 8
                + j_within[selected] * width
            )
            columns[col][selected] = unpack_bits_at(buffer, bit_starts, width)

    prefix = np.cumsum(columns[0])
    base = np.repeat(prefix[out_offsets[:-1]], counts)
    texts = (
        np.repeat(np.asarray(first_texts, dtype=np.int64), counts)
        + prefix
        - base
    )
    centers = columns[2]
    out["text"] = texts.astype(np.uint32)
    out["left"] = (centers - columns[1]).astype(np.uint32)
    out["center"] = centers.astype(np.uint32)
    out["right"] = (centers + columns[3]).astype(np.uint32)
    return out


def split_blocks(decoded: np.ndarray, counts: np.ndarray) -> list[np.ndarray]:
    """Split a :func:`decode_blocks` result back into per-block views.

    ``counts`` is the same per-block posting-count array the decode was
    given; the returned views partition ``decoded`` in block order.
    The decoded-block cache (:mod:`repro.index.blockcache`) uses this
    to store each block under its own key after one grouped decode.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size <= 1:
        return [decoded]
    return np.split(decoded, np.cumsum(counts)[:-1].tolist())


# ----------------------------------------------------------------------
# Scalar reference codec (property-test oracle)
# ----------------------------------------------------------------------
def reference_pack_bits(values, width: int) -> np.ndarray:
    """Bit-by-bit scalar :func:`pack_bits` — byte-identical output."""
    values = [int(v) for v in values]
    if width == 0 or not values:
        return np.empty(0, dtype=np.uint8)
    out = bytearray((len(values) * width + 7) // 8)
    position = 0
    for value in values:
        for bit in range(width - 1, -1, -1):
            if (value >> bit) & 1:
                out[position >> 3] |= 0x80 >> (position & 7)
            position += 1
    return np.frombuffer(bytes(out), dtype=np.uint8)


def reference_unpack_bits(slab, count: int, width: int) -> np.ndarray:
    """Bit-by-bit scalar unpack of ``count`` ``width``-bit values."""
    raw = bytes(bytearray(np.asarray(slab, dtype=np.uint8)))
    values = []
    position = 0
    for _ in range(count):
        value = 0
        for _ in range(width):
            value = (value << 1) | (
                (raw[position >> 3] >> (7 - (position & 7))) & 1
            )
            position += 1
        values.append(value)
    return np.asarray(values, dtype=np.uint32) if values else np.zeros(
        0, dtype=np.uint32
    )


def reference_encode_list(postings: np.ndarray) -> EncodedList:
    """Scalar :func:`encode_list` — must produce identical bytes."""
    count = int(postings.size)
    if count == 0:
        return encode_list(postings)
    first_texts: list[int] = []
    width_rows: list[list[int]] = []
    chunks: list[np.ndarray] = []
    for start in range(0, count, BLOCK_POSTINGS):
        block = postings[start : start + BLOCK_POSTINGS]
        texts = [int(rec["text"]) for rec in block]
        first_texts.append(texts[0])
        columns: list[list[int]] = [[], [], [], []]
        for i, rec in enumerate(block):
            center = int(rec["center"])
            columns[0].append(0 if i == 0 else texts[i] - texts[i - 1])
            columns[1].append(center - int(rec["left"]))
            columns[2].append(center)
            columns[3].append(int(rec["right"]) - center)
        row = [max(col).bit_length() for col in columns]
        width_rows.append(row)
        for col, width in zip(columns, row):
            chunks.append(reference_pack_bits(col, width))
    data = (
        np.concatenate([c for c in chunks if c.size])
        if any(c.size for c in chunks)
        else np.empty(0, dtype=np.uint8)
    )
    return EncodedList(
        data=data,
        first_texts=np.asarray(first_texts, dtype=np.uint32),
        widths=np.asarray(width_rows, dtype=np.uint8),
        count=count,
    )


def reference_decode_list(encoded: EncodedList) -> np.ndarray:
    """Scalar block decoder — the oracle for :func:`decode_blocks`."""
    out = np.empty(encoded.count, dtype=POSTING_DTYPE)
    counts = block_counts(encoded.count)
    cursor = 0
    emitted = 0
    raw = encoded.data
    for b in range(encoded.num_blocks):
        n = int(counts[b])
        columns = []
        for col in range(NUM_COLUMNS):
            width = int(encoded.widths[b, col])
            nbytes = (n * width + 7) // 8
            columns.append(
                reference_unpack_bits(raw[cursor : cursor + nbytes], n, width)
                if width
                else np.zeros(n, dtype=np.uint32)
            )
            cursor += nbytes
        text = int(encoded.first_texts[b])
        for i in range(n):
            text += int(columns[0][i])
            center = int(columns[2][i])
            out[emitted] = (
                text,
                center - int(columns[1][i]),
                center,
                center + int(columns[3][i]),
            )
            emitted += 1
    return out
