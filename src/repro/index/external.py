"""Out-of-core index construction via hash aggregation (Section 3.4).

For corpora that do not fit in memory (the paper's C4/Pile case) the
build proceeds in two passes over index-sized data:

1. **Spill pass** — stream the corpus in batches of texts; generate the
   compact-window postings of each batch; *partition* them by a hash of
   ``(func, minhash)`` into ``P`` spill files, appending raw records.
2. **Aggregation pass** — load each partition (it holds complete
   inverted lists, since all postings of one ``(func, minhash)`` key
   land in the same partition), sort by ``(func, minhash, text)``,
   and append the grouped lists to the final index file.  A partition
   that still exceeds the memory budget is *recursively* re-partitioned
   with a different hash, exactly as the paper's references [52]
   prescribe.

The result is byte-compatible with :func:`repro.index.storage.write_index`
output (list order within the payload differs; the directory carries
explicit offsets, so readers cannot tell the difference).
"""

from __future__ import annotations

import logging
import shutil
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.exceptions import InvalidParameterError
from repro.index.builder import BuildStats, generate_corpus_postings
from repro.index.inverted import POSTING_BYTES, POSTING_DTYPE
from repro.index.storage import _IndexWriter

logger = logging.getLogger(__name__)

#: Spill record: posting plus its routing key (hash function, min-hash).
SPILL_DTYPE = np.dtype(
    [
        ("func", np.uint32),
        ("minhash", np.uint32),
        ("text", np.uint32),
        ("left", np.uint32),
        ("center", np.uint32),
        ("right", np.uint32),
    ]
)


@dataclass
class ExternalBuildConfig:
    """Tuning knobs of the out-of-core build."""

    batch_texts: int = 256
    num_partitions: int = 16
    memory_budget_bytes: int = 64 * 1024 * 1024
    max_recursion: int = 4

    def __post_init__(self) -> None:
        if self.batch_texts <= 0:
            raise InvalidParameterError("batch_texts must be positive")
        if self.num_partitions <= 1:
            raise InvalidParameterError("num_partitions must be > 1")
        if self.memory_budget_bytes < SPILL_DTYPE.itemsize:
            raise InvalidParameterError("memory budget smaller than one record")


def _partition_of(records: np.ndarray, num_partitions: int, salt: int) -> np.ndarray:
    """Partition id of each spill record, keyed by ``(func, minhash)``.

    A multiplicative mix keyed by ``salt`` lets recursive re-partitions
    split a skewed partition differently than the parent pass did.
    """
    key = (
        records["func"].astype(np.uint64) << np.uint64(32)
    ) | records["minhash"].astype(np.uint64)
    with np.errstate(over="ignore"):
        mixed = key * np.uint64(0x9E3779B97F4A7C15 + 2 * salt + 1)
        mixed ^= mixed >> np.uint64(29)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(32)
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def _spill_batch(
    records: np.ndarray,
    handles: list,
    num_partitions: int,
    salt: int,
) -> int:
    """Append ``records`` to their spill files; returns bytes written."""
    parts = _partition_of(records, num_partitions, salt)
    written = 0
    for pid in range(num_partitions):
        chunk = records[parts == pid]
        if chunk.size:
            chunk.tofile(handles[pid])
            written += chunk.nbytes
    return written


def _flush_partition(
    records: np.ndarray,
    writer: _IndexWriter,
    config: ExternalBuildConfig,
    workdir: Path,
    depth: int,
) -> None:
    """Sort a partition, group it into lists, and write them out.

    Recursively re-partitions when the data exceeds the memory budget
    and the recursion limit allows.
    """
    if records.nbytes > config.memory_budget_bytes and depth < config.max_recursion:
        logger.debug(
            "partition of %d bytes exceeds budget %d; re-partitioning at depth %d",
            records.nbytes,
            config.memory_budget_bytes,
            depth,
        )
        sub_dir = workdir / f"depth{depth}"
        sub_dir.mkdir(exist_ok=True)
        paths = [sub_dir / f"part{pid}.spill" for pid in range(config.num_partitions)]
        handles = [open(path, "wb") for path in paths]
        try:
            _spill_batch(records, handles, config.num_partitions, salt=depth + 1)
        finally:
            for handle in handles:
                handle.close()
        del records
        for path in paths:
            sub_records = np.fromfile(path, dtype=SPILL_DTYPE)
            path.unlink()
            if sub_records.size:
                _flush_partition(sub_records, writer, config, sub_dir, depth + 1)
        return

    order = np.lexsort((records["text"], records["minhash"], records["func"]))
    records = records[order]
    keys = (
        records["func"].astype(np.uint64) << np.uint64(32)
    ) | records["minhash"].astype(np.uint64)
    boundaries = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
    boundaries = np.append(boundaries, records.size)
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        group = records[start:end]
        postings = np.empty(group.size, dtype=POSTING_DTYPE)
        for name in ("text", "left", "center", "right"):
            postings[name] = group[name]
        writer.write_list(int(group["func"][0]), int(group["minhash"][0]), postings)


def build_external_index(
    corpus,
    family: HashFamily,
    t: int,
    directory: str | Path,
    *,
    vocab_size: int | None = None,
    config: ExternalBuildConfig | None = None,
) -> BuildStats:
    """Build an on-disk index without holding the postings in memory.

    ``corpus`` must provide ``iter_batches(batch_size)`` (both
    :class:`~repro.corpus.corpus.InMemoryCorpus` and
    :class:`~repro.corpus.store.DiskCorpus` do).  Returns build stats
    with generation time, I/O time and bytes written (spill + final).
    """
    if config is None:
        config = ExternalBuildConfig()
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spill_dir = directory / "spill"
    spill_dir.mkdir(exist_ok=True)
    if vocab_size is None:
        vocab_size = max(
            (int(text.max()) + 1 for text in corpus if text.size), default=1
        )
    from repro.index.builder import MAX_VOCAB_TABLE

    vocab_hashes = (
        family.hash_vocabulary(vocab_size) if vocab_size <= MAX_VOCAB_TABLE else None
    )
    stats = BuildStats()

    # Pass 1: generate postings batch by batch and spill by partition.
    spill_paths = [spill_dir / f"part{pid}.spill" for pid in range(config.num_partitions)]
    handles = [open(path, "wb") for path in spill_paths]
    try:
        for batch in corpus.iter_batches(config.batch_texts):
            begin = time.perf_counter()
            per_func = generate_corpus_postings(batch, family, t, vocab_hashes)
            chunks = []
            for func, (minhashes, postings) in enumerate(per_func):
                if not postings.size:
                    continue
                records = np.empty(postings.size, dtype=SPILL_DTYPE)
                records["func"] = func
                records["minhash"] = minhashes
                for name in ("text", "left", "center", "right"):
                    records[name] = postings[name]
                chunks.append(records)
            stats.generation_seconds += time.perf_counter() - begin
            if not chunks:
                continue
            begin = time.perf_counter()
            batch_records = np.concatenate(chunks)
            stats.windows_generated += int(batch_records.size)
            stats.bytes_written += _spill_batch(
                batch_records, handles, config.num_partitions, salt=0
            )
            stats.io_seconds += time.perf_counter() - begin
    finally:
        for handle in handles:
            handle.close()

    # Pass 2: aggregate each partition into final inverted lists.
    writer = _IndexWriter(directory, family, t)
    for path in spill_paths:
        begin = time.perf_counter()
        records = np.fromfile(path, dtype=SPILL_DTYPE)
        path.unlink()
        stats.io_seconds += time.perf_counter() - begin
        if records.size:
            _flush_partition(records, writer, config, spill_dir, depth=0)
    writer.close()
    stats.io_seconds += writer.io_seconds
    stats.bytes_written += writer.bytes_written
    shutil.rmtree(spill_dir, ignore_errors=True)
    logger.info(
        "external build complete: %d postings, %d bytes written, "
        "generation %.2fs, io %.2fs",
        stats.windows_generated,
        stats.bytes_written,
        stats.generation_seconds,
        stats.io_seconds,
    )
    return stats
