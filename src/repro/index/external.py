"""Out-of-core index construction via hash aggregation (Section 3.4).

For corpora that do not fit in memory (the paper's C4/Pile case) the
build proceeds in two passes over index-sized data:

1. **Spill pass** — stream the corpus in batches of texts; generate the
   compact-window postings of each batch; *partition* them by a hash of
   ``(func, minhash)`` into ``P`` spill files, appending raw records.
2. **Aggregation pass** — load each partition (it holds complete
   inverted lists, since all postings of one ``(func, minhash)`` key
   land in the same partition), sort by ``(func, minhash, text)``,
   and append the grouped lists to the final index file.  A partition
   that still exceeds the memory budget is *recursively* re-partitioned
   with a different hash, exactly as the paper's references [52]
   prescribe.

The build is pipelined: spill I/O of pass 1 runs on a background writer
thread so window generation of batch ``i + 1`` overlaps the disk writes
of batch ``i`` (``pipeline_spill``), and pass-2 partitions can be
sorted/grouped on a process pool (``workers``).  Both knobs leave the
output byte-identical to the plain sequential build: partitions are
appended to the index file in partition order regardless of which
worker finished first.

The result is byte-compatible with :func:`repro.index.storage.write_index`
output (list order within the payload differs; the directory carries
explicit offsets, so readers cannot tell the difference).
"""

from __future__ import annotations

import dataclasses
import logging
import queue
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.hashing import HashFamily
from repro.corpus.corpus import infer_vocab_size, iter_corpus_batches
from repro.exceptions import InvalidParameterError
from repro.index.builder import BuildStats, generate_corpus_postings
from repro.index.codec import check_codec
from repro.index.inverted import POSTING_DTYPE
from repro.index.storage import DIR_FORMATS, _IndexWriter

logger = logging.getLogger(__name__)

#: Spill record: posting plus its routing key (hash function, min-hash).
SPILL_DTYPE = np.dtype(
    [
        ("func", np.uint32),
        ("minhash", np.uint32),
        ("text", np.uint32),
        ("left", np.uint32),
        ("center", np.uint32),
        ("right", np.uint32),
    ]
)


@dataclass
class ExternalBuildConfig:
    """Tuning knobs of the out-of-core build.

    ``workers > 1`` aggregates pass-2 partitions on a process pool;
    ``pipeline_spill`` moves pass-1 spill writes to a background thread
    so generation and I/O overlap.  Neither changes the output bytes.
    ``codec="packed"`` stream-compresses every aggregated list into the
    format v2 payload during pass 2 — the raw 16-byte postings only
    ever exist in the bounded spill files.
    """

    batch_texts: int = 256
    num_partitions: int = 16
    memory_budget_bytes: int = 64 * 1024 * 1024
    max_recursion: int = 4
    workers: int = 1
    pipeline_spill: bool = True
    codec: str = "raw"
    dir_format: str = "sidecar"

    def __post_init__(self) -> None:
        if self.batch_texts <= 0:
            raise InvalidParameterError("batch_texts must be positive")
        if self.num_partitions <= 1:
            raise InvalidParameterError("num_partitions must be > 1")
        if self.memory_budget_bytes < SPILL_DTYPE.itemsize:
            raise InvalidParameterError("memory budget smaller than one record")
        if self.workers <= 0:
            raise InvalidParameterError("workers must be positive")
        check_codec(self.codec)
        if self.dir_format not in DIR_FORMATS:
            raise InvalidParameterError(
                f"dir_format must be one of {DIR_FORMATS}, got {self.dir_format!r}"
            )


def _partition_of(records: np.ndarray, num_partitions: int, salt: int) -> np.ndarray:
    """Partition id of each spill record, keyed by ``(func, minhash)``.

    A multiplicative mix keyed by ``salt`` lets recursive re-partitions
    split a skewed partition differently than the parent pass did.
    """
    key = (
        records["func"].astype(np.uint64) << np.uint64(32)
    ) | records["minhash"].astype(np.uint64)
    with np.errstate(over="ignore"):
        mixed = key * np.uint64(0x9E3779B97F4A7C15 + 2 * salt + 1)
        mixed ^= mixed >> np.uint64(29)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(32)
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def _spill_batch(
    records: np.ndarray,
    handles: list,
    num_partitions: int,
    salt: int,
) -> int:
    """Append ``records`` to their spill files; returns bytes written."""
    parts = _partition_of(records, num_partitions, salt)
    written = 0
    for pid in range(num_partitions):
        chunk = records[parts == pid]
        if chunk.size:
            chunk.tofile(handles[pid])
            written += chunk.nbytes
    return written


class _SpillWriter:
    """Background thread appending spill batches to the partition files.

    Decouples pass-1 window generation from spill I/O: the producer
    enqueues record batches (bounded queue, so memory stays at a few
    batches) while this thread partitions and appends them.  The first
    write error is re-raised on the producer thread at the next
    ``submit`` or at ``close``; batches queued after a failure are
    drained without writing.
    """

    _SENTINEL = None

    def __init__(self, handles: list, num_partitions: int, *, queue_depth: int = 4) -> None:
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._handles = handles
        self._num_partitions = num_partitions
        self.bytes_written = 0
        self.io_seconds = 0.0
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, name="spill-writer", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            records = self._queue.get()
            try:
                if records is self._SENTINEL:
                    return
                if self._error is not None:
                    continue  # drain without writing after a failure
                begin = time.perf_counter()
                self.bytes_written += _spill_batch(
                    records, self._handles, self._num_partitions, salt=0
                )
                self.io_seconds += time.perf_counter() - begin
            except BaseException as exc:  # propagate to the producer
                self._error = exc
            finally:
                self._queue.task_done()

    def submit(self, records: np.ndarray) -> None:
        if self._error is not None:
            raise self._error
        self._queue.put(records)

    def close(self) -> None:
        """Flush the queue, stop the thread, re-raise any write error."""
        self._queue.put(self._SENTINEL)
        self._thread.join()
        if self._error is not None:
            raise self._error


def _flush_partition(
    records: np.ndarray,
    emit: Callable[[int, int, np.ndarray], None],
    config: ExternalBuildConfig,
    workdir: Path,
    depth: int,
) -> None:
    """Sort a partition, group it into lists, and emit them in key order.

    ``emit(func, minhash, postings)`` receives each grouped inverted
    list; the sequential build passes the index writer's ``write_list``
    directly, the parallel build collects into a buffer.  Recursively
    re-partitions when the data exceeds the memory budget and the
    recursion limit allows; sub-partition spill files are only created
    for non-empty sub-partitions, and the scratch directory is removed
    even when aggregation fails partway.
    """
    if records.nbytes > config.memory_budget_bytes and depth < config.max_recursion:
        logger.debug(
            "partition of %d bytes exceeds budget %d; re-partitioning at depth %d",
            records.nbytes,
            config.memory_budget_bytes,
            depth,
        )
        sub_dir = workdir / f"depth{depth}"
        sub_dir.mkdir(exist_ok=True)
        try:
            parts = _partition_of(records, config.num_partitions, salt=depth + 1)
            paths = []
            for pid in range(config.num_partitions):
                chunk = records[parts == pid]
                if not chunk.size:
                    continue  # skip empty sub-partitions entirely
                path = sub_dir / f"part{pid}.spill"
                chunk.tofile(path)
                paths.append(path)
            del records, parts
            for path in paths:
                sub_records = np.fromfile(path, dtype=SPILL_DTYPE)
                path.unlink()
                _flush_partition(sub_records, emit, config, sub_dir, depth + 1)
        finally:
            shutil.rmtree(sub_dir, ignore_errors=True)
        return

    order = np.lexsort((records["text"], records["minhash"], records["func"]))
    records = records[order]
    keys = (
        records["func"].astype(np.uint64) << np.uint64(32)
    ) | records["minhash"].astype(np.uint64)
    boundaries = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
    boundaries = np.append(boundaries, records.size)
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        group = records[start:end]
        postings = np.empty(group.size, dtype=POSTING_DTYPE)
        for name in ("text", "left", "center", "right"):
            postings[name] = group[name]
        emit(int(group["func"][0]), int(group["minhash"][0]), postings)


def _aggregate_partition(
    path_str: str,
    config_payload: dict,
    workdir_str: str,
) -> tuple[str, np.ndarray, np.ndarray, np.ndarray]:
    """Pass-2 worker: sort/group one partition into a sorted postings file.

    Returns ``(sorted_path, funcs, minhashes, counts)``; the parent
    slices the sorted file by ``counts`` and appends the lists to the
    index in partition order, so the output stays byte-identical to the
    sequential aggregation.
    """
    config = ExternalBuildConfig(**config_payload)
    path = Path(path_str)
    records = np.fromfile(path, dtype=SPILL_DTYPE)
    path.unlink()
    funcs: list[int] = []
    minhashes: list[int] = []
    chunks: list[np.ndarray] = []

    def emit(func: int, minhash: int, postings: np.ndarray) -> None:
        funcs.append(func)
        minhashes.append(minhash)
        chunks.append(postings)

    if records.size:
        workdir = Path(workdir_str)
        workdir.mkdir(exist_ok=True)
        try:
            _flush_partition(records, emit, config, workdir, depth=0)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    sorted_path = path.with_suffix(".sorted")
    merged = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=POSTING_DTYPE)
    )
    merged.tofile(sorted_path)
    return (
        str(sorted_path),
        np.asarray(funcs, dtype=np.uint32),
        np.asarray(minhashes, dtype=np.uint32),
        np.asarray([chunk.size for chunk in chunks], dtype=np.int64),
    )


def build_external_index(
    corpus,
    family: HashFamily,
    t: int,
    directory: str | Path,
    *,
    vocab_size: int | None = None,
    config: ExternalBuildConfig | None = None,
    stats: BuildStats | None = None,
) -> BuildStats:
    """Build an on-disk index without holding the postings in memory.

    ``corpus`` is streamed through
    :func:`~repro.corpus.corpus.iter_corpus_batches` (sequential I/O on
    :class:`~repro.corpus.store.DiskCorpus`).  Returns build stats with
    per-phase timings (generation, aggregation, I/O) and bytes written
    (spill + final).
    """
    if config is None:
        config = ExternalBuildConfig()
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spill_dir = directory / "spill"
    spill_dir.mkdir(exist_ok=True)
    if vocab_size is None:
        vocab_size = infer_vocab_size(corpus)
    from repro.index.builder import MAX_VOCAB_TABLE

    vocab_hashes = (
        family.hash_vocabulary(vocab_size) if vocab_size <= MAX_VOCAB_TABLE else None
    )
    if stats is None:
        stats = BuildStats()

    try:
        # Pass 1: generate postings batch by batch and spill by partition.
        spill_paths = [
            spill_dir / f"part{pid}.spill" for pid in range(config.num_partitions)
        ]
        handles = [open(path, "wb") for path in spill_paths]
        spill_writer = (
            _SpillWriter(handles, config.num_partitions) if config.pipeline_spill else None
        )
        try:
            for batch in iter_corpus_batches(corpus, config.batch_texts):
                begin = time.perf_counter()
                per_func = generate_corpus_postings(batch, family, t, vocab_hashes)
                chunks = []
                for func, (minhashes, postings) in enumerate(per_func):
                    if not postings.size:
                        continue
                    records = np.empty(postings.size, dtype=SPILL_DTYPE)
                    records["func"] = func
                    records["minhash"] = minhashes
                    for name in ("text", "left", "center", "right"):
                        records[name] = postings[name]
                    chunks.append(records)
                stats.generation_seconds += time.perf_counter() - begin
                stats.texts_indexed += len(batch)
                stats.batches += 1
                if not chunks:
                    continue
                batch_records = np.concatenate(chunks)
                stats.windows_generated += int(batch_records.size)
                if spill_writer is not None:
                    spill_writer.submit(batch_records)
                else:
                    begin = time.perf_counter()
                    stats.bytes_written += _spill_batch(
                        batch_records, handles, config.num_partitions, salt=0
                    )
                    stats.io_seconds += time.perf_counter() - begin
        finally:
            try:
                if spill_writer is not None:
                    spill_writer.close()
            finally:
                if spill_writer is not None:
                    stats.bytes_written += spill_writer.bytes_written
                    stats.io_seconds += spill_writer.io_seconds
                for handle in handles:
                    handle.close()

        begin = time.perf_counter()
        nonempty = []
        for path in spill_paths:
            if path.stat().st_size:
                nonempty.append(path)
            else:
                path.unlink()
        stats.io_seconds += time.perf_counter() - begin

        # Pass 2: aggregate each partition into final inverted lists.
        writer = _IndexWriter(
            directory, family, t, codec=config.codec, dir_format=config.dir_format
        )
        if config.workers > 1 and nonempty:
            from concurrent.futures import ProcessPoolExecutor

            payload = dataclasses.asdict(config)
            begin = time.perf_counter()
            with ProcessPoolExecutor(max_workers=config.workers) as pool:
                futures = [
                    pool.submit(
                        _aggregate_partition,
                        str(path),
                        payload,
                        str(spill_dir / f"agg{pid}"),
                    )
                    for pid, path in enumerate(nonempty)
                ]
                # Collect in partition order so the index file layout is
                # identical to the sequential aggregation.
                for future in futures:
                    sorted_path, funcs, minhashes, counts = future.result()
                    merged = np.fromfile(sorted_path, dtype=POSTING_DTYPE)
                    Path(sorted_path).unlink()
                    offsets = np.concatenate(([0], np.cumsum(counts)))
                    for i in range(len(counts)):
                        writer.write_list(
                            int(funcs[i]),
                            int(minhashes[i]),
                            merged[offsets[i] : offsets[i + 1]],
                        )
            stats.aggregation_seconds += time.perf_counter() - begin
        else:
            for path in nonempty:
                begin = time.perf_counter()
                records = np.fromfile(path, dtype=SPILL_DTYPE)
                path.unlink()
                stats.io_seconds += time.perf_counter() - begin
                begin = time.perf_counter()
                _flush_partition(records, writer.write_list, config, spill_dir, depth=0)
                stats.aggregation_seconds += time.perf_counter() - begin
        writer.close()
        stats.io_seconds += writer.io_seconds
        stats.bytes_written += writer.bytes_written
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)
    logger.info(
        "external build complete: %d postings, %d bytes written, "
        "generation %.2fs, aggregation %.2fs, io %.2fs",
        stats.windows_generated,
        stats.bytes_written,
        stats.generation_seconds,
        stats.aggregation_seconds,
        stats.io_seconds,
    )
    return stats
