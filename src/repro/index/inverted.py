"""Inverted-index structures over compact windows (paper Section 3.4).

The index consists of ``k`` logical inverted indexes, one per hash
function.  In index ``i``, all compact windows whose min-hash under
``f_i`` equals ``h`` form the inverted list ``I_i[h]``, ordered by text
identifier.  A posting is the 16-byte record ``(text, left, center,
right)`` — the hash function is implicit in which index the list
belongs to, exactly as the paper notes.

Both the in-memory and the on-disk index expose the same directory
layout (sorted key array + offset array + concatenated postings), so
query processing is a single code path; the disk variant merely adds
I/O accounting and zone-map assisted point lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.core.hashing import HashFamily
from repro.exceptions import InvalidParameterError

#: One posting: the compact window ``(l, c, r)`` of text ``text``.
POSTING_DTYPE = np.dtype(
    [
        ("text", np.uint32),
        ("left", np.uint32),
        ("center", np.uint32),
        ("right", np.uint32),
    ]
)

#: Bytes per posting record.
POSTING_BYTES = POSTING_DTYPE.itemsize


def gather_ranges(array: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``array[starts[i] : starts[i] + counts[i]]`` slices.

    The flat-index form of a per-slice gather loop: one ``arange`` over
    the total output size, shifted per slice.  Used by the batched
    point-read paths to pull many texts' postings out of one list
    without a Python-level loop.
    """
    counts = counts.astype(np.int64, copy=False)
    total = int(counts.sum())
    if total == 0:
        return array[:0]
    offsets = np.cumsum(counts) - counts
    flat = (
        np.arange(total, dtype=np.int64)
        + np.repeat(starts.astype(np.int64, copy=False) - offsets, counts)
    )
    return array[flat]


def extract_texts(chunk: np.ndarray, text_ids: np.ndarray) -> np.ndarray:
    """Postings of every requested text within one text-sorted chunk."""
    lo = np.searchsorted(chunk["text"], text_ids, side="left")
    hi = np.searchsorted(chunk["text"], text_ids, side="right")
    return gather_ranges(chunk, lo, hi - lo)


@dataclass
class IOStats:
    """Byte/call accounting for inverted-list reads.

    The paper's Figure 3 splits query latency into an I/O part and a
    CPU part; searchers read these counters to reproduce that split.
    """

    bytes_read: int = 0
    read_calls: int = 0
    seconds: float = 0.0
    #: Posting bytes handed to the searcher after decoding.  Equal to
    #: ``bytes_read`` for raw (v1) payloads; larger for compressed (v2)
    #: payloads, where the gap is the codec's I/O saving.
    decoded_bytes: int = 0

    def reset(self) -> None:
        self.bytes_read = 0
        self.read_calls = 0
        self.seconds = 0.0
        self.decoded_bytes = 0

    def add(self, nbytes: int, seconds: float = 0.0, decoded: int | None = None) -> None:
        self.bytes_read += int(nbytes)
        self.read_calls += 1
        self.seconds += seconds
        self.decoded_bytes += int(nbytes if decoded is None else decoded)


@runtime_checkable
class InvertedIndexReader(Protocol):
    """Read interface shared by memory and disk indexes."""

    family: HashFamily
    t: int
    io_stats: IOStats

    def list_length(self, func: int, minhash: int) -> int:
        """Number of postings in list ``I_func[minhash]`` (0 if absent)."""
        ...

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        """The full inverted list, a :data:`POSTING_DTYPE` array sorted by text."""
        ...

    def load_text_windows(self, func: int, minhash: int, text_id: int) -> np.ndarray:
        """Only the postings of ``text_id`` within one list (zone-map path)."""
        ...

    # Readers additionally expose two *batched* variants (not part of
    # the structural protocol so third-party readers keep working; the
    # searcher falls back to the scalar methods when they are absent):
    #
    # ``sketch_list_lengths(sketch)`` — the k list lengths of one query
    # sketch in a single directory pass;
    # ``load_texts_windows(func, minhash, text_ids)`` — the postings of
    # many texts within one list, as one grouped ranged read instead of
    # one point read per text.


class _Directory:
    """Sorted (key -> payload slice) directory for one hash function."""

    __slots__ = ("keys", "offsets", "counts")

    def __init__(self, keys: np.ndarray, offsets: np.ndarray, counts: np.ndarray) -> None:
        self.keys = keys
        self.offsets = offsets
        self.counts = counts

    def find(self, minhash: int) -> int:
        """Directory slot of ``minhash`` or ``-1`` when absent."""
        pos = int(np.searchsorted(self.keys, minhash))
        if pos < self.keys.size and int(self.keys[pos]) == int(minhash):
            return pos
        return -1


class MemoryInvertedIndex:
    """All ``k`` inverted indexes held in memory (paper's medium-scale path).

    Construct via :func:`repro.index.builder.build_memory_index`; the
    raw constructor takes pre-grouped arrays.
    """

    def __init__(
        self,
        family: HashFamily,
        t: int,
        directories: list[_Directory],
        payload: np.ndarray,
    ) -> None:
        if t < 1:
            raise InvalidParameterError(f"t must be >= 1, got {t}")
        if len(directories) != family.k:
            raise InvalidParameterError("one directory per hash function is required")
        if payload.dtype != POSTING_DTYPE:
            raise InvalidParameterError("payload must use POSTING_DTYPE")
        self.family = family
        self.t = int(t)
        self._directories = directories
        self._payload = payload
        self.io_stats = IOStats()

    # -- construction helper ------------------------------------------------
    @classmethod
    def from_postings(
        cls,
        family: HashFamily,
        t: int,
        per_func_postings: list[tuple[np.ndarray, np.ndarray]],
    ) -> "MemoryInvertedIndex":
        """Build from per-function ``(minhash_array, posting_array)`` pairs.

        Postings are sorted by ``(minhash, text)`` and grouped into
        inverted lists here; builders only need to emit flat arrays.
        """
        directories: list[_Directory] = []
        chunks: list[np.ndarray] = []
        base = 0
        for minhashes, postings in per_func_postings:
            if minhashes.size != postings.size:
                raise InvalidParameterError("minhash and posting arrays must align")
            order = np.lexsort((postings["text"], minhashes))
            minhashes = minhashes[order]
            postings = postings[order]
            keys, starts, counts = np.unique(minhashes, return_index=True, return_counts=True)
            directories.append(
                _Directory(
                    keys.astype(np.uint32),
                    (starts + base).astype(np.uint64),
                    counts.astype(np.uint32),
                )
            )
            chunks.append(postings)
            base += postings.size
        payload = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=POSTING_DTYPE)
        )
        return cls(family, t, directories, payload)

    # -- reader protocol ------------------------------------------------
    def list_length(self, func: int, minhash: int) -> int:
        slot = self._directories[func].find(minhash)
        if slot < 0:
            return 0
        return int(self._directories[func].counts[slot])

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        directory = self._directories[func]
        slot = directory.find(minhash)
        if slot < 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        start = int(directory.offsets[slot])
        count = int(directory.counts[slot])
        self.io_stats.add(count * POSTING_BYTES)
        return self._payload[start : start + count]

    def load_text_windows(self, func: int, minhash: int, text_id: int) -> np.ndarray:
        directory = self._directories[func]
        slot = directory.find(minhash)
        if slot < 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        start = int(directory.offsets[slot])
        count = int(directory.counts[slot])
        chunk = self._payload[start : start + count]
        lo = int(np.searchsorted(chunk["text"], text_id, side="left"))
        hi = int(np.searchsorted(chunk["text"], text_id, side="right"))
        self.io_stats.add(max(hi - lo, 0) * POSTING_BYTES)
        return chunk[lo:hi]

    def sketch_list_lengths(self, sketch: np.ndarray) -> np.ndarray:
        """Lengths of the k lists named by one query sketch, one pass."""
        lengths = np.zeros(self.family.k, dtype=np.int64)
        for func in range(self.family.k):
            directory = self._directories[func]
            slot = directory.find(int(sketch[func]))
            if slot >= 0:
                lengths[func] = int(directory.counts[slot])
        return lengths

    def load_texts_windows(
        self, func: int, minhash: int, text_ids: np.ndarray
    ) -> np.ndarray:
        """Postings of every text in ``text_ids`` within one list.

        The batched form of :meth:`load_text_windows`: one logical read
        covering all requested texts (sorted, deduplicated), returned
        sorted by text id.  I/O is accounted as a single call.
        """
        directory = self._directories[func]
        slot = directory.find(minhash)
        if slot < 0:
            return np.empty(0, dtype=POSTING_DTYPE)
        start = int(directory.offsets[slot])
        count = int(directory.counts[slot])
        chunk = self._payload[start : start + count]
        fetched = extract_texts(chunk, np.unique(np.asarray(text_ids)))
        self.io_stats.add(fetched.size * POSTING_BYTES)
        return fetched

    def view(self) -> "MemoryInvertedIndex":
        """A reader sharing this index's arrays but with private ``io_stats``.

        Batch query workers running in threads each search through their
        own view, so per-query I/O deltas are not corrupted by
        concurrent readers; no postings are copied.
        """
        return MemoryInvertedIndex(
            self.family, self.t, self._directories, self._payload
        )

    # -- introspection ------------------------------------------------
    @property
    def num_postings(self) -> int:
        """Total number of compact windows stored across all ``k`` indexes."""
        return int(self._payload.size)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (the paper's index-size metric)."""
        return self.num_postings * POSTING_BYTES

    def list_lengths(self, func: int) -> np.ndarray:
        """Lengths of every inverted list of one hash function."""
        return np.asarray(self._directories[func].counts)

    def list_keys(self, func: int) -> np.ndarray:
        """Min-hash keys of one function's lists, aligned with
        :meth:`list_lengths` (cache warmup enumerates hot lists here)."""
        return np.asarray(self._directories[func].keys)

    def iter_lists(self, func: int) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(minhash, postings)`` for every list of one function."""
        directory = self._directories[func]
        for slot in range(directory.keys.size):
            start = int(directory.offsets[slot])
            count = int(directory.counts[slot])
            yield int(directory.keys[slot]), self._payload[start : start + count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryInvertedIndex(k={self.family.k}, t={self.t}, "
            f"postings={self.num_postings})"
        )


@dataclass
class ListLengthProfile:
    """Distribution of inverted-list lengths, for prefix-filter cutoffs."""

    lengths: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @classmethod
    def from_index(cls, index: MemoryInvertedIndex) -> "ListLengthProfile":
        parts = [index.list_lengths(func) for func in range(index.family.k)]
        lengths = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return cls(np.sort(lengths.astype(np.int64)))

    def cutoff_for_fraction(self, fraction: float) -> int:
        """List-length cutoff such that ~``fraction`` of postings lie in longer lists.

        Mirrors the paper's "5% .. 20% most frequent tokens" prefix
        lengths: returns the smallest length ``L`` such that lists with
        length > ``L`` together hold at most ``fraction`` of all
        postings.
        """
        if not 0.0 <= fraction < 1.0:
            raise InvalidParameterError(f"fraction must be in [0, 1), got {fraction}")
        if self.lengths.size == 0:
            return 0
        total = int(self.lengths.sum())
        if total == 0:
            return 0
        suffix = np.cumsum(self.lengths[::-1])[::-1]  # postings in lists >= each rank
        allowed = fraction * total
        # Walk from the longest list down until the mass of longer lists
        # would exceed the allowed fraction.
        for rank in range(self.lengths.size - 1, -1, -1):
            if suffix[rank] > allowed:
                return int(self.lengths[rank])
        return 0
