"""Decoded-block cache: the tier between the v2 codec and the reader.

PR 4/5 made zone-map point reads the dominant I/O shape: a long list is
never loaded whole — the searcher asks for the handful of 128-posting
blocks covering each candidate text, and every such read re-runs the
codec's bit-unpacking (`unpack_bits_at`) even when the same blocks were
decoded moments ago.  The whole-list tier cannot help (it only caches
*full* lists, and caching a giant list to serve a point read would
evict the working set many times over).

This tier caches *decoded blocks* keyed ``(namespace, func, minhash,
block_no)``: repeated point reads into the Zipf-head long lists become
dict lookups, and only the cold blocks of a read pay the decode.  The
saved work is visible in ``IOStats.decoded_bytes`` — blocks served
from this cache add neither compressed bytes read nor decoded bytes
produced, so the bench's decoded-bytes reduction is exactly the decode
work the tier removed.

``namespace`` (the owning reader's payload path) keeps one shared
cache correct across multiple readers — LSM run readers reuse
``(func, minhash)`` keys across runs, and a compacted-away run must
never answer for its successor.

The residency policy is switchable like the list tier
(:mod:`repro.index.cachepolicy`): ``lru`` or ``tinylfu`` (a long
one-shot scan decoding thousands of blocks cannot flush the point-read
working set under ``tinylfu``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.index.cachepolicy import make_policy


@dataclass(frozen=True)
class BlockCacheStats:
    """Snapshot of the decoded-block tier's counters."""

    hits: int
    misses: int
    evictions: int
    cached_bytes: int
    capacity_bytes: int
    cached_blocks: int = 0
    admission_rejections: int = 0
    policy: str = "lru"

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (the service's ``/stats`` block-cache block)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "cached_bytes": self.cached_bytes,
            "capacity_bytes": self.capacity_bytes,
            "cached_blocks": self.cached_blocks,
            "admission_rejections": self.admission_rejections,
            "policy": self.policy,
        }


class DecodedBlockCache:
    """Bounded, thread-safe cache of decoded posting blocks.

    One instance may be shared by many readers (the LSM snapshot's run
    readers all attach the same cache); each reader contributes its own
    ``namespace`` so keys never collide across payloads.  Entries are
    private copies of the decoded block arrays — eviction actually
    frees the memory instead of keeping a shared decode buffer alive
    through surviving sibling views.
    """

    def __init__(
        self, capacity_bytes: int, *, policy: str = "lru"
    ) -> None:
        if capacity_bytes <= 0:
            raise InvalidParameterError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        self._blocks: dict[tuple, np.ndarray] = {}
        self._policy = make_policy(policy, self._capacity)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def policy(self) -> str:
        return self._policy.name

    def get_blocks(
        self, namespace, func: int, minhash: int, blocks: np.ndarray
    ) -> tuple[dict[int, np.ndarray], np.ndarray]:
        """Probe one read's blocks; returns ``(found, missing_mask)``.

        ``found`` maps list-relative block numbers to decoded arrays;
        ``missing_mask`` is a boolean mask aligned with ``blocks``
        marking what the caller must still decode (and should
        :meth:`put_blocks` back).
        """
        found: dict[int, np.ndarray] = {}
        missing = np.zeros(len(blocks), dtype=bool)
        with self._lock:
            for position, block in enumerate(blocks):
                block = int(block)
                entry = self._blocks.get((namespace, func, minhash, block))
                if entry is None:
                    missing[position] = True
                    self.misses += 1
                else:
                    self._policy.on_hit((namespace, func, minhash, block))
                    found[block] = entry
                    self.hits += 1
        return found, missing

    def put_blocks(
        self,
        namespace,
        func: int,
        minhash: int,
        blocks,
        arrays: list[np.ndarray],
    ) -> None:
        """Insert freshly decoded blocks (policy decides residency)."""
        with self._lock:
            for block, decoded in zip(blocks, arrays):
                key = (namespace, func, minhash, int(block))
                if key in self._blocks:
                    self._policy.on_hit(key)
                    continue
                copied = np.array(decoded)
                admitted, evicted = self._policy.admit(key, copied.nbytes)
                for victim in evicted:
                    self._blocks.pop(victim, None)
                    self.evictions += 1
                if admitted:
                    self._blocks[key] = copied

    def stats(self) -> BlockCacheStats:
        with self._lock:
            return BlockCacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                cached_bytes=self._policy.used_bytes,
                capacity_bytes=self._capacity,
                cached_blocks=len(self._blocks),
                admission_rejections=self._policy.admission_rejections,
                policy=self._policy.name,
            )

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._policy.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"DecodedBlockCache(policy={stats.policy}, "
            f"blocks={stats.cached_blocks}, hit_rate={stats.hit_rate:.2f})"
        )
