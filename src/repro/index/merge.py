"""Merging independently-built on-disk indexes.

The distributed version of the paper's build: each worker machine
indexes its own corpus partition (texts re-numbered locally), ships the
index directory, and a coordinator merges them into one searchable
index.  Because compact windows of different texts never interact, the
merge is a per-key concatenation — the inverted list of min-hash ``h``
in the merged index is the concatenation of the partitions' lists with
text ids shifted by each partition's base offset.

The merged output is byte-compatible with
:func:`repro.index.storage.write_index` output.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import IndexFormatError, InvalidParameterError
from repro.index.inverted import POSTING_DTYPE
from repro.index.storage import DiskInvertedIndex, _IndexWriter


def merge_disk_indexes(
    sources: list[str | Path],
    destination: str | Path,
    *,
    text_offsets: list[int] | None = None,
    codec: str = "raw",
) -> Path:
    """Merge on-disk indexes built over disjoint corpus partitions.

    Parameters
    ----------
    sources:
        Index directories, in partition order.
    destination:
        Output index directory.
    text_offsets:
        Global text id of each partition's text 0.  Defaults to the
        cumulative text counts inferred from the partitions themselves
        (max text id + 1 per partition), which is correct when each
        partition indexed a contiguous corpus slice starting at local
        id 0 and every text produced at least one window.
    codec:
        Payload codec of the *merged* index (``raw`` or ``packed``).
        Sources may use either codec — lists are decoded while
        merging — so a merge can also serve as a v1 → v2 recompression.

    All sources must share the same hash family and length threshold
    ``t`` (otherwise their lists are incomparable).
    """
    if not sources:
        raise InvalidParameterError("at least one source index is required")
    readers = [DiskInvertedIndex(path) for path in sources]
    family = readers[0].family
    t = readers[0].t
    for reader in readers[1:]:
        if reader.family != family:
            raise IndexFormatError("source indexes use different hash families")
        if reader.t != t:
            raise IndexFormatError("source indexes use different length thresholds")

    if text_offsets is None:
        text_offsets = []
        base = 0
        for reader in readers:
            text_offsets.append(base)
            base += _num_texts(reader)
    if len(text_offsets) != len(readers):
        raise InvalidParameterError("one text offset per source index is required")

    # The merged id space ends where the last partition's ends; when
    # every source carries num_texts metadata this is exact even for
    # texts that produced no windows.
    merged_num_texts: int | None = max(
        (offset + _num_texts(reader) for reader, offset in zip(readers, text_offsets)),
        default=None,
    )

    writer = _IndexWriter(
        destination, family, t, codec=codec, num_texts=merged_num_texts
    )
    for func in range(family.k):
        # Union of this function's keys across all partitions.
        all_keys = np.unique(
            np.concatenate([reader._keys[func] for reader in readers])
            if readers
            else np.empty(0, dtype=np.uint32)
        )
        for minhash in all_keys:
            chunks = []
            for reader, offset in zip(readers, text_offsets):
                postings = reader.load_list(func, int(minhash))
                if postings.size:
                    shifted = np.array(postings)
                    shifted["text"] = shifted["text"] + np.uint32(offset)
                    chunks.append(shifted)
            merged = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=POSTING_DTYPE)
            )
            if merged.size:
                # Partitions are in ascending text order and internally
                # sorted, so concatenation preserves the sort invariant.
                writer.write_list(func, int(minhash), merged)
    writer.close()
    return Path(destination)


def _num_texts(reader: DiskInvertedIndex) -> int:
    """Size of a partition's text-id space.

    The metadata key (written since ``num_texts`` landed in the
    format) answers in O(1); legacy indexes fall back to scanning
    function 0's lists for the max text id.
    """
    recorded = reader.num_texts
    if recorded is not None:
        return recorded
    top = -1
    for minhash in reader._keys[0]:
        postings = reader.load_list(0, int(minhash))
        if postings.size:
            top = max(top, int(postings["text"].max()))
    return top + 1
