"""Read-only union over index readers covering disjoint text ranges.

The live index answers queries over {sealed runs..., memtable view};
the sources hold *disjoint, ascending* text-id ranges (runs seal in
id order, the memtable holds the newest ids), so the union of their
inverted lists is exactly the list an offline build over the union
corpus would produce, and per-source results concatenate in source
order without a merge sort — the same invariant
:class:`~repro.index.incremental.IncrementalIndex` (main + delta) and
:class:`~repro.index.sharded.ShardedIndex` already exploit, generalised
to N sources.

A :class:`UnionIndexReader` is an immutable snapshot: it holds direct
references to the readers of one manifest generation, so concurrent
seals and compactions never change what an in-flight query sees (POSIX
keeps the mmapped run files alive even after compaction unlinks them).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.hashing import HashFamily
from repro.index.inverted import IOStats, POSTING_BYTES, POSTING_DTYPE


class UnionIndexReader:
    """One immutable snapshot over ordered, text-disjoint sub-readers.

    Implements the full reader protocol (including the batched
    ``sketch_list_lengths`` / ``load_texts_windows`` fast paths), with
    its own :class:`~repro.index.inverted.IOStats` — a concrete object,
    not a computed property, because :class:`~repro.index.cache.CachedIndexReader`
    captures the reference once at construction.
    """

    def __init__(
        self, family: HashFamily, t: int, sources: list, *, generation: int = 0
    ) -> None:
        self.family = family
        self.t = int(t)
        self.sources = list(sources)
        #: Manifest generation this snapshot was pinned at.
        self.generation = int(generation)
        self.io_stats = IOStats()

    # -- reader protocol ------------------------------------------------
    def list_length(self, func: int, minhash: int) -> int:
        return sum(
            int(source.list_length(func, minhash)) for source in self.sources
        )

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        begin = time.perf_counter()
        parts = [
            part
            for source in self.sources
            if (part := source.load_list(func, minhash)).size
        ]
        # Sources ascend in text id, so concatenation preserves the
        # text-id sort the query processor relies on.
        merged = _concat(parts)
        self.io_stats.add(
            merged.size * POSTING_BYTES, time.perf_counter() - begin
        )
        return merged

    def load_text_windows(
        self, func: int, minhash: int, text_id: int
    ) -> np.ndarray:
        begin = time.perf_counter()
        parts = [
            part
            for source in self.sources
            if (part := source.load_text_windows(func, minhash, text_id)).size
        ]
        merged = _concat(parts)
        self.io_stats.add(
            merged.size * POSTING_BYTES, time.perf_counter() - begin
        )
        return merged

    def sketch_list_lengths(self, sketch: np.ndarray) -> np.ndarray:
        lengths = np.zeros(self.family.k, dtype=np.int64)
        for source in self.sources:
            lengths = lengths + np.asarray(
                source.sketch_list_lengths(sketch), dtype=np.int64
            )
        return lengths

    def load_texts_windows(
        self, func: int, minhash: int, text_ids: np.ndarray
    ) -> np.ndarray:
        begin = time.perf_counter()
        parts = [
            part
            for source in self.sources
            if (part := source.load_texts_windows(func, minhash, text_ids)).size
        ]
        merged = _concat(parts)
        self.io_stats.add(
            merged.size * POSTING_BYTES, time.perf_counter() - begin
        )
        return merged

    # -- introspection --------------------------------------------------
    @property
    def num_postings(self) -> int:
        return sum(int(source.num_postings) for source in self.sources)

    @property
    def nbytes(self) -> int:
        return sum(int(source.nbytes) for source in self.sources)

    def list_lengths(self, func: int) -> np.ndarray:
        parts = [
            np.asarray(source.list_lengths(func), dtype=np.int64)
            for source in self.sources
        ]
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    def list_keys(self, func: int) -> np.ndarray:
        parts = [
            np.asarray(source.list_keys(func), dtype=np.uint32)
            for source in self.sources
        ]
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.uint32)
        )

    @property
    def num_sources(self) -> int:
        return len(self.sources)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnionIndexReader(sources={len(self.sources)}, "
            f"generation={self.generation}, postings={self.num_postings})"
        )


def _concat(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=POSTING_DTYPE)
    return parts[0] if len(parts) == 1 else np.concatenate(parts)
