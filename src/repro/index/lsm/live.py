"""The LSM live index: WAL-backed streaming ingest over sealed runs.

A :class:`LiveIndex` root directory holds::

    root/
      MANIFEST.json        # committed run set (atomic os.replace)
      wal-<seq>.log        # active WAL segment (memtable durability)
      run-<seq>/           # immutable format-v2 index directories
      prefilter.npz        # optional Bloom dedup state (best-effort)

Write path: ``append_texts`` validates the batch, logs it to the WAL
(fsync per ``ack_policy``), buffers it in the
:class:`~repro.index.lsm.memtable.Memtable`, and acknowledges.  Past
``seal_threshold_postings`` the memtable is **sealed**: written to a
new ``run-*`` directory through the ordinary index writer (the run's
meta file is its local commit point), then the manifest commits
{runs + new run, ``wal_seq+1``, advanced ``next_text_id``} atomically,
a fresh WAL segment starts, and the old one is deleted.  Every crash
point in that sequence recovers: an unreferenced run directory is
garbage-collected on open, WAL records below the manifest's
``next_text_id`` are skipped on replay, and stale segments are removed.

Read path: a query pins a **snapshot** — a
:class:`~repro.index.lsm.union.UnionIndexReader` over the current
manifest generation's run readers plus the memtable view.  Seals and
compactions commit new generations; in-flight queries keep reading the
snapshot they pinned (POSIX mmaps outlive the unlink).

Compaction is tiered: when ``compact_fanout`` adjacent runs of similar
size accumulate, they are merged (outside the state lock — runs are
immutable) through :func:`repro.index.merge.merge_disk_indexes` into
one run, committed, and the inputs are deleted.  A background worker
thread runs the policy after every seal; ``compact(all_runs=True)``
forces a full merge synchronously.
"""

from __future__ import annotations

import logging
import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.exceptions import IndexFormatError, InvalidParameterError
from repro.index.codec import check_codec
from repro.index.lsm.manifest import MANIFEST_FILE, Manifest, manifest_exists
from repro.index.lsm.memtable import Memtable
from repro.index.lsm.prefilter import BloomPrefilter
from repro.index.lsm.union import UnionIndexReader
from repro.index.lsm.wal import ACK_POLICIES, WriteAheadLog
from repro.index.merge import merge_disk_indexes
from repro.index.storage import DiskInvertedIndex, write_index

logger = logging.getLogger(__name__)

PREFILTER_FILE = "prefilter.npz"


def wal_name(seq: int) -> str:
    return f"wal-{seq:06d}.log"


def run_name(seq: int) -> str:
    return f"run-{seq:06d}"


@dataclass
class LiveIndexConfig:
    """Tuning knobs of one live index (see ``docs/FORMATS.md``)."""

    #: Memtable posting count that triggers a seal.
    seal_threshold_postings: int = 1_000_000
    #: Payload codec of sealed runs (``packed`` = format v2).
    codec: str = "packed"
    #: WAL ack durability: ``always`` | ``batch`` | ``none``.
    ack_policy: str = "always"
    #: Appends between fsyncs under ``ack_policy="batch"``.
    fsync_batch: int = 32
    #: Adjacent similar-sized runs that trigger a tiered merge.
    compact_fanout: int = 4
    #: Size ratio under which adjacent runs count as one tier.
    tier_ratio: float = 4.0
    #: Run the compaction policy on a background thread after seals.
    background_compaction: bool = True
    #: Enable the Bloom exact-duplicate prefilter (off by default: a
    #: false positive silently drops a distinct text).
    dedupe: bool = False
    #: Prefilter sizing (used only when ``dedupe`` is on).
    dedupe_capacity: int = 1_000_000
    dedupe_fp_rate: float = 1e-4


@dataclass
class LiveIndexStats:
    """Counters of one :class:`LiveIndex` instance's lifetime."""

    appends: int = 0
    texts_accepted: int = 0
    texts_deduped: int = 0
    seals: int = 0
    compactions: int = 0
    replayed_records: int = 0
    replayed_texts: int = 0

    def to_dict(self) -> dict:
        return {
            "appends": self.appends,
            "texts_accepted": self.texts_accepted,
            "texts_deduped": self.texts_deduped,
            "seals": self.seals,
            "compactions": self.compactions,
            "replayed_records": self.replayed_records,
            "replayed_texts": self.replayed_texts,
        }


def pick_compaction(
    sizes: list[int], fanout: int, tier_ratio: float
) -> tuple[int, int] | None:
    """Choose the next tiered merge: a slice ``[lo, hi)`` of adjacent runs.

    Runs must stay in text-id order, so only *adjacent* groups are
    mergeable.  The policy scans for the leftmost (oldest) window of at
    least ``fanout`` adjacent runs whose sizes are within
    ``tier_ratio`` of each other — a size tier — preferring the longest
    such window.  When no tier exists but the run count has grown past
    ``2 * fanout`` (read amplification regardless of sizes), the
    ``fanout``-wide window with the smallest total size is merged so
    the run count stays bounded.  Returns ``None`` when nothing needs
    merging.
    """
    n = len(sizes)
    if fanout < 2 or n < fanout:
        return None
    best: tuple[int, int] | None = None
    lo = 0
    while lo < n:
        hi = lo + 1
        low = high = max(1, sizes[lo])
        while hi < n:
            size = max(1, sizes[hi])
            if max(high, size) > tier_ratio * min(low, size):
                break
            low, high = min(low, size), max(high, size)
            hi += 1
        if hi - lo >= fanout and (best is None or hi - lo > best[1] - best[0]):
            best = (lo, hi)
        lo = hi if hi > lo + 1 else lo + 1
    if best is not None:
        return best
    if n >= 2 * fanout:
        totals = [sum(sizes[i : i + fanout]) for i in range(n - fanout + 1)]
        lo = int(np.argmin(totals))
        return lo, lo + fanout
    return None


class LiveIndex:
    """Streaming, crash-safe, snapshot-isolated near-duplicate index.

    Thread-safe: appends, seals, compactions, and snapshot pins may
    race freely.  One state lock guards the mutable run-set/memtable
    view; compaction work (reading immutable runs, writing the merged
    run) happens outside it and only re-acquires it to commit.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        family: HashFamily | None = None,
        t: int | None = None,
        vocab_size: int | None = None,
        config: LiveIndexConfig | None = None,
    ) -> None:
        self.root = Path(root)
        self.config = config or LiveIndexConfig()
        check_codec(self.config.codec)
        if self.config.ack_policy not in ACK_POLICIES:
            raise InvalidParameterError(
                f"ack_policy must be one of {ACK_POLICIES}, "
                f"got {self.config.ack_policy!r}"
            )
        if self.config.seal_threshold_postings < 1:
            raise InvalidParameterError("seal_threshold_postings must be >= 1")
        self.stats = LiveIndexStats()
        self._lock = threading.RLock()
        self._compact_lock = threading.Lock()
        self._closed = False
        self._snapshot_cache: UnionIndexReader | None = None
        self._run_readers: dict[str, DiskInvertedIndex] = {}
        self._compactor: threading.Thread | None = None
        self._compact_wakeup = threading.Event()
        self._stop_compactor = threading.Event()

        if manifest_exists(self.root):
            self.manifest = Manifest.load(self.root)
            if family is not None and family != self.manifest.family:
                raise InvalidParameterError(
                    "requested hash family differs from the existing live index"
                )
            if t is not None and int(t) != self.manifest.t:
                raise InvalidParameterError(
                    "requested t differs from the existing live index"
                )
            if vocab_size is not None and int(vocab_size) != self.manifest.vocab_size:
                raise InvalidParameterError(
                    "requested vocab_size differs from the existing live index"
                )
        else:
            if family is None or t is None or vocab_size is None:
                raise InvalidParameterError(
                    f"{self.root} has no manifest; creating a live index "
                    "requires family, t, and vocab_size"
                )
            self.root.mkdir(parents=True, exist_ok=True)
            self.manifest = Manifest(
                family=family,
                t=int(t),
                vocab_size=int(vocab_size),
                codec=self.config.codec,
            )
            self.manifest.commit(self.root)

        self.family = self.manifest.family
        self.t = self.manifest.t
        self.memtable = Memtable(self.family, self.t, self.manifest.vocab_size)
        self._memtable_first_id = self.manifest.next_text_id
        self._memtable_tokens = 0
        self._next_text_id = self.manifest.next_text_id
        self._recover()
        self.prefilter: BloomPrefilter | None = None
        if self.config.dedupe:
            prefilter_path = self.root / PREFILTER_FILE
            if prefilter_path.exists():
                try:
                    self.prefilter = BloomPrefilter.load(prefilter_path)
                except IndexFormatError:
                    self.prefilter = None
            if self.prefilter is None:
                self.prefilter = BloomPrefilter(
                    capacity=self.config.dedupe_capacity,
                    fp_rate=self.config.dedupe_fp_rate,
                )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Garbage-collect crash leftovers and replay the WAL.

        Ordering invariants this relies on (see :meth:`seal`): a run
        directory not in the manifest was never committed; a WAL
        segment with a lower sequence number than the manifest's was
        superseded by a committed seal; WAL records whose ids fall
        below ``next_text_id`` were sealed before the crash.
        """
        referenced = set(self.manifest.runs)
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and entry.name.startswith("run-"):
                if entry.name not in referenced:
                    shutil.rmtree(entry, ignore_errors=True)
            elif entry.name.startswith("wal-") and entry.name.endswith(".log"):
                if entry.name != wal_name(self.manifest.wal_seq):
                    entry.unlink(missing_ok=True)
        self.wal = WriteAheadLog(
            self.root / wal_name(self.manifest.wal_seq),
            ack_policy=self.config.ack_policy,
            fsync_batch=self.config.fsync_batch,
        )
        for first_text_id, texts in self.wal.recovered:
            if first_text_id < self.manifest.next_text_id:
                continue  # sealed before the crash; fenced by the manifest
            batch = list(zip(range(first_text_id, first_text_id + len(texts)), texts))
            self.memtable.add_texts(batch)
            self._memtable_tokens += sum(int(t.size) for t in texts)
            self._next_text_id = max(
                self._next_text_id, first_text_id + len(texts)
            )
            self.stats.replayed_records += 1
            self.stats.replayed_texts += len(texts)
        if self.wal.recovered:
            logger.info(
                "replayed %d WAL records (%d texts, %d truncated tail bytes)",
                self.stats.replayed_records,
                self.stats.replayed_texts,
                self.wal.truncated_bytes,
            )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_text(self, tokens: np.ndarray) -> int | None:
        """Ingest one text; returns its id (``None`` if deduplicated)."""
        return self.append_texts([tokens])[0]

    def append_texts(self, texts: list[np.ndarray]) -> list[int | None]:
        """Ingest a batch; one id per input, ``None`` for deduplicated.

        The batch is validated first, logged to the WAL second, and
        buffered third — when this method returns, every assigned id is
        recoverable under the configured ``ack_policy``.
        """
        with self._lock:
            self._check_open()
            validated = [self.memtable.check_tokens(tokens) for tokens in texts]
            ids: list[int | None] = []
            accepted: list[np.ndarray] = []
            for tokens in validated:
                if self.prefilter is not None and self.prefilter.seen_or_add(tokens):
                    ids.append(None)
                    self.stats.texts_deduped += 1
                    continue
                ids.append(self._next_text_id + len(accepted))
                accepted.append(tokens)
            if accepted:
                first_id = self._next_text_id
                self.wal.append(first_id, accepted)
                self.memtable.add_texts(
                    list(zip(range(first_id, first_id + len(accepted)), accepted))
                )
                self._memtable_tokens += sum(int(t.size) for t in accepted)
                self._next_text_id += len(accepted)
                self._snapshot_cache = None
                self.stats.texts_accepted += len(accepted)
            self.stats.appends += 1
            should_seal = (
                self.memtable.postings >= self.config.seal_threshold_postings
            )
        if should_seal:
            self.seal()
        return ids

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def seal(self) -> str | None:
        """Persist the memtable as an immutable run; returns its name.

        Crash-ordering: (1) the run directory is fully written (its own
        meta commit making it locally complete); (2) the manifest
        commits, atomically adopting the run, advancing the WAL fence
        (``next_text_id``) and rotating ``wal_seq``; (3) the new WAL
        segment is created and the old one deleted; (4) the memtable
        clears.  A crash after (1) leaves an unreferenced run directory
        (GC'd on open) and a replayable WAL; a crash after (2) leaves a
        stale WAL whose records are below the fence (skipped); a crash
        after (3) lost nothing — the memtable content is in the run.
        """
        # The whole seal stays under the state lock: an append racing
        # past the memtable consolidation would be cleared below without
        # reaching the new WAL segment. Appends stall for the duration
        # of one run write — the background compactor, not the sealer,
        # does the heavy merging.
        with self._lock:
            self._check_open()
            built = self.memtable.index()
            if built is None:
                return None
            name = run_name(self.manifest.run_seq)
            memtable_tokens = self._memtable_tokens
            sealed_next_id = self._next_text_id
            built.num_texts = sealed_next_id  # absolute id space, not run-local
            write_index(built, self.root / name, codec=self.manifest.codec)
            self.manifest.runs.append(name)
            self.manifest.run_seq += 1
            old_wal_seq = self.manifest.wal_seq
            self.manifest.wal_seq += 1
            self.manifest.next_text_id = sealed_next_id
            self.manifest.total_tokens += memtable_tokens
            self.manifest.commit(self.root)
            old_wal = self.wal
            old_wal.close(sync=False)
            self.wal = WriteAheadLog(
                self.root / wal_name(self.manifest.wal_seq),
                ack_policy=self.config.ack_policy,
                fsync_batch=self.config.fsync_batch,
            )
            (self.root / wal_name(old_wal_seq)).unlink(missing_ok=True)
            self.memtable.clear()
            self._memtable_first_id = sealed_next_id
            self._memtable_tokens = 0
            self._snapshot_cache = None
            self.stats.seals += 1
            if self.prefilter is not None:
                try:
                    self.prefilter.save(self.root / PREFILTER_FILE)
                except OSError:  # pragma: no cover - best-effort persistence
                    pass
        logger.info("sealed %s (%d postings)", name, int(built.num_postings))
        if self.config.background_compaction:
            self._ensure_compactor()
            self._compact_wakeup.set()
        return name

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, *, all_runs: bool = False) -> bool:
        """Run one compaction round synchronously; ``True`` if it merged.

        ``all_runs=True`` merges every sealed run into one (full
        compaction); otherwise the tiered policy picks a window (or
        nothing).  Safe to call concurrently with appends and queries.
        """
        with self._compact_lock:
            with self._lock:
                self._check_open()
                runs = list(self.manifest.runs)
                if all_runs:
                    window = (0, len(runs)) if len(runs) > 1 else None
                else:
                    sizes = [
                        int(self._reader(name).num_postings) for name in runs
                    ]
                    window = pick_compaction(
                        sizes, self.config.compact_fanout, self.config.tier_ratio
                    )
                if window is None:
                    return False
                lo, hi = window
                victims = runs[lo:hi]
                merged_name = run_name(self.manifest.run_seq)
                self.manifest.run_seq += 1
                # run_seq advances in the manifest only at commit below;
                # a crash mid-merge leaves an unreferenced run-<seq>
                # directory that open() garbage-collects.
            # Merge OUTSIDE the state lock: inputs are immutable runs and
            # the output directory is invisible until the commit.
            merge_disk_indexes(
                [self.root / name for name in victims],
                self.root / merged_name,
                text_offsets=[0] * len(victims),  # runs hold absolute ids
                codec=self.manifest.codec,
            )
            with self._lock:
                position = self.manifest.runs.index(victims[0])
                self.manifest.runs[position : position + len(victims)] = [
                    merged_name
                ]
                self.manifest.commit(self.root)
                for name in victims:
                    self._run_readers.pop(name, None)
                self._snapshot_cache = None
                self.stats.compactions += 1
            # Old run directories die after the commit; snapshots that
            # pinned them keep their mmaps alive until released.
            for name in victims:
                shutil.rmtree(self.root / name, ignore_errors=True)
            logger.info(
                "compacted %d runs [%s..%s] into %s",
                len(victims),
                victims[0],
                victims[-1],
                merged_name,
            )
            return True

    def _ensure_compactor(self) -> None:
        with self._lock:
            if self._compactor is not None and self._compactor.is_alive():
                return
            self._stop_compactor.clear()
            self._compactor = threading.Thread(
                target=self._compaction_loop, name="lsm-compactor", daemon=True
            )
            self._compactor.start()

    def _compaction_loop(self) -> None:
        while not self._stop_compactor.is_set():
            self._compact_wakeup.wait(timeout=0.5)
            if self._stop_compactor.is_set():
                return
            self._compact_wakeup.clear()
            try:
                # Drain: keep merging while the policy finds work.
                while self.compact():
                    pass
            except Exception:  # pragma: no cover - surfaced via logs
                logger.exception("background compaction failed")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _reader(self, name: str) -> DiskInvertedIndex:
        reader = self._run_readers.get(name)
        if reader is None:
            reader = DiskInvertedIndex(self.root / name)
            self._run_readers[name] = reader
        return reader

    def snapshot(self) -> UnionIndexReader:
        """Pin the current generation: an immutable union reader over
        {sealed runs, memtable view}.  Cached until the next mutation."""
        with self._lock:
            self._check_open()
            if self._snapshot_cache is not None:
                return self._snapshot_cache
            sources: list = [self._reader(name) for name in self.manifest.runs]
            built = self.memtable.index()
            if built is not None:
                sources.append(built)
            self._snapshot_cache = UnionIndexReader(
                self.family, self.t, sources, generation=self.generation
            )
            return self._snapshot_cache

    def searcher(self, **kwargs) -> "LiveSearcher":
        """A searcher that re-pins the latest snapshot per query."""
        return LiveSearcher(self, **kwargs)

    # -- reader-protocol conveniences (weakly consistent: each call pins
    # -- the latest snapshot; use snapshot()/searcher() for isolation).
    def list_lengths(self, func: int) -> np.ndarray:
        return self.snapshot().list_lengths(func)

    def list_keys(self, func: int) -> np.ndarray:
        return self.snapshot().list_keys(func)

    @property
    def io_stats(self):
        return self.snapshot().io_stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Durability barrier: fsync the active WAL segment."""
        with self._lock:
            self._check_open()
            self.wal.sync()

    def close(self) -> None:
        """Stop the compactor, sync the WAL, and release the root."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop_compactor.set()
        self._compact_wakeup.set()
        if self._compactor is not None:
            self._compactor.join(timeout=30.0)
        self.wal.close(sync=True)
        if self.prefilter is not None:
            try:
                self.prefilter.save(self.root / PREFILTER_FILE)
            except OSError:  # pragma: no cover - best-effort persistence
                pass

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("live index is closed")

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone version of the visible state (manifest generation
        plus memtable growth), used to invalidate per-query searchers."""
        return (self.manifest.generation << 32) + self.memtable.num_texts

    @property
    def num_texts(self) -> int:
        """Upper bound of the assigned text-id space."""
        return self._next_text_id

    @property
    def total_tokens(self) -> int:
        return self.manifest.total_tokens + self._memtable_tokens

    @property
    def num_postings(self) -> int:
        with self._lock:
            if self._closed:
                return 0
            total = sum(
                int(self._reader(name).num_postings)
                for name in self.manifest.runs
            )
            return total + self.memtable.postings

    @property
    def nbytes(self) -> int:
        with self._lock:
            if self._closed:
                return 0
            total = sum(
                int(self._reader(name).nbytes) for name in self.manifest.runs
            )
            built = self.memtable.index()
            return total + (int(built.nbytes) if built is not None else 0)

    @property
    def runs(self) -> list[str]:
        with self._lock:
            return list(self.manifest.runs)

    @property
    def memtable_postings(self) -> int:
        return self.memtable.postings

    def status(self) -> dict:
        """Operational snapshot for ``/stats`` and the CLI."""
        with self._lock:
            return {
                "generation": self.manifest.generation,
                "next_text_id": self._next_text_id,
                "runs": list(self.manifest.runs),
                "memtable_postings": self.memtable.postings,
                "memtable_texts": self.memtable.num_texts,
                "wal_bytes": self.wal.nbytes,
                "wal_records": self.wal.records_written,
                "wal_syncs": self.wal.syncs,
                "ack_policy": self.config.ack_policy,
                "dedupe": self.prefilter is not None,
                **self.stats.to_dict(),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LiveIndex({str(self.root)!r}, texts={self.num_texts}, "
            f"runs={len(self.manifest.runs)}, "
            f"memtable={self.memtable.postings} postings)"
        )


class LiveSearcher:
    """Searcher over a :class:`LiveIndex` with per-query snapshot pinning.

    Every :meth:`search` call pins the live index's *current* snapshot;
    the inner :class:`~repro.core.search.NearDuplicateSearcher` (and
    its optional :class:`~repro.index.cache.CachedIndexReader`) is
    rebuilt only when the generation actually moved, so a read-mostly
    workload keeps its cache.  Unknown attributes delegate to the inner
    searcher, which makes this a drop-in for the batch planner/executor
    and the service micro-batcher.
    """

    def __init__(
        self,
        live: LiveIndex,
        *,
        cache_bytes: int = 0,
        cache_policy: str = "lru",
        block_cache_bytes: int = 0,
        long_list_cutoff: int | None = None,
        kernel: str = "fused",
        corpus=None,
    ) -> None:
        self.live = live
        self.cache_bytes = int(cache_bytes)
        self.cache_policy = cache_policy
        self._long_list_cutoff = long_list_cutoff
        self._kernel = kernel
        self._corpus = corpus
        self._refresh_lock = threading.Lock()
        self._generation: int | None = None
        self._inner: NearDuplicateSearcher | None = None
        #: Decoded-block tier shared across generations: run readers
        #: namespace their keys by payload path, so blocks of
        #: compacted-away runs go stale-by-name and age out instead of
        #: being served for their successors.
        self.block_cache = None
        if int(block_cache_bytes) > 0:
            from repro.index.blockcache import DecodedBlockCache

            self.block_cache = DecodedBlockCache(
                int(block_cache_bytes), policy=cache_policy
            )

    def _current(self) -> "NearDuplicateSearcher":
        # Imported here, not at module top: repro.core.search reads the
        # index package during its own import, and this module is pulled
        # in by repro.index.__init__ — a top-level import would cycle.
        from repro.core.search import NearDuplicateSearcher

        generation = self.live.generation
        with self._refresh_lock:
            if self._inner is None or generation != self._generation:
                reader = self.live.snapshot()
                if self.block_cache is not None:
                    for source in reader.sources:
                        if hasattr(source, "enable_block_cache"):
                            source.enable_block_cache(self.block_cache)
                if self.cache_bytes > 0:
                    from repro.index.cache import CachedIndexReader

                    reader = CachedIndexReader(
                        reader,
                        capacity_bytes=self.cache_bytes,
                        policy=self.cache_policy,
                    )
                self._inner = NearDuplicateSearcher(
                    reader,
                    long_list_cutoff=self._long_list_cutoff,
                    corpus=self._corpus,
                    kernel=self._kernel,
                )
                self._generation = generation
            return self._inner

    def search(self, query: np.ndarray, theta: float, **kwargs):
        """One query against the latest committed generation."""
        return self._current().search(query, theta, **kwargs)

    def __getattr__(self, name: str):
        # Fires only for attributes not set on the instance: family, t,
        # index, corpus, long_list_cutoff, plan helpers, ... — all
        # resolved against the inner searcher of the latest generation.
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(self._current(), name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LiveSearcher(live={self.live!r}, cache_bytes={self.cache_bytes})"
