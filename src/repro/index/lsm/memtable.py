"""In-memory write buffer of freshly appended texts.

This is :class:`~repro.index.incremental.IncrementalIndex`'s delta
machinery factored into a reusable part: per-batch posting chunks
accumulated cheaply on every append, lazily consolidated into one
:class:`~repro.index.inverted.MemoryInvertedIndex` the first time a
reader asks.  The incremental index uses it as its delta; the live
index (:mod:`repro.index.lsm.live`) uses it as its memtable, sealing
it to an immutable on-disk run once it grows past a threshold.

Batch validation happens *before* any mutation, so a rejected batch
(token outside the vocabulary) leaves the memtable untouched — the
atomicity the WAL-then-memtable ingest path needs.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import HashFamily
from repro.exceptions import InvalidParameterError
from repro.index.builder import generate_corpus_postings
from repro.index.inverted import MemoryInvertedIndex, POSTING_DTYPE


class Memtable:
    """Posting buffer over texts with externally-assigned ids.

    ``add_texts`` takes ``(text_id, tokens)`` pairs — id assignment
    stays with the caller (the incremental index's counter, the live
    index's WAL-fenced counter) so the buffer itself has no ordering
    policy to get wrong.  Ids must be added in ascending order; the
    built index's lists are then sorted by text id, which every reader
    relies on.
    """

    def __init__(self, family: HashFamily, t: int, vocab_size: int) -> None:
        self.family = family
        self.t = int(t)
        self.vocab_size = int(vocab_size)
        self._vocab_hashes = family.hash_vocabulary(self.vocab_size)
        self._chunks: list[list[tuple[np.ndarray, np.ndarray]]] = []
        self._built: MemoryInvertedIndex | None = None
        self._postings = 0
        self._num_texts = 0
        self._tokens = 0

    # -- writing --------------------------------------------------------
    def check_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """Validate one text's tokens against the vocabulary."""
        tokens = np.asarray(tokens, dtype=np.uint32)
        if tokens.size and int(tokens.max()) >= self.vocab_size:
            raise InvalidParameterError(
                f"token id {int(tokens.max())} outside vocab {self.vocab_size}"
            )
        return tokens

    def add_texts(self, batch: list[tuple[int, np.ndarray]]) -> int:
        """Buffer one batch of ``(text_id, tokens)``; returns postings added.

        The whole batch is validated before anything is buffered.
        """
        batch = [(text_id, self.check_tokens(tokens)) for text_id, tokens in batch]
        per_func = generate_corpus_postings(
            batch, self.family, self.t, self._vocab_hashes
        )
        added = sum(int(postings.size) for _, postings in per_func)
        self._chunks.append(per_func)
        self._postings += added
        self._num_texts += len(batch)
        self._tokens += sum(int(tokens.size) for _, tokens in batch)
        self._built = None  # rebuilt lazily on next read
        return added

    def clear(self) -> None:
        """Drop every buffered posting (after a seal took ownership)."""
        self._chunks.clear()
        self._built = None
        self._postings = 0
        self._num_texts = 0
        self._tokens = 0

    # -- reading --------------------------------------------------------
    def index(self) -> MemoryInvertedIndex | None:
        """The buffered postings as one index; ``None`` when empty.

        Built lazily and cached until the next mutation, so bursts of
        appends between reads pay one consolidation.
        """
        if not self._chunks:
            return None
        if self._built is None:
            per_func: list[tuple[list[np.ndarray], list[np.ndarray]]] = [
                ([], []) for _ in range(self.family.k)
            ]
            for chunk in self._chunks:
                for func, (minhashes, postings) in enumerate(chunk):
                    if postings.size:
                        per_func[func][0].append(minhashes)
                        per_func[func][1].append(postings)
            merged = []
            for minhash_chunks, posting_chunks in per_func:
                if minhash_chunks:
                    merged.append(
                        (
                            np.concatenate(minhash_chunks),
                            np.concatenate(posting_chunks),
                        )
                    )
                else:
                    merged.append(
                        (
                            np.empty(0, dtype=np.uint32),
                            np.empty(0, dtype=POSTING_DTYPE),
                        )
                    )
            self._built = MemoryInvertedIndex.from_postings(
                self.family, self.t, merged
            )
        return self._built

    # -- introspection --------------------------------------------------
    @property
    def postings(self) -> int:
        return self._postings

    @property
    def num_texts(self) -> int:
        """Texts buffered since the last :meth:`clear`."""
        return self._num_texts

    @property
    def total_tokens(self) -> int:
        return self._tokens

    def __len__(self) -> int:
        return self._num_texts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Memtable(texts={self._num_texts}, postings={self._postings}, "
            f"k={self.family.k}, t={self.t})"
        )
