"""Bounded-memory exact-duplicate prefilter for streaming ingest.

Training-corpus streams repeat themselves (re-crawled pages, mirrored
dumps); indexing an exact byte-identical duplicate buys nothing — the
near-duplicate search would only report it against its twin.  Following
LSHBloom's observation that a probabilistic membership sketch is enough
to gate streaming dedup at internet scale, the live index can consult a
classic Bloom filter over a 16-byte ``blake2b`` digest of each text's
token bytes *before* the text ever reaches the WAL or the window
builder.

Properties:

* memory is fixed up front: ``bits(capacity, fp_rate)`` bits for the
  target capacity, regardless of stream length;
* a **negative** answer is exact — a genuinely new text is never
  dropped;
* a **positive** answer is wrong with probability ~``fp_rate`` (at
  capacity), so with the prefilter enabled an ~``fp_rate`` fraction of
  *distinct* texts may be skipped as presumed duplicates.  That is why
  it is **off by default**: enable it on ingest pipelines that prefer
  bounded re-ingest cost over perfect recall of near-capacity streams.

Double hashing (Kirsch–Mitzenmacher) derives the ``h`` probe positions
from the two 64-bit halves of the digest, so each text is hashed once.
"""

from __future__ import annotations

import hashlib
import math
from pathlib import Path

import numpy as np

from repro.exceptions import IndexFormatError, InvalidParameterError

_SAVE_FORMAT = 1


def optimal_bits(capacity: int, fp_rate: float) -> int:
    """Bloom size in bits for ``capacity`` keys at ``fp_rate``."""
    return max(64, int(math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))))


def optimal_hashes(bits: int, capacity: int) -> int:
    """Probe count minimising the false-positive rate."""
    return max(1, int(round(bits / capacity * math.log(2))))


class BloomPrefilter:
    """Fixed-size Bloom filter keyed by a text digest.

    Parameters
    ----------
    capacity:
        Expected number of distinct texts; the false-positive rate is
        calibrated at this fill level and degrades gracefully past it.
    fp_rate:
        Target false-positive probability at capacity.
    """

    def __init__(self, capacity: int = 1_000_000, fp_rate: float = 1e-4) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be >= 1")
        if not (0.0 < fp_rate < 1.0):
            raise InvalidParameterError("fp_rate must be in (0, 1)")
        self.capacity = int(capacity)
        self.fp_rate = float(fp_rate)
        self.num_bits = optimal_bits(self.capacity, self.fp_rate)
        self.num_hashes = optimal_hashes(self.num_bits, self.capacity)
        self._bits = np.zeros((self.num_bits + 63) // 64, dtype=np.uint64)
        self.added = 0

    # -- hashing --------------------------------------------------------
    @staticmethod
    def digest(tokens: np.ndarray) -> tuple[int, int]:
        """Two independent 64-bit hashes of one text's token bytes."""
        raw = hashlib.blake2b(
            np.ascontiguousarray(tokens, dtype="<u4").tobytes(), digest_size=16
        ).digest()
        halves = np.frombuffer(raw, dtype="<u8")
        return int(halves[0]), int(halves[1])

    def _positions(self, h1: int, h2: int) -> np.ndarray:
        # Wrap-around in uint64 is intentional (double hashing only
        # needs the low bits to stay well-mixed).
        with np.errstate(over="ignore"):
            probes = (
                np.uint64(h1)
                + np.arange(self.num_hashes, dtype=np.uint64) * np.uint64(h2 | 1)
            ) % np.uint64(self.num_bits)
        return probes

    # -- membership -----------------------------------------------------
    def __contains__(self, tokens: np.ndarray) -> bool:
        h1, h2 = self.digest(np.asarray(tokens))
        positions = self._positions(h1, h2)
        words = self._bits[positions >> np.uint64(6)]
        masks = np.uint64(1) << (positions & np.uint64(63))
        return bool(np.all(words & masks))

    def seen_or_add(self, tokens: np.ndarray) -> bool:
        """Test-and-set in one pass: ``True`` iff the text was (probably)
        seen before; a new text is recorded."""
        h1, h2 = self.digest(np.asarray(tokens))
        positions = self._positions(h1, h2)
        word_index = (positions >> np.uint64(6)).astype(np.int64)
        masks = np.uint64(1) << (positions & np.uint64(63))
        seen = bool(np.all(self._bits[word_index] & masks))
        if not seen:
            np.bitwise_or.at(self._bits, word_index, masks)
            self.added += 1
        return seen

    # -- persistence ----------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the filter (``.npz``); best-effort sidecar of a seal."""
        np.savez_compressed(
            Path(path),
            format=np.asarray([_SAVE_FORMAT]),
            capacity=np.asarray([self.capacity]),
            fp_rate=np.asarray([self.fp_rate]),
            added=np.asarray([self.added]),
            bits=self._bits,
        )

    @classmethod
    def load(cls, path: str | Path) -> "BloomPrefilter":
        try:
            with np.load(Path(path)) as archive:
                if int(archive["format"][0]) != _SAVE_FORMAT:
                    raise IndexFormatError(
                        f"unsupported prefilter format {int(archive['format'][0])}"
                    )
                prefilter = cls(
                    capacity=int(archive["capacity"][0]),
                    fp_rate=float(archive["fp_rate"][0]),
                )
                bits = archive["bits"]
                if bits.shape != prefilter._bits.shape:
                    raise IndexFormatError("prefilter bit array has wrong size")
                prefilter._bits = bits.astype(np.uint64)
                prefilter.added = int(archive["added"][0])
                return prefilter
        except (OSError, ValueError, KeyError) as exc:
            raise IndexFormatError(f"prefilter file unreadable: {exc}")

    # -- introspection --------------------------------------------------
    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set (saturation indicator)."""
        set_bits = int(np.bitwise_count(self._bits).sum()) if hasattr(
            np, "bitwise_count"
        ) else int(np.unpackbits(self._bits.view(np.uint8)).sum())
        return set_bits / self.num_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomPrefilter(capacity={self.capacity}, fp_rate={self.fp_rate}, "
            f"added={self.added})"
        )
